"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``synth``
    Generate a synthetic workload (or load a preset) and run one
    synthesis strategy; optionally emit and verify the exact
    conditional schedule tables.
``tables``
    Print the conditional schedule tables for a preset with a naive
    mapping — a quick way to *see* paper Fig. 6-style output.
``verify``
    Synthesize a design and *prove* its tolerance claim: simulate
    every fault scenario within the budget, sharded through the batch
    engine with trace-prefix reuse (parallel workers, resumable
    checkpoints, byte-identical reports).
``fig7`` / ``fig8``
    Run the paper's evaluation sweeps (quick or paper profile).
``batch``
    Run a sweep through the batch engine: parallel workers, resumable
    JSONL checkpointing, JSON/CSV result export.
``campaign``
    Monte Carlo fault-injection campaign: synthesize a design, build
    the exact tables, stress-test them under sampled fault plans
    through the batch engine (parallel chunks, resumable checkpoints,
    estimate-gap report).
``dse``
    Pareto design-space exploration: evaluate strategy × k ×
    checkpoint-count × transparency-vector candidates exactly and
    report the epsilon-Pareto frontier over (worst-case length,
    transparency degree, FT memory overhead).
``worker``
    Join a ``--backend workdir`` sweep as an extra work-stealing
    worker: claim chunk leases from the shared directory, execute
    jobs, journal results — from the same machine or any host sharing
    the filesystem.

The sweep commands (``verify``/``batch``/``campaign``/``dse``) share
the engine flags: ``--backend`` selects serial, process-pool or
multi-host workdir execution (all byte-identical in their reports),
``--cache-dir`` attaches the persistent evaluation cache that lets
repeated sweeps over shared workloads warm-start across runs.

Examples
--------

::

    repro synth --processes 20 --nodes 3 --k 2 --strategy MXR
    repro synth --preset cruise --k 2 --strategy MXR --tables
    repro tables --preset fig5
    repro verify --processes 8 --nodes 2 --k 2 --chunks 4 --workers 4
    repro fig7 --profile quick
    repro batch --experiment fig7 --profile paper --workers 4 \
        --checkpoint fig7.ckpt.jsonl --out fig7.json --csv fig7.csv
    repro campaign --processes 8 --nodes 2 --k 2 --samples 200 \
        --sampler stratified --chunks 4 --workers 4 --out campaign.json
    repro dse --processes 8 --nodes 2 --k 2 --chunks 4 --workers 4 \
        --out pareto.json --csv pareto.csv
    repro dse --processes 8 --nodes 2 --k 2 --chunks 12 \
        --backend workdir --workdir sweep.wd --out pareto.json
    repro worker --workdir sweep.wd   # on any host sharing sweep.wd

(``repro`` is the installed console script; ``python -m repro`` works
from a source checkout. The full flag-by-flag reference lives in
``docs/cli.md``.)
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.campaigns import (
    PRESET_WORKLOADS,
    SAMPLERS,
    CampaignConfig,
    run_campaign,
)
from repro.campaigns.stats import HIST_BIN_PCT
from repro.dse import (
    DEFAULT_EPSILONS,
    DSE_STRATEGIES,
    DseConfig,
    SpaceConfig,
    run_dse,
)
from repro.engine import BACKENDS, BatchEngine, EngineConfig
from repro.engine.workdir import DEFAULT_LEASE_TIMEOUT, work
from repro.eval import CACHE_DIR_ENV
from repro.kernels import KERNELS_ENV, kernels_info
from repro.lint import (
    RULE_IDS,
    lint_paths,
    render_json,
    render_text,
)
from repro import __version__
from repro.experiments import fig7 as fig7_mod
from repro.experiments import fig8 as fig8_mod
from repro.experiments.fig7 import COMPARED, Fig7Config, run_fig7
from repro.experiments.fig8 import Fig8Config, run_fig8
from repro.experiments.reporting import (
    cache_stats_from_cells,
    render_rows,
)
from repro.model import Application, Architecture, FaultModel, Transparency
from repro.policies import PolicyAssignment, ProcessPolicy
from repro.schedule import (
    render_schedule_set,
    schedule_metrics,
    synthesize_schedule,
)
from repro.synthesis import TabuSettings, initial_mapping, synthesize
from repro.verify import VerifyConfig, run_verification
from repro.workloads import (
    SIMPLE_PRESETS,
    GeneratorConfig,
    brake_by_wire,
    fig5_example,
    generate_workload,
)


def _load_workload(args) -> tuple[Application, Architecture,
                                  Transparency | None]:
    if args.preset == "fig5":
        app, arch, __, transparency, ___ = fig5_example()
        return app, arch, transparency
    if args.preset == "bbw":
        return brake_by_wire()
    if args.preset in SIMPLE_PRESETS:
        app, arch = SIMPLE_PRESETS[args.preset]()
        return app, arch, None
    app, arch = generate_workload(GeneratorConfig(
        processes=args.processes, nodes=args.nodes, seed=args.seed))
    return app, arch, None


def _settings(args) -> TabuSettings:
    return TabuSettings(iterations=args.iterations,
                        neighborhood=args.neighborhood,
                        seed=args.seed)


def _engine_config(args) -> EngineConfig:
    """The engine configuration of one sweep command.

    ``--cache-dir`` is exported through the environment (not job
    params) on purpose: worker processes inherit it, and reports stay
    byte-identical with and without the cache.
    """
    if args.cache_dir:
        os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    if getattr(args, "no_kernels", False):
        os.environ[KERNELS_ENV] = "0"
    return EngineConfig(
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=not args.no_resume,
        backend=args.backend,
        workdir=args.workdir,
        lease_size=args.lease_size,
        lease_timeout=args.lease_timeout,
    )


def _validate_engine_flags(parser: argparse.ArgumentParser,
                           args) -> None:
    """Reject invalid flag combinations at parse time.

    Value errors (``--workers 0`` and friends) are handled by the
    argparse types; cross-flag contradictions land here so the user
    gets a usage error instead of a deep traceback mid-sweep.
    """
    backend = getattr(args, "backend", None)
    workdir = getattr(args, "workdir", None)
    if backend == "workdir" and workdir is None:
        parser.error(
            "--backend workdir needs --workdir DIR (the shared "
            "directory workers claim leases from)")
    if backend in ("serial", "process") and workdir is not None:
        parser.error(
            f"--workdir only applies to the workdir backend "
            f"(got --backend {backend})")
    if workdir is not None \
            and getattr(args, "checkpoint", None) is not None:
        parser.error(
            "--checkpoint conflicts with --workdir: the workdir is "
            "the checkpoint (results live in <workdir>/results)")


def _cmd_synth(args) -> int:
    app, arch, __ = _load_workload(args)
    fault_model = FaultModel(k=args.k)
    result = synthesize(app, arch, fault_model, args.strategy,
                        settings=_settings(args))
    print(f"workload: {app.name} ({len(app)} processes, "
          f"{len(arch)} nodes), k = {args.k}")
    print(f"strategy {args.strategy}: "
          f"length {result.schedule_length:.1f} "
          f"(NFT {result.nft_length:.1f}, FTO {result.fto:.1f} %), "
          f"{result.evaluations} evaluations")
    for name, policy in result.policies.items():
        nodes = ",".join(result.mapping.node_of(name, c)
                         for c in range(len(policy.copies)))
        print(f"  {name}: {policy.kind.value} on {nodes}")
    if args.tables:
        schedule = synthesize_schedule(app, arch, result.mapping,
                                       result.policies, fault_model)
        print()
        print(render_schedule_set(schedule))
        metrics = schedule_metrics(schedule)
        print(f"\ntable memory: {metrics.total_memory_bytes} bytes over "
              f"{len(metrics.per_node)} locations")
    return 0


def _cmd_tables(args) -> int:
    app, arch, transparency = _load_workload(args)
    fault_model = FaultModel(k=args.k)
    policies = PolicyAssignment.uniform(
        app, ProcessPolicy.re_execution(args.k))
    if args.preset == "fig5":
        __, ___, fault_model, transparency, mapping = fig5_example()
    else:
        mapping = initial_mapping(app, arch, policies)
    schedule = synthesize_schedule(app, arch, mapping, policies,
                                   fault_model, transparency)
    print(render_schedule_set(schedule))
    return 0


def _cmd_verify(args) -> int:
    if args.preset is not None:
        workload: dict = {"preset": args.preset}
    else:
        workload = {"processes": args.processes, "nodes": args.nodes,
                    "seed": args.seed}
    config = VerifyConfig(
        workload=workload,
        k=args.k,
        strategy=args.strategy,
        chunks=args.chunks,
        seed=args.seed,
        settings=TabuSettings(iterations=args.iterations,
                              neighborhood=args.neighborhood,
                              bus_contention=False),
        max_scenarios=args.max_scenarios,
        des_scenarios=args.des_scenarios,
        intermittent=args.intermittent,
        slot_faults=args.slot_faults,
        jitter=args.jitter,
    )
    report = run_verification(config,
                              engine_config=_engine_config(args))
    for line in report.summary_lines():
        print(line)
    if args.out:
        report.write_json(args.out)
        print(f"report written to {args.out}")
    if report.ok:
        print("all scenarios tolerated")
        return 0
    for record in report.stats.failure_records[:5]:
        errors = record["errors"] or ["(no detail recorded)"]
        print(f"FAILED {record['plan']}: {errors[0]}")
    for violation in report.frozen_violations[:5]:
        print(f"TRANSPARENCY {violation}")
    return 1


def _cmd_fig7(args) -> int:
    config = (Fig7Config.paper() if args.profile == "paper"
              else Fig7Config.quick())
    rows = run_fig7(config, verbose=True, workers=args.workers)
    print(render_rows(
        ["processes", "samples", "FTO(MXR) %"]
        + [f"dev {s} %" for s in COMPARED],
        [row.as_cells() for row in rows]))
    return 0


def _cmd_fig8(args) -> int:
    config = (Fig8Config.paper() if args.profile == "paper"
              else Fig8Config.quick())
    rows = run_fig8(config, verbose=True, workers=args.workers)
    print(render_rows(
        ["processes", "samples", "FTO[27] %", "FTO[15] %",
         "deviation %"],
        [row.as_cells() for row in rows]))
    return 0


def _cmd_batch(args) -> int:
    if args.experiment == "fig7":
        config = (Fig7Config.paper() if args.profile == "paper"
                  else Fig7Config.quick())
        jobs = fig7_mod.fig7_jobs(config)
    else:
        config = (Fig8Config.paper() if args.profile == "paper"
                  else Fig8Config.quick())
        jobs = fig8_mod.fig8_jobs(config)

    engine = BatchEngine(_engine_config(args))
    report = engine.run(jobs)
    cells = report.results()

    if args.experiment == "fig7":
        rows = fig7_mod.rows_from_cells(cells, sizes=config.sizes)
        print(render_rows(
            ["processes", "samples", "FTO(MXR) %"]
            + [f"dev {s} %" for s in COMPARED],
            [row.as_cells() for row in rows]))
    else:
        rows = fig8_mod.rows_from_cells(cells, sizes=config.sizes)
        print(render_rows(
            ["processes", "samples", "FTO[27] %", "FTO[15] %",
             "deviation %"],
            [row.as_cells() for row in rows]))

    stats = cache_stats_from_cells(cells)
    print()
    print(f"{len(cells)} cells ({report.executed} executed, "
          f"{report.resumed} resumed) in {report.wall_time:.1f}s "
          f"with {args.workers} worker(s); "
          f"estimation cache hit rate {stats.hit_rate * 100.0:.1f}% "
          f"({stats.hits} hits / {stats.misses} misses)")
    report.extra_info["estimation_cache"] = {
        "hits": stats.hits,
        "misses": stats.misses,
        "entries": stats.entries,
        "hit_rate": stats.hit_rate,
    }
    # One compiled table set per sweep cell; batch sweeps evaluate
    # estimates only (deterministic shape, not live counters).
    report.extra_info["kernels"] = kernels_info(
        compiled_tables=len(cells), batched_scenarios=0)
    if args.out:
        report.write_json(args.out)
        print(f"results written to {args.out}")
    if args.csv:
        report.write_csv(args.csv)
        print(f"CSV written to {args.csv}")
    return 0


def _cmd_campaign(args) -> int:
    if args.preset is not None:
        workload: dict = {"preset": args.preset}
    else:
        workload = {"processes": args.processes, "nodes": args.nodes,
                    "seed": args.seed}
    config = CampaignConfig(
        workload=workload,
        k=args.k,
        strategy=args.strategy,
        sampler=args.sampler,
        samples=args.samples,
        chunks=args.chunks,
        seed=args.seed,
        settings=TabuSettings(iterations=args.iterations,
                              neighborhood=args.neighborhood,
                              bus_contention=False),
        certify=args.certify,
        certify_max_scenarios=args.certify_max_scenarios,
        intermittent=args.intermittent,
        slot_faults=args.slot_faults,
        jitter=args.jitter,
    )
    report = run_campaign(config, engine_config=_engine_config(args))
    for line in report.summary_lines():
        print(line)
    hist = report.stats.gap_hist
    if any(hist):
        print("estimate-gap histogram (% of bound):")
        for index, count in enumerate(hist):
            if not count:
                continue
            low = index * HIST_BIN_PCT
            high = low + HIST_BIN_PCT
            label = (f"{low:.0f}+" if index == len(hist) - 1
                     else f"{low:.0f}-{high:.0f}")
            print(f"  {label:>6} %: {count} plan(s)")
    if args.out:
        report.write_json(args.out)
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


def _cmd_dse(args) -> int:
    if args.preset is not None:
        workload: dict = {"preset": args.preset}
    else:
        workload = {"processes": args.processes, "nodes": args.nodes,
                    "seed": args.seed}
    config = DseConfig(
        workload=workload,
        space=SpaceConfig(
            strategies=tuple(args.strategies),
            k_values=tuple(args.k),
            checkpoint_counts=tuple(args.checkpoint_counts),
            transparency_samples=args.transparency_samples,
            seed=args.seed,
        ),
        epsilons=(args.epsilon_length, args.epsilon_transparency,
                  args.epsilon_memory),
        chunks=args.chunks,
        seed=args.seed,
        settings=TabuSettings(iterations=args.iterations,
                              neighborhood=args.neighborhood,
                              bus_contention=False),
        verify_frontier=args.verify_frontier,
        verify_max_scenarios=args.verify_max_scenarios,
    )
    report = run_dse(config, engine_config=_engine_config(args))
    for line in report.summary_lines():
        print(line)
    print()
    print(report.frontier_table())
    if args.out:
        report.write_json(args.out)
        print(f"report written to {args.out}")
    if args.csv:
        report.write_csv(args.csv)
        print(f"CSV written to {args.csv}")
    return 0


def _cmd_lint(args) -> int:
    report = lint_paths(args.paths,
                        rules=args.rule or None,
                        path_filters=args.path or None)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code


def _cmd_worker(args) -> int:
    if args.cache_dir:
        os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    if args.no_kernels:
        os.environ[KERNELS_ENV] = "0"

    def announce(job, result, elapsed):
        print(f"  [{job.job_id}] done in {elapsed:.1f}s", flush=True)

    summary = work(args.workdir,
                   worker_id=args.worker_id,
                   lease_timeout=args.lease_timeout,
                   max_idle=args.max_idle,
                   wait_for_jobs=args.wait_for_jobs,
                   on_outcome=announce)
    print(f"worker {summary.worker_id}: {summary.claimed} lease(s) "
          f"claimed, {summary.executed} job(s) executed, "
          f"{summary.skipped} skipped, {summary.reclaimed} stale "
          f"lease(s) reclaimed, {summary.lost} lost")
    return 0


#: ``repro --help`` epilog — kept in sync with the subcommands above
#: (tests/test_docs.py audits every command named here against the
#: parser).
_EPILOG = """\
examples:
  repro synth --preset cruise --k 2 --strategy MXR --tables
  repro tables --preset fig5
  repro verify --processes 8 --nodes 2 --k 2 --chunks 4 --workers 4
  repro fig7 --profile quick --workers 4
  repro fig8 --profile quick --workers 4
  repro batch --experiment fig7 --profile paper --workers 4 \\
      --checkpoint fig7.ckpt.jsonl --out fig7.json --csv fig7.csv
  repro campaign --processes 8 --nodes 2 --k 2 --sampler stratified \\
      --samples 200 --chunks 4 --workers 4 --out campaign.json
  repro dse --processes 8 --nodes 2 --k 2 --chunks 4 --workers 4 \\
      --out pareto.json
  repro dse --processes 8 --nodes 2 --k 2 --chunks 12 \\
      --backend workdir --workdir sweep.wd --out pareto.json
  repro worker --workdir sweep.wd
  repro campaign --processes 8 --nodes 2 --k 2 --samples 200 \\
      --cache-dir ~/.cache/repro-eval --out campaign.json
  repro lint src/repro scripts

full reference: docs/cli.md
"""


def _positive_int(text: str) -> int:
    """Argparse type: integer >= 1, rejected at parse time."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a value >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type: float > 0, rejected at parse time."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a value > 0, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthesis of fault-tolerant embedded systems "
                    "(Eles et al., DATE 2008 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version (from the installed "
             "distribution metadata, falling back to pyproject.toml "
             "in a source checkout) and exit")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p):
        p.add_argument("--preset",
                       choices=("fig5", "bbw", *SIMPLE_PRESETS),
                       default=None,
                       help="use a built-in workload instead of a "
                            "synthetic one (fig5 and bbw carry "
                            "transparency requirements)")
        p.add_argument("--processes", type=int, default=12)
        p.add_argument("--nodes", type=int, default=3)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--k", type=int, default=2,
                       help="transient fault budget per cycle")

    def add_search_args(p):
        p.add_argument("--strategy", default="MXR",
                       choices=("MXR", "MX", "MR", "SFX", "MC",
                                "MC_GLOBAL"))
        p.add_argument("--iterations", type=int, default=24)
        p.add_argument("--neighborhood", type=int, default=16)

    def add_engine_args(p):
        """The shared executor/cache flags of every sweep command."""
        p.add_argument("--backend", choices=BACKENDS, default=None,
                       help="where jobs execute: serial (in-process), "
                            "process (worker pool) or workdir "
                            "(multi-host work stealing over a shared "
                            "directory); default auto-selects from "
                            "--workers/--workdir — the report is "
                            "byte-identical either way")
        p.add_argument("--workdir", default=None, metavar="DIR",
                       help="shared directory of the workdir backend "
                            "(job list, chunk leases, per-worker "
                            "result journals); doubles as the "
                            "checkpoint, and extra 'repro worker' "
                            "processes may join from any host "
                            "sharing it")
        p.add_argument("--lease-size", type=_positive_int, default=1,
                       metavar="N",
                       help="jobs per workdir lease (the "
                            "work-stealing granularity)")
        p.add_argument("--lease-timeout", type=_positive_float,
                       default=DEFAULT_LEASE_TIMEOUT, metavar="SEC",
                       help="reclaim a workdir lease whose heartbeat "
                            "is older than this; must exceed the "
                            "longest single job")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent evaluation cache: sweeps "
                            "spill evaluated designs there and "
                            "warm-start from them across runs "
                            "(results are byte-identical with and "
                            "without it); also honored via the "
                            "REPRO_EVAL_CACHE_DIR environment "
                            "variable")
        p.add_argument("--no-kernels", action="store_true",
                       help="force the pure-Python oracle instead of "
                            "the array-compiled kernels (exported as "
                            "REPRO_KERNELS=0 so engine workers "
                            "inherit it); reports are byte-identical "
                            "either way")

    p_synth = sub.add_parser("synth", help="run one synthesis strategy")
    add_workload_args(p_synth)
    add_search_args(p_synth)
    p_synth.add_argument("--tables", action="store_true",
                         help="also print the conditional tables")
    p_synth.set_defaults(func=_cmd_synth)

    p_tables = sub.add_parser(
        "tables", help="print conditional schedule tables")
    add_workload_args(p_tables)
    p_tables.set_defaults(func=_cmd_tables)

    p_verify = sub.add_parser(
        "verify",
        help="synthesize and exhaustively verify: every fault "
             "scenario simulated, sharded through the batch engine "
             "with trace-prefix reuse")
    add_workload_args(p_verify)
    add_search_args(p_verify)
    p_verify.add_argument("--chunks", type=_positive_int, default=4,
                          help="contiguous scenario windows fanned "
                               "out as engine jobs; each chunk "
                               "re-runs the synthesis, so pick "
                               "roughly --workers (the report is "
                               "byte-identical either way)")
    p_verify.add_argument("--workers", type=_positive_int, default=4,
                          help="worker processes (1 runs serially); "
                               "serial and parallel reports are "
                               "byte-identical")
    p_verify.add_argument("--max-scenarios", type=int,
                          default=VerifyConfig().max_scenarios,
                          help="refuse instances beyond this many "
                               "fault scenarios instead of running "
                               "forever")
    p_verify.add_argument("--checkpoint", default=None, metavar="PATH",
                          help="JSONL checkpoint of completed "
                               "scenario windows (enables resume)")
    p_verify.add_argument("--no-resume", action="store_true",
                          help="ignore an existing checkpoint file")
    p_verify.add_argument("--out", default=None, metavar="PATH",
                          help="write the canonical JSON "
                               "verification report")
    p_verify.add_argument("--des-scenarios", type=int, default=0,
                          metavar="N",
                          help="additionally run N sampled scenarios "
                               "extended with DES-only fault axes "
                               "through the event-driven simulator "
                               "(reported, but beyond the k-fault "
                               "hypothesis, so they do not gate the "
                               "certificate)")
    p_verify.add_argument("--intermittent", type=int, default=1,
                          metavar="N",
                          help="intermittent fault windows per DES "
                               "scenario")
    p_verify.add_argument("--slot-faults", type=int, default=1,
                          metavar="N",
                          help="corrupted TDMA slot occurrences per "
                               "DES scenario")
    p_verify.add_argument("--jitter", type=float, default=0.0,
                          metavar="T",
                          help="maximum per-process release jitter "
                               "for DES scenarios (0 disables)")
    add_engine_args(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    for name, handler in (("fig7", _cmd_fig7), ("fig8", _cmd_fig8)):
        p_fig = sub.add_parser(name,
                               help=f"run the paper's {name} sweep")
        p_fig.add_argument("--profile", choices=("quick", "paper"),
                           default="quick")
        p_fig.add_argument("--workers", type=_positive_int, default=1,
                           help="worker processes for the sweep cells")
        p_fig.set_defaults(func=handler)

    p_batch = sub.add_parser(
        "batch",
        help="run a sweep through the parallel batch engine")
    p_batch.add_argument("--experiment", choices=("fig7", "fig8"),
                         required=True)
    p_batch.add_argument("--profile", choices=("quick", "paper"),
                         default="quick")
    p_batch.add_argument("--workers", type=_positive_int, default=1,
                         help="worker processes (1 runs serially)")
    p_batch.add_argument("--checkpoint", default=None, metavar="PATH",
                         help="JSONL checkpoint of completed cells "
                              "(enables resume)")
    p_batch.add_argument("--no-resume", action="store_true",
                         help="ignore an existing checkpoint file")
    p_batch.add_argument("--out", default=None, metavar="PATH",
                         help="write the full JSON report")
    p_batch.add_argument("--csv", default=None, metavar="PATH",
                         help="write one CSV row per sweep cell")
    add_engine_args(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_camp = sub.add_parser(
        "campaign",
        help="Monte Carlo fault-injection campaign on one design")
    p_camp.add_argument("--preset", choices=PRESET_WORKLOADS,
                        default=None,
                        help="use a built-in workload instead of a "
                             "synthetic one")
    p_camp.add_argument("--processes", type=int, default=8)
    p_camp.add_argument("--nodes", type=int, default=2)
    p_camp.add_argument("--seed", type=int, default=1,
                        help="workload seed; also seeds the campaign's "
                             "derived tabu/sampling streams")
    p_camp.add_argument("--k", type=int, default=2,
                        help="transient fault budget per cycle")
    p_camp.add_argument("--strategy", default="MXR",
                        choices=("MXR", "MX", "MR", "SFX", "MC",
                                 "MC_GLOBAL"))
    p_camp.add_argument("--iterations", type=int, default=8)
    p_camp.add_argument("--neighborhood", type=int, default=8)
    p_camp.add_argument("--sampler", choices=SAMPLERS,
                        default="stratified",
                        help="fault-plan sampling strategy")
    p_camp.add_argument("--samples", type=int, default=200,
                        help="faulty plans to sample (ignored by the "
                             "exhaustive sampler)")
    p_camp.add_argument("--chunks", type=_positive_int, default=4,
                        help="plan chunks fanned out as engine jobs; "
                             "each chunk re-runs the synthesis, so "
                             "pick roughly --workers (kept "
                             "independent of --workers because the "
                             "chunking determines the report's "
                             "deterministic fold order)")
    p_camp.add_argument("--workers", type=_positive_int, default=4,
                        help="worker processes (1 runs serially); "
                             "the default matches --chunks so the "
                             "per-chunk synthesis cost buys "
                             "parallelism")
    p_camp.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSONL checkpoint of completed chunks "
                             "(enables resume)")
    p_camp.add_argument("--no-resume", action="store_true",
                        help="ignore an existing checkpoint file")
    p_camp.add_argument("--out", default=None, metavar="PATH",
                        help="write the canonical JSON campaign report")
    p_camp.add_argument("--certify", action="store_true",
                        help="follow the sampled campaign with an "
                             "exhaustive sharded verification of the "
                             "same design and fold the certificate "
                             "into the report (exit code includes it)")
    p_camp.add_argument("--certify-max-scenarios", type=int,
                        default=CampaignConfig().certify_max_scenarios,
                        help="skip the certificate (keeping the "
                             "sampled report) when the design has "
                             "more fault scenarios than this")
    p_camp.add_argument("--intermittent", type=int, default=0,
                        metavar="N",
                        help="extend every sampled faulty plan with "
                             "N intermittent fault windows and route "
                             "the campaign through the event-driven "
                             "simulator")
    p_camp.add_argument("--slot-faults", type=int, default=0,
                        metavar="N",
                        help="corrupted TDMA slot occurrences per "
                             "sampled faulty plan (DES-only axis)")
    p_camp.add_argument("--jitter", type=float, default=0.0,
                        metavar="T",
                        help="maximum per-process release jitter per "
                             "sampled faulty plan (DES-only axis; "
                             "0 disables)")
    add_engine_args(p_camp)
    p_camp.set_defaults(func=_cmd_campaign)

    p_dse = sub.add_parser(
        "dse",
        help="Pareto design-space exploration over policy strategy, "
             "k, checkpoint counts and transparency vectors")
    p_dse.add_argument("--preset", choices=PRESET_WORKLOADS,
                       default=None,
                       help="use a built-in workload instead of a "
                            "synthetic one")
    p_dse.add_argument("--processes", type=int, default=8)
    p_dse.add_argument("--nodes", type=int, default=2)
    p_dse.add_argument("--seed", type=int, default=1,
                       help="workload seed; also seeds the derived "
                            "tabu and transparency-sampling streams")
    p_dse.add_argument("--k", type=int, nargs="+", default=[2],
                       metavar="K",
                       help="fault budget(s) to explore; designs are "
                            "only comparable at equal k, so each "
                            "budget gets its own frontier")
    p_dse.add_argument("--strategies", nargs="+",
                       choices=DSE_STRATEGIES,
                       default=list(DSE_STRATEGIES),
                       help="policy strategies to include")
    p_dse.add_argument("--checkpoint-counts", type=int, nargs="+",
                       default=[0, 1, 2], metavar="N",
                       help="uniform checkpoint counts applied to the "
                            "recovering copies (0 keeps the design "
                            "as synthesized)")
    p_dse.add_argument("--transparency-samples", type=int, default=4,
                       help="seeded random transparency vectors on "
                            "top of the structured families")
    p_dse.add_argument("--epsilon-length", type=float,
                       default=DEFAULT_EPSILONS[0],
                       help="epsilon-box edge for the schedule-length "
                            "objective (time units)")
    p_dse.add_argument("--epsilon-transparency", type=float,
                       default=DEFAULT_EPSILONS[1],
                       help="epsilon-box edge for the transparency "
                            "objective (fraction)")
    p_dse.add_argument("--epsilon-memory", type=float,
                       default=DEFAULT_EPSILONS[2],
                       help="epsilon-box edge for the FT memory "
                            "objective (bytes)")
    p_dse.add_argument("--iterations", type=int, default=8)
    p_dse.add_argument("--neighborhood", type=int, default=8)
    p_dse.add_argument("--chunks", type=_positive_int, default=4,
                       help="candidate chunks fanned out as engine "
                            "jobs; each chunk re-runs the "
                            "per-(strategy, k) synthesis, so pick "
                            "roughly --workers (the frontier is "
                            "independent of the layout either way)")
    p_dse.add_argument("--workers", type=_positive_int, default=4,
                       help="worker processes (1 runs serially); "
                            "serial and parallel frontiers are "
                            "byte-identical")
    p_dse.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="JSONL checkpoint of completed chunks "
                            "(enables resume)")
    p_dse.add_argument("--no-resume", action="store_true",
                       help="ignore an existing checkpoint file")
    p_dse.add_argument("--out", default=None, metavar="PATH",
                       help="write the canonical JSON report "
                            "(archive + frontier)")
    p_dse.add_argument("--csv", default=None, metavar="PATH",
                       help="write one CSV row per frontier point")
    p_dse.add_argument("--verify-frontier", action="store_true",
                       help="exhaustively verify every frontier "
                            "design and flag it certified/failed in "
                            "the table, JSON and CSV")
    p_dse.add_argument("--verify-max-scenarios", type=int,
                       default=DseConfig().verify_max_scenarios,
                       help="skip certifying frontier designs with "
                            "more fault scenarios than this (flagged "
                            "as '-' instead)")
    add_engine_args(p_dse)
    p_dse.set_defaults(func=_cmd_dse)

    p_lint = sub.add_parser(
        "lint",
        help="statically check the repo's determinism, seeded-RNG "
             "and crash-safe-I/O contracts (rules REP001-REP008; "
             "exit code = violation count, capped)")
    p_lint.add_argument("paths", nargs="+", metavar="PATH",
                        help="files or directories to scan "
                             "recursively for *.py modules")
    p_lint.add_argument("--rule", action="append", choices=RULE_IDS,
                        default=None, metavar="REP00x",
                        help="check only the named rule(s); "
                             "repeatable (default: all rules)")
    p_lint.add_argument("--path", action="append", default=None,
                        metavar="FRAGMENT",
                        help="only lint files whose path contains "
                             "this fragment; repeatable")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="report format: flake8-style text or "
                             "canonical JSON")
    p_lint.set_defaults(func=_cmd_lint)

    p_worker = sub.add_parser(
        "worker",
        help="join a --backend workdir sweep as an extra "
             "work-stealing worker (claim leases, run jobs, journal "
             "results); run it on any host sharing the directory")
    p_worker.add_argument("--workdir", required=True, metavar="DIR",
                          help="the sweep's shared directory (as "
                               "passed to the coordinator's "
                               "--workdir)")
    p_worker.add_argument("--worker-id", default=None, metavar="ID",
                          help="stable worker identity (default: "
                               "host-pid-random); names this "
                               "worker's result journal and lease "
                               "claims")
    p_worker.add_argument("--lease-timeout", type=_positive_float,
                          default=DEFAULT_LEASE_TIMEOUT,
                          metavar="SEC",
                          help="reclaim other workers' leases whose "
                               "heartbeat is older than this; use "
                               "the coordinator's value")
    p_worker.add_argument("--max-idle", type=_positive_float,
                          default=None, metavar="SEC",
                          help="exit after this many consecutive "
                               "idle seconds with no claimable "
                               "lease (default: stay until every "
                               "chunk is done)")
    p_worker.add_argument("--wait-for-jobs", type=_positive_float,
                          default=60.0, metavar="SEC",
                          help="tolerate starting before the "
                               "coordinator published the job list "
                               "by polling this long for it")
    p_worker.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="persistent evaluation cache shared "
                               "with the coordinator (see the sweep "
                               "commands' --cache-dir)")
    p_worker.add_argument("--no-kernels", action="store_true",
                          help="force the pure-Python oracle (see the "
                               "sweep commands' --no-kernels)")
    p_worker.set_defaults(func=_cmd_worker)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_engine_flags(parser, args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
