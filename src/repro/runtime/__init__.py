"""Distributed runtime (paper §5.2) — simulation and verification.

At run time, a non-preemptive scheduler in each node owns its part of
the schedule tables and activates processes and messages depending on
the observed condition values; values produced on other nodes arrive
via bus broadcasts. :mod:`repro.runtime.simulator` executes a schedule
set under an injected fault scenario and checks every run-time
invariant (processor exclusivity, bus collisions, input availability,
guard decidability, deadlines); :mod:`repro.runtime.verify` drives it
exhaustively over *all* fault scenarios within the budget ``k``.
"""

from repro.runtime.simulator import SimulationResult, simulate
from repro.runtime.faults import (
    extend_fault_plans,
    sample_des_axes,
    sample_fault_plan,
    sample_fault_plan_exact,
    sample_fault_plans,
)
from repro.runtime.verify import (
    VerificationReport,
    verify_tolerance,
    verify_tolerance_sampled,
)

__all__ = [
    "SimulationResult",
    "VerificationReport",
    "extend_fault_plans",
    "sample_des_axes",
    "sample_fault_plan",
    "sample_fault_plan_exact",
    "sample_fault_plans",
    "simulate",
    "verify_tolerance",
    "verify_tolerance_sampled",
]
