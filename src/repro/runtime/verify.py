"""Exhaustive tolerance verification (thin serial shim).

The verification engine proper lives in :mod:`repro.verify`: a
streaming, exactly-mergeable :class:`~repro.verify.stats.
VerificationStats`, a scenario sweep with trace-prefix reuse
(:class:`~repro.verify.core.ScenarioSweep`), and a sharded runner
fanning scenario windows through the batch engine
(:func:`~repro.verify.runner.run_verification`). This module keeps
the original small-instance API — synchronous, single-process, a
:class:`VerificationReport` with the full failing
:class:`SimulationResult` objects — on top of that core; the results
are bit-identical to the legacy serial loop (and to
``REPRO_VERIFY_INCREMENTAL=0``), just no longer re-simulated from
``t = 0`` per scenario.

Exhaustive enumeration is exponential; callers should consult
:func:`repro.ftcpg.scenarios.count_fault_plans` first (the
``max_scenarios`` guard below raises instead of running forever; the
sharded runner raises its own, higher ceiling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ToleranceViolationError
from repro.ftcpg.scenarios import count_fault_plans
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.model.transparency import Transparency
from repro.policies.types import PolicyAssignment
from repro.runtime.simulator import SimulationResult, simulate
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import ScheduleSet


@dataclass
class VerificationReport:
    """Aggregated outcome of the exhaustive simulation sweep."""

    scenarios: int
    worst_makespan: float
    fault_free_makespan: float
    failures: list[SimulationResult] = field(default_factory=list)
    frozen_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every scenario was tolerated and transparency held."""
        return not self.failures and not self.frozen_violations

    def raise_on_failure(self) -> None:
        """Raise :class:`ToleranceViolationError` when not ok."""
        if self.ok:
            return
        details = [err for result in self.failures for err in result.errors]
        details.extend(self.frozen_violations)
        shown = "; ".join(details[:5])
        raise ToleranceViolationError(
            f"{len(self.failures)} of {self.scenarios} fault scenarios "
            f"failed, {len(self.frozen_violations)} transparency "
            f"violations: {shown}")


def verify_tolerance(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    schedule: ScheduleSet,
    transparency: Transparency | None = None,
    *,
    max_scenarios: int = 100_000,
) -> VerificationReport:
    """Simulate every fault scenario with at most ``k`` faults."""
    from repro.verify.core import ScenarioSweep
    from repro.verify.stats import VerificationStats

    total = count_fault_plans(app, policies, fault_model.k)
    if total > max_scenarios:
        raise ToleranceViolationError(
            f"{total} fault scenarios exceed the verification limit "
            f"{max_scenarios}; verify a smaller instance")
    transparency = transparency or Transparency.none()

    sweep = ScenarioSweep(app, arch, mapping, policies, fault_model,
                          schedule)
    stats = VerificationStats()
    failures: list[SimulationResult] = []
    for result in sweep.results():
        stats.observe(result, transparency)
        if not result.ok:
            failures.append(result)
    return VerificationReport(
        scenarios=stats.scenarios,
        worst_makespan=stats.worst_makespan,
        fault_free_makespan=stats.fault_free_makespan or 0.0,
        failures=failures,
        frozen_violations=stats.frozen_violations(),
    )


def verify_tolerance_sampled(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    schedule: ScheduleSet,
    transparency: Transparency | None = None,
    *,
    samples: int = 200,
    seed: int = 0,
) -> VerificationReport:
    """Monte-Carlo tolerance check for instances whose scenario space
    is too large to enumerate (see
    :func:`repro.ftcpg.scenarios.count_fault_plans`).

    Simulates the fault-free scenario plus ``samples`` random fault
    plans within the budget. A passing report is *evidence*, not a
    proof — use :func:`verify_tolerance` (or the sharded
    :func:`repro.verify.runner.run_verification`) whenever feasible.
    """
    from repro.runtime.faults import sample_fault_plans

    transparency = transparency or Transparency.none()
    plans = sample_fault_plans(app, policies, fault_model.k, samples,
                               seed=seed)
    failures: list[SimulationResult] = []
    worst = 0.0
    fault_free = 0.0
    for plan in plans:
        result = simulate(app, arch, mapping, policies, fault_model,
                          schedule, plan)
        if not result.ok:
            failures.append(result)
            continue
        worst = max(worst, result.makespan)
        if plan.is_fault_free():
            fault_free = result.makespan
    return VerificationReport(
        scenarios=len(plans),
        worst_makespan=worst,
        fault_free_makespan=fault_free,
        failures=failures,
        frozen_violations=[],
    )
