"""Exhaustive tolerance verification.

The synthesized schedule tables claim to tolerate *any* ``k`` transient
faults. This module proves it for a concrete instance by simulating
**every** fault scenario within the budget (enumerated by
:func:`repro.ftcpg.scenarios.iter_fault_plans`) and additionally
checking the transparency contract: a frozen process/message must start
at the same time in every scenario in which it fires.

Exhaustive enumeration is exponential; callers should consult
:func:`repro.ftcpg.scenarios.count_fault_plans` first (the
``max_scenarios`` guard below raises instead of running forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ToleranceViolationError
from repro.ftcpg.scenarios import count_fault_plans, iter_fault_plans
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.model.transparency import Transparency
from repro.policies.types import PolicyAssignment
from repro.runtime.simulator import SimulationResult, simulate
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import EntryKind, ScheduleSet
from repro.utils.mathutils import TIME_EPS


@dataclass
class VerificationReport:
    """Aggregated outcome of the exhaustive simulation sweep."""

    scenarios: int
    worst_makespan: float
    fault_free_makespan: float
    failures: list[SimulationResult] = field(default_factory=list)
    frozen_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every scenario was tolerated and transparency held."""
        return not self.failures and not self.frozen_violations

    def raise_on_failure(self) -> None:
        """Raise :class:`ToleranceViolationError` when not ok."""
        if self.ok:
            return
        details = [err for result in self.failures for err in result.errors]
        details.extend(self.frozen_violations)
        shown = "; ".join(details[:5])
        raise ToleranceViolationError(
            f"{len(self.failures)} of {self.scenarios} fault scenarios "
            f"failed, {len(self.frozen_violations)} transparency "
            f"violations: {shown}")


def verify_tolerance(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    schedule: ScheduleSet,
    transparency: Transparency | None = None,
    *,
    max_scenarios: int = 100_000,
) -> VerificationReport:
    """Simulate every fault scenario with at most ``k`` faults."""
    total = count_fault_plans(app, policies, fault_model.k)
    if total > max_scenarios:
        raise ToleranceViolationError(
            f"{total} fault scenarios exceed the verification limit "
            f"{max_scenarios}; verify a smaller instance")
    transparency = transparency or Transparency.none()

    failures: list[SimulationResult] = []
    worst = 0.0
    fault_free = 0.0
    frozen_process_starts: dict[tuple[str, int], set[float]] = {}
    frozen_message_starts: dict[tuple[str, int], set[float]] = {}
    scenarios = 0
    for plan in iter_fault_plans(app, policies, fault_model.k):
        scenarios += 1
        result = simulate(app, arch, mapping, policies, fault_model,
                          schedule, plan)
        if not result.ok:
            failures.append(result)
            continue
        worst = max(worst, result.makespan)
        if plan.is_fault_free():
            fault_free = result.makespan
        for entry in result.fired_entries:
            if entry.kind is EntryKind.ATTEMPT \
                    and entry.attempt.segment == 1 \
                    and entry.attempt.attempt == 1 \
                    and transparency.is_frozen_process(
                        entry.attempt.process):
                key = (entry.attempt.process, entry.attempt.copy)
                frozen_process_starts.setdefault(key, set()).add(
                    round(entry.start, 6))
            if entry.kind is EntryKind.MESSAGE \
                    and transparency.is_frozen_message(entry.message):
                key = (entry.message, entry.producer_copy or 0)
                frozen_message_starts.setdefault(key, set()).add(
                    round(entry.start, 6))

    frozen_violations = []
    for (process, copy), starts in sorted(frozen_process_starts.items()):
        if _spread(starts) > TIME_EPS:
            frozen_violations.append(
                f"frozen process {process!r} (copy {copy}) started at "
                f"{sorted(starts)} across scenarios")
    for (message, copy), starts in sorted(frozen_message_starts.items()):
        if _spread(starts) > TIME_EPS:
            frozen_violations.append(
                f"frozen message {message!r} (copy {copy}) transmitted at "
                f"{sorted(starts)} across scenarios")

    return VerificationReport(
        scenarios=scenarios,
        worst_makespan=worst,
        fault_free_makespan=fault_free,
        failures=failures,
        frozen_violations=frozen_violations,
    )


def _spread(values: set[float]) -> float:
    return max(values) - min(values) if values else 0.0


def verify_tolerance_sampled(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    schedule: ScheduleSet,
    transparency: Transparency | None = None,
    *,
    samples: int = 200,
    seed: int = 0,
) -> VerificationReport:
    """Monte-Carlo tolerance check for instances whose scenario space
    is too large to enumerate (see
    :func:`repro.ftcpg.scenarios.count_fault_plans`).

    Simulates the fault-free scenario plus ``samples`` random fault
    plans within the budget. A passing report is *evidence*, not a
    proof — use :func:`verify_tolerance` whenever feasible.
    """
    from repro.runtime.faults import sample_fault_plans

    transparency = transparency or Transparency.none()
    plans = sample_fault_plans(app, policies, fault_model.k, samples,
                               seed=seed)
    failures: list[SimulationResult] = []
    worst = 0.0
    fault_free = 0.0
    for plan in plans:
        result = simulate(app, arch, mapping, policies, fault_model,
                          schedule, plan)
        if not result.ok:
            failures.append(result)
            continue
        worst = max(worst, result.makespan)
        if plan.is_fault_free():
            fault_free = result.makespan
    return VerificationReport(
        scenarios=len(plans),
        worst_makespan=worst,
        fault_free_makespan=fault_free,
        failures=failures,
        frozen_violations=[],
    )
