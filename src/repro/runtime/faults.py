"""Random fault-scenario sampling.

Exhaustive verification (:mod:`repro.runtime.verify`) enumerates every
fault scenario and is exponential in ``k``; for larger instances this
module draws scenarios uniformly-ish at random instead, supporting
Monte-Carlo validation (:func:`repro.runtime.verify.verify_tolerance_sampled`)
and statistical robustness testing.

Sampling model: the number of faults is drawn uniformly from
``1..k`` (the fault-free case is always included separately by the
callers), then each fault is assigned to a uniformly chosen copy that
can still absorb one (its total stays within ``R_j + 1`` — beyond that
the copy is already dead and cannot be hit again), landing in a
uniformly chosen segment among those the copy still executes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ftcpg.scenarios import (
    DesFaultPlan,
    FaultPlan,
    FaultWindow,
    SlotFault,
)
from repro.model.application import Application
from repro.policies.types import PolicyAssignment
from repro.utils.rng import DeterministicRng


def sample_fault_plan(app: Application, policies: PolicyAssignment,
                      k: int, rng: DeterministicRng) -> FaultPlan:
    """Draw one random fault plan with 1..k faults."""
    if k <= 0:
        return FaultPlan({})
    total = rng.randint(1, k)
    return sample_fault_plan_exact(app, policies, total, rng)


def sample_fault_plan_exact(app: Application, policies: PolicyAssignment,
                            total: int, rng: DeterministicRng,
                            ) -> FaultPlan:
    """Draw one random plan with exactly ``total`` faults (best effort:
    fewer when the copies cannot absorb that many, which the budget
    check ``total <= k`` normally rules out).

    This is the placement step of :func:`sample_fault_plan` exposed on
    its own so stratified samplers (one stratum per fault count, as in
    :mod:`repro.campaigns.sampling`) can control the total directly.
    """
    if total <= 0:
        return FaultPlan({})
    counts: dict[tuple[str, int], list[int]] = {}
    capacity: dict[tuple[str, int], int] = {}
    segments: dict[tuple[str, int], int] = {}
    keys: list[tuple[str, int]] = []
    for process, policy in policies.items():
        for copy_index, plan in enumerate(policy.copies):
            key = (process, copy_index)
            keys.append(key)
            capacity[key] = plan.recoveries + 1
            segments[key] = plan.segments

    placed = 0
    attempts = 0
    while placed < total and attempts < total * 20:
        attempts += 1
        key = rng.choice(keys)
        used = sum(counts.get(key, ()))
        if used >= capacity[key]:
            continue  # copy already dead
        per_segment = counts.setdefault(key, [0] * segments[key])
        # Faults can only hit segments the copy still reaches: with
        # rollback semantics that is any segment up to the first death,
        # which is only determined by the totals — uniformly choosing
        # any segment keeps the plan consistent.
        per_segment[rng.randint(0, segments[key] - 1)] += 1
        placed += 1

    return FaultPlan({
        key: tuple(values)
        for key, values in counts.items()
        if sum(values) > 0
    })


def sample_des_axes(rng: DeterministicRng, *,
                    node_names: Sequence[str],
                    process_names: Sequence[str],
                    horizon: float,
                    round_length: float,
                    slots_per_round: int,
                    intermittent: int = 0,
                    slot_faults: int = 0,
                    jitter: float = 0.0,
                    ) -> tuple[tuple[FaultWindow, ...],
                               tuple[SlotFault, ...],
                               dict[str, float]]:
    """Draw one set of DES-only axis values for one scenario.

    ``intermittent`` fault windows land on uniformly chosen nodes,
    switching on uniformly within the schedule horizon and staying
    active for 5–25% of it; ``slot_faults`` corrupted slot occurrences
    are drawn from the rounds the horizon covers (plus one round of
    retransmission headroom); each process gets a release delay drawn
    uniformly from ``[0, jitter]`` when ``jitter > 0``. All draws come
    from ``rng`` in a fixed order, so the extension is a pure function
    of the stream state.
    """
    windows: list[FaultWindow] = []
    for _ in range(intermittent):
        node = rng.choice(tuple(node_names))
        t_on = rng.uniform(0.0, max(horizon, 1.0))
        length = rng.uniform(0.05, 0.25) * max(horizon, 1.0)
        windows.append(FaultWindow(node=node, t_on=t_on,
                                   t_off=t_on + length))
    faults: list[SlotFault] = []
    rounds = max(1, int(max(horizon, 1.0) // round_length) + 1)
    for _ in range(slot_faults):
        faults.append(SlotFault(
            round_index=rng.randint(0, rounds),
            slot_index=rng.randint(0, slots_per_round - 1)))
    delays: dict[str, float] = {}
    if jitter > 0:
        for name in process_names:
            delays[name] = rng.uniform(0.0, jitter)
    return tuple(windows), tuple(faults), delays


def extend_fault_plans(plans: Sequence[FaultPlan], *,
                       node_names: Sequence[str],
                       process_names: Sequence[str],
                       horizon: float,
                       round_length: float,
                       slots_per_round: int,
                       intermittent: int = 0,
                       slot_faults: int = 0,
                       jitter: float = 0.0,
                       seed: int = 0,
                       ) -> list[FaultPlan | DesFaultPlan]:
    """Extend sampled fault plans with DES-only axes, deterministically.

    The first plan is left pristine when it is fault-free (campaign
    samplers anchor their sample on the fault-free scenario, which
    stays the oracle-checkable baseline); every other plan becomes a
    :class:`~repro.ftcpg.scenarios.DesFaultPlan` carrying freshly
    drawn axis values. The extension is a pure function of ``seed``
    and the plan order, so parallel campaign chunks — each of which
    samples the full plan list before slicing — derive byte-identical
    extended lists.
    """
    if intermittent <= 0 and slot_faults <= 0 and jitter <= 0:
        return list(plans)
    rng = DeterministicRng(seed)
    extended: list[FaultPlan | DesFaultPlan] = []
    for index, plan in enumerate(plans):
        if index == 0 and plan.is_fault_free():
            extended.append(plan)
            continue
        windows, faults, delays = sample_des_axes(
            rng, node_names=node_names, process_names=process_names,
            horizon=horizon, round_length=round_length,
            slots_per_round=slots_per_round, intermittent=intermittent,
            slot_faults=slot_faults, jitter=jitter)
        extended.append(DesFaultPlan(base=plan, windows=windows,
                                     slot_faults=faults, jitter=delays))
    return extended


def sample_fault_plans(app: Application, policies: PolicyAssignment,
                       k: int, count: int, *, seed: int = 0,
                       include_fault_free: bool = True,
                       ) -> list[FaultPlan]:
    """Draw ``count`` random plans (deduplicated, deterministic)."""
    rng = DeterministicRng(seed)
    plans: list[FaultPlan] = []
    seen: set[tuple] = set()
    if include_fault_free:
        plans.append(FaultPlan({}))
        seen.add(())
    attempts = 0
    while len(plans) < count + int(include_fault_free) \
            and attempts < count * 50:
        attempts += 1
        plan = sample_fault_plan(app, policies, k, rng)
        signature = tuple(sorted(plan.faults.items()))
        if signature in seen:
            continue
        seen.add(signature)
        plans.append(plan)
    return plans
