"""Random fault-scenario sampling.

Exhaustive verification (:mod:`repro.runtime.verify`) enumerates every
fault scenario and is exponential in ``k``; for larger instances this
module draws scenarios uniformly-ish at random instead, supporting
Monte-Carlo validation (:func:`repro.runtime.verify.verify_tolerance_sampled`)
and statistical robustness testing.

Sampling model: the number of faults is drawn uniformly from
``1..k`` (the fault-free case is always included separately by the
callers), then each fault is assigned to a uniformly chosen copy that
can still absorb one (its total stays within ``R_j + 1`` — beyond that
the copy is already dead and cannot be hit again), landing in a
uniformly chosen segment among those the copy still executes.
"""

from __future__ import annotations

from repro.ftcpg.scenarios import FaultPlan
from repro.model.application import Application
from repro.policies.types import PolicyAssignment
from repro.utils.rng import DeterministicRng


def sample_fault_plan(app: Application, policies: PolicyAssignment,
                      k: int, rng: DeterministicRng) -> FaultPlan:
    """Draw one random fault plan with 1..k faults."""
    if k <= 0:
        return FaultPlan({})
    total = rng.randint(1, k)
    return sample_fault_plan_exact(app, policies, total, rng)


def sample_fault_plan_exact(app: Application, policies: PolicyAssignment,
                            total: int, rng: DeterministicRng,
                            ) -> FaultPlan:
    """Draw one random plan with exactly ``total`` faults (best effort:
    fewer when the copies cannot absorb that many, which the budget
    check ``total <= k`` normally rules out).

    This is the placement step of :func:`sample_fault_plan` exposed on
    its own so stratified samplers (one stratum per fault count, as in
    :mod:`repro.campaigns.sampling`) can control the total directly.
    """
    if total <= 0:
        return FaultPlan({})
    counts: dict[tuple[str, int], list[int]] = {}
    capacity: dict[tuple[str, int], int] = {}
    segments: dict[tuple[str, int], int] = {}
    keys: list[tuple[str, int]] = []
    for process, policy in policies.items():
        for copy_index, plan in enumerate(policy.copies):
            key = (process, copy_index)
            keys.append(key)
            capacity[key] = plan.recoveries + 1
            segments[key] = plan.segments

    placed = 0
    attempts = 0
    while placed < total and attempts < total * 20:
        attempts += 1
        key = rng.choice(keys)
        used = sum(counts.get(key, ()))
        if used >= capacity[key]:
            continue  # copy already dead
        per_segment = counts.setdefault(key, [0] * segments[key])
        # Faults can only hit segments the copy still reaches: with
        # rollback semantics that is any segment up to the first death,
        # which is only determined by the totals — uniformly choosing
        # any segment keeps the plan consistent.
        per_segment[rng.randint(0, segments[key] - 1)] += 1
        placed += 1

    return FaultPlan({
        key: tuple(values)
        for key, values in counts.items()
        if sum(values) > 0
    })


def sample_fault_plans(app: Application, policies: PolicyAssignment,
                       k: int, count: int, *, seed: int = 0,
                       include_fault_free: bool = True,
                       ) -> list[FaultPlan]:
    """Draw ``count`` random plans (deduplicated, deterministic)."""
    rng = DeterministicRng(seed)
    plans: list[FaultPlan] = []
    seen: set[tuple] = set()
    if include_fault_free:
        plans.append(FaultPlan({}))
        seen.add(())
    attempts = 0
    while len(plans) < count + int(include_fault_free) \
            and attempts < count * 50:
        attempts += 1
        plan = sample_fault_plan(app, policies, k, rng)
        signature = tuple(sorted(plan.faults.items()))
        if signature in seen:
            continue
        seen.add(signature)
        plans.append(plan)
    return plans
