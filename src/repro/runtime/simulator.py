"""Discrete-event execution of conditional schedule tables.

The simulator is an *independent checker* of the scheduler's output: it
never re-derives start times — it executes the table under a concrete
fault scenario (a :class:`~repro.ftcpg.scenarios.FaultPlan`) and
verifies every invariant a distributed table-driven runtime relies on:

* ground truth first: from the fault plan alone, the simulator derives
  which attempts execute and which fail (rollback semantics: the j-th
  retry exists iff the previous attempt of that segment failed);
* an entry *fires* iff its guard is satisfied by the executed attempts;
* a fired entry must be **decidable** on its location: every guard
  literal's value must be known there by the entry's start (locally at
  the detection time, remotely at the broadcast arrival);
* fired attempts must not overlap on their processor, fired
  transmissions must not collide on the bus;
* a fired first attempt must have, for every input message, data from
  at least one *successful* producer copy available on its node (dead
  copies are fail-silent and deliver nothing);
* every process must complete (some copy runs all segments without
  dying) before the global deadline and its local deadline.

Any violation is reported in :class:`SimulationResult.errors`; the
exhaustive driver in :mod:`repro.runtime.verify` turns them into
:class:`~repro.errors.ToleranceViolationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.ftcpg.conditions import AttemptId
from repro.ftcpg.scenarios import FaultPlan
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import EntryKind, ScheduleSet, TableEntry
from repro.utils.mathutils import eps_cluster_ids, fgt, flt

CopyKey = tuple[str, int]


@dataclass(frozen=True)
class _GroundTruth:
    """Derived from the fault plan: what actually happens."""

    executed: dict[AttemptId, bool]  # attempt -> failed?
    copy_success: dict[CopyKey, bool]
    copy_segments_done: dict[CopyKey, int]


def _copy_ground_truth(process_name: str, copy_index: int, copy_plan,
                       counts: tuple[int, ...],
                       ) -> tuple[dict[AttemptId, bool], bool, int]:
    """Ground truth of one copy under a per-segment fault distribution.

    Returns ``(executed, success, segments_done)``. Shared between the
    whole-plan derivation below and the scenario-sweep verifier
    (:mod:`repro.verify.core`), which rebuilds truth copy-by-copy
    along the fault-plan enumeration tree — a copy's truth depends on
    nothing but its own distribution, which is what makes that fork
    legal.
    """
    executed: dict[AttemptId, bool] = {}
    local_faults = 0
    alive = True
    done = 0
    for segment in range(1, copy_plan.segments + 1):
        if not alive:
            break
        faults_here = counts[segment - 1] if segment <= len(counts) else 0
        for attempt in range(1, faults_here + 1):
            executed[AttemptId(process_name, copy_index, segment,
                               attempt)] = True
            local_faults += 1
            if local_faults > copy_plan.recoveries:
                alive = False
                break
        if not alive:
            break
        executed[AttemptId(process_name, copy_index, segment,
                           faults_here + 1)] = False
        done = segment
    return executed, alive and done == copy_plan.segments, done


def _derive_ground_truth(app: Application, policies: PolicyAssignment,
                         plan: FaultPlan) -> _GroundTruth:
    executed: dict[AttemptId, bool] = {}
    copy_success: dict[CopyKey, bool] = {}
    segments_done: dict[CopyKey, int] = {}
    for process_name, policy in policies.items():
        for copy_index, copy_plan in enumerate(policy.copies):
            key = (process_name, copy_index)
            counts = plan.faults.get(key) or ()
            copy_executed, success, done = _copy_ground_truth(
                process_name, copy_index, copy_plan, tuple(counts))
            executed.update(copy_executed)
            copy_success[key] = success
            segments_done[key] = done
    return _GroundTruth(executed=executed, copy_success=copy_success,
                        copy_segments_done=segments_done)


def _guard_fires(entry: TableEntry,
                 executed: Mapping[AttemptId, bool]) -> bool:
    """Whether an entry's guard is satisfied by the executed attempts."""
    for literal in entry.guard.literals:
        actual = executed.get(literal.attempt)
        if actual is None or actual != literal.faulty:
            return False
    return True


@dataclass
class SimulationResult:
    """Outcome of simulating one fault scenario."""

    plan: FaultPlan
    completed: dict[str, float]
    makespan: float
    errors: list[str] = field(default_factory=list)
    fired_entries: tuple[TableEntry, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the scenario executed without violations."""
        return not self.errors

    def start_of_attempt(self, attempt: AttemptId) -> float | None:
        """Fired start of one attempt, for invariant tests."""
        for entry in self.fired_entries:
            if entry.kind is EntryKind.ATTEMPT and entry.attempt == attempt:
                return entry.start
        return None


def simulate(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    schedule: ScheduleSet,
    plan: FaultPlan,
) -> SimulationResult:
    """Execute the schedule tables under one fault scenario."""
    truth = _derive_ground_truth(app, policies, plan)
    fired = [e for e in schedule.entries
             if _guard_fires(e, truth.executed)]
    return _finish_simulation(app, arch, mapping, policies, fault_model,
                              plan, truth, fired)


def _finish_simulation(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    plan: FaultPlan,
    truth: _GroundTruth,
    fired: list[TableEntry],
) -> SimulationResult:
    """Replay the already guard-filtered entries of one scenario.

    ``fired`` must hold exactly the entries whose guards the plan's
    ground truth satisfies, **in schedule-entry order** — the scenario
    sweep of :mod:`repro.verify.core` derives that list incrementally
    along shared fault-plan prefixes and re-enters here, so everything
    from the replay ordering on is one shared implementation and the
    two paths are bit-identical by construction. The event-driven
    simulator (:mod:`repro.des.core`) drives the same
    :class:`_ReplayState` with its queue-ordered entry stream, which
    is what makes *its* table path bit-identical too.
    """
    fired = _replay_order(fired)
    state = _ReplayState(app, arch, mapping, policies, fault_model,
                         plan, truth)
    state.prime(fired)
    for entry in fired:
        state.step(entry)
    return state.finish(fired)


class _ReplayState:
    """The per-scenario mutable state of the table-replay checker.

    One instance replays one fault scenario: :meth:`prime` derives the
    per-node condition-knowledge times from the fired entries,
    :meth:`step` processes one entry (in replay order), and
    :meth:`finish` applies the completion/deadline checks. Both the
    sorted replay above and the event-queue-ordered DES table path
    drive this same object, so their results are one implementation,
    not two kept in sync.
    """

    def __init__(self, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 fault_model: FaultModel, plan: FaultPlan,
                 truth: _GroundTruth) -> None:
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.policies = policies
        self.plan = plan
        self.truth = truth
        self.errors: list[str] = []
        if plan.total_faults > fault_model.k:
            self.errors.append(
                f"plan injects {plan.total_faults} faults, budget is "
                f"{fault_model.k}")
        # Knowledge of condition values per node: produced locally at
        # the detection point, remotely at the broadcast arrival.
        self.known_at: dict[tuple[AttemptId, str], float] = {}
        self.node_busy: dict[str, float] = {n: 0.0 for n in arch.node_names}
        #: (round, slot) -> entry; TDMA interleaves multi-frame
        #: transmissions, so collisions are checked per slot occurrence,
        #: not by busy intervals.
        self.slot_owner: dict[tuple[int, int], TableEntry] = {}
        #: message name -> node -> earliest time data from a
        #: successful copy
        self.delivered: dict[str, dict[str, float]] = {}
        #: (copy, segment) -> finish of the successful attempt
        self.segment_finish: dict[tuple[CopyKey, int], float] = {}
        #: copy -> finish time of the last fired attempt (continuity)
        self.attempt_finish: dict[AttemptId, float] = {}
        self.completion: dict[CopyKey, float] = {}

    def prime(self, fired: list[TableEntry]) -> None:
        """Derive condition-knowledge times from the fired entries."""
        truth = self.truth
        known_at = self.known_at
        for entry in fired:
            if entry.kind is EntryKind.ATTEMPT and entry.can_fail \
                    and entry.attempt in truth.executed:
                key = (entry.attempt, entry.location)
                known_at[key] = min(known_at.get(key, float("inf")),
                                    entry.end)
        for entry in fired:
            if entry.kind is EntryKind.BROADCAST \
                    and entry.attempt in truth.executed:
                for node in self.arch.node_names:
                    key = (entry.attempt, node)
                    known_at[key] = min(known_at.get(key, float("inf")),
                                        entry.end)

    def step(self, entry: TableEntry) -> None:
        """Process one fired entry (entries must arrive in replay
        order)."""
        if entry.kind is EntryKind.ATTEMPT:
            # Dead copies stop executing (fail-silence): attempts
            # beyond the death point are skipped by the local
            # scheduler and the slot idles.
            if entry.attempt not in self.truth.executed:
                return
            _check_attempt(entry, self.app, self.arch, self.mapping,
                           self.policies, self.truth, self.known_at,
                           self.node_busy, self.delivered,
                           self.segment_finish, self.attempt_finish,
                           self.completion, self.errors)
        else:
            # Bus activity: frame-level collision check, then effects.
            for frame in entry.frames:
                key = (frame.round_index, frame.slot_index)
                other = self.slot_owner.get(key)
                if other is not None and other is not entry:
                    self.errors.append(
                        f"bus collision in round {frame.round_index} "
                        f"slot {frame.slot_index}: {entry} vs {other}")
                self.slot_owner[key] = entry
            if entry.kind is EntryKind.MESSAGE:
                _deliver_message(entry, self.app, self.mapping, self.truth,
                                 self.delivered, self.completion,
                                 self.errors, self.arch)

    def finish(self, fired: list[TableEntry]) -> SimulationResult:
        """Completion & deadline checks; build the result."""
        errors = self.errors
        completed: dict[str, float] = {}
        for process in self.app.processes:
            finishes = [
                self.completion[(process.name, c)]
                for c in range(len(self.policies.of(process.name).copies))
                if (process.name, c) in self.completion
            ]
            if not finishes:
                errors.append(f"process {process.name!r} never completed "
                              f"(plan: {self.plan.describe()})")
                continue
            completed[process.name] = min(finishes)
            if process.deadline is not None and \
                    fgt(completed[process.name], process.deadline):
                errors.append(
                    f"process {process.name!r} missed local deadline "
                    f"{process.deadline} (finished "
                    f"{completed[process.name]})")
        makespan = max(completed.values()) if completed else float("inf")
        if fgt(makespan, self.app.deadline):
            errors.append(
                f"global deadline {self.app.deadline} missed (makespan "
                f"{makespan}, plan {self.plan.describe()})")
        return SimulationResult(
            plan=self.plan,
            completed=completed,
            makespan=makespan,
            errors=errors,
            fired_entries=tuple(fired),
        )


def _kind_rank(entry: TableEntry) -> int:
    # At equal starts, bus effects are processed before attempts so an
    # attempt starting exactly at a message arrival sees the data.
    return {EntryKind.BROADCAST: 0, EntryKind.MESSAGE: 1,
            EntryKind.ATTEMPT: 2}[entry.kind]


def _replay_order(entries: list[TableEntry]) -> list[TableEntry]:
    """Sort for replay: by start, kind tie-break for near-tie starts.

    Two activations whose starts differ only by float rounding (which
    varies between platforms/libms) must replay in the *same* order
    everywhere, and the kind tie-break above must apply to them —
    otherwise an attempt can be replayed before the message that
    arrives "at the same time", producing a spurious missing-input or
    overlap error on one platform but not another. Starts are grouped
    by clustering *runs* closer than ``TIME_EPS`` (not by rounding to
    a fixed grid, which would still split a near-tie straddling a grid
    boundary); within a group, bus effects come before attempts. The
    anchored-run clustering itself lives in
    :func:`repro.utils.mathutils.eps_cluster_ids`, shared with the
    verifier's frozen-start bucketing.
    """
    ordered = sorted(entries, key=lambda e: (e.start, _kind_rank(e)))
    groups = eps_cluster_ids([entry.start for entry in ordered])
    keyed = [(group, _kind_rank(entry), entry.start, entry)
             for group, entry in zip(groups, ordered)]
    keyed.sort(key=lambda item: item[:3])
    return [item[3] for item in keyed]


def _check_attempt(entry, app, arch, mapping, policies, truth, known_at,
                   node_busy, delivered, segment_finish, attempt_finish,
                   completion, errors) -> None:
    attempt = entry.attempt
    key = (attempt.process, attempt.copy)
    node = entry.location

    # Guard decidability on this node.
    for literal in entry.guard.literals:
        known = known_at.get((literal.attempt, node))
        if known is None:
            errors.append(
                f"{attempt.label()} on {node}: guard literal {literal} "
                "is never known on this node")
        elif fgt(known, entry.start):
            errors.append(
                f"{attempt.label()} on {node}: starts at {entry.start} "
                f"but {literal} only known at {known}")

    # Processor exclusivity.
    if flt(entry.start, node_busy[node]):
        errors.append(
            f"{attempt.label()} overlaps on {node}: start {entry.start} "
            f"< busy-until {node_busy[node]}")
    node_busy[node] = max(node_busy[node], entry.end)

    # Continuity / inputs.
    if attempt.segment == 1 and attempt.attempt == 1:
        process = app.process(attempt.process)
        if flt(entry.start, process.release):
            errors.append(
                f"{attempt.label()} starts before its release "
                f"{process.release}")
        for message in app.inputs_of(attempt.process):
            at = delivered.get(message.name, {}).get(node)
            if at is None or fgt(at, entry.start):
                errors.append(
                    f"{attempt.label()} on {node} starts at {entry.start} "
                    f"without input {message.name!r} (available: {at})")
    elif attempt.attempt == 1:
        prev = segment_finish.get((key, attempt.segment - 1))
        if prev is None or fgt(prev, entry.start):
            errors.append(
                f"{attempt.label()} starts before segment "
                f"{attempt.segment - 1} finished ({prev})")
    else:
        prev_attempt = AttemptId(attempt.process, attempt.copy,
                                 attempt.segment, attempt.attempt - 1)
        prev = attempt_finish.get(prev_attempt)
        if prev is None or fgt(prev, entry.start):
            errors.append(
                f"retry {attempt.label()} starts before attempt "
                f"{attempt.attempt - 1} was detected faulty ({prev})")

    attempt_finish[attempt] = entry.end

    # Outcome.
    failed = truth.executed[attempt]
    if failed and not entry.can_fail:
        errors.append(
            f"{attempt.label()} was scheduled as fault-proof (no "
            "detection) but the plan injects a fault there")
    if not failed:
        segment_finish[(key, attempt.segment)] = entry.end
        plan_segments = policies.of(attempt.process).copies[
            attempt.copy].segments
        if attempt.segment == plan_segments and truth.copy_success[key]:
            completion[key] = entry.end
            _deliver_local(entry, app, mapping, delivered)


def _deliver_local(entry, app, mapping, delivered) -> None:
    """A successful copy's outputs are visible on its own node at its
    completion time."""
    attempt = entry.attempt
    for message in app.outputs_of(attempt.process):
        node = mapping.node_of(attempt.process, attempt.copy)
        slot = delivered.setdefault(message.name, {})
        if node not in slot or entry.end < slot[node]:
            slot[node] = entry.end


def _deliver_message(entry, app, mapping, truth, delivered, completion,
                     errors, arch) -> None:
    """A fired transmission delivers to every node iff its producer
    copy actually succeeded (fail-silent otherwise)."""
    message = app.message(entry.message)
    key = (message.src, entry.producer_copy)
    if not truth.copy_success.get(key, False):
        return  # dead copy: the reserved slot stays empty
    sent_at = completion.get(key)
    if sent_at is None or fgt(sent_at, entry.start):
        errors.append(
            f"message {entry.message!r} (copy {entry.producer_copy}) "
            f"transmitted at {entry.start} before its producer finished "
            f"({sent_at})")
    for node in arch.node_names:
        slot = delivered.setdefault(entry.message, {})
        if node not in slot or entry.end < slot[node]:
            slot[node] = entry.end
