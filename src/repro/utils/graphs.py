"""Tiny graph helpers (topological sort, reachability).

The library manipulates three graph flavours — the application graph,
the expanded copy graph used by the estimator and the FT-CPG — and all
of them only need deterministic topological ordering and reachability.
Determinism matters: the schedulers break priority ties by position in
a stable order, so the helpers preserve input ordering instead of
relying on hash order.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

from repro.errors import ValidationError

NodeT = TypeVar("NodeT", bound=Hashable)


def topological_order(
    nodes: Sequence[NodeT],
    successors: Mapping[NodeT, Iterable[NodeT]],
) -> list[NodeT]:
    """Kahn topological sort that preserves the relative order of
    ``nodes`` among ties.

    Raises :class:`ValidationError` if the graph has a cycle or an edge
    references an unknown node.
    """
    index = {node: i for i, node in enumerate(nodes)}
    if len(index) != len(nodes):
        raise ValidationError("duplicate nodes passed to topological_order")
    indegree = {node: 0 for node in nodes}
    for source, targets in successors.items():
        if source not in indegree:
            raise ValidationError(f"edge source {source!r} is not a node")
        for target in targets:
            if target not in indegree:
                raise ValidationError(f"edge target {target!r} is not a node")
            indegree[target] += 1

    ready = sorted(
        (node for node, deg in indegree.items() if deg == 0),
        key=index.__getitem__,
    )
    queue = deque(ready)
    order: list[NodeT] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        inserted = []
        for target in successors.get(node, ()):
            indegree[target] -= 1
            if indegree[target] == 0:
                inserted.append(target)
        # Keep deterministic order among newly-released nodes.
        for target in sorted(inserted, key=index.__getitem__):
            queue.append(target)
    if len(order) != len(nodes):
        stuck = [node for node, deg in indegree.items() if deg > 0]
        raise ValidationError(f"graph has a cycle involving {stuck!r}")
    return order


def transitive_successors(
    nodes: Sequence[NodeT],
    successors: Mapping[NodeT, Iterable[NodeT]],
) -> dict[NodeT, frozenset[NodeT]]:
    """Map each node to the frozenset of all nodes reachable from it.

    Computed in reverse topological order, so overall cost is
    O(V * average reachable set) — fine for the graph sizes used here
    (hundreds of processes).
    """
    order = topological_order(nodes, successors)
    reach: dict[NodeT, frozenset[NodeT]] = {}
    for node in reversed(order):
        acc: set[NodeT] = set()
        for target in successors.get(node, ()):
            acc.add(target)
            acc |= reach[target]
        reach[node] = frozenset(acc)
    return reach
