"""Deterministic random numbers for workload generation and search.

Everything stochastic in the library (workload generation, tabu
diversification) goes through :class:`DeterministicRng` so experiments
are reproducible from a single integer seed, and sub-streams can be
derived for independent components without coupling their draws.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

ItemT = TypeVar("ItemT")


def derive_seed(base: int, *labels: object) -> int:
    """Derive a reproducible child seed from a base seed and labels.

    Uses sha256 rather than ``hash()`` because Python randomizes
    string hashing per interpreter run; the result is stable across
    processes, which makes it the seed derivation of choice for
    parallel experiment jobs (every job derives its own stream from
    the sweep seed plus its grid coordinates).
    """
    text = ":".join([str(int(base)), *(str(label) for label in labels)])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class DeterministicRng:
    """A seeded wrapper around :class:`random.Random` with named
    sub-stream derivation.

    ``rng.substream("mapping")`` always yields the same stream for the
    same parent seed and name, regardless of how many draws were made
    from the parent — this keeps e.g. WCET generation stable when the
    edge-generation logic changes its number of draws.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def substream(self, name: str) -> "DeterministicRng":
        """Derive an independent, reproducible child stream.

        Uses sha256 rather than ``hash()`` because Python randomizes
        string hashing per interpreter run.
        """
        return DeterministicRng(derive_seed(self._seed, name))

    # -- thin pass-throughs -------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, items: Sequence[ItemT]) -> ItemT:
        """Uniformly pick one item of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[ItemT], count: int) -> list[ItemT]:
        """Sample ``count`` distinct items."""
        return self._random.sample(items, count)

    def shuffle(self, items: list[ItemT]) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)
