"""Numeric helpers used throughout the scheduling code.

All schedule times are floats (milliseconds in the paper's examples).
Checkpoint segments introduce divisions such as ``C / n``, so exact
``==`` comparisons on accumulated times are fragile; the ``f*``
comparison helpers below apply a fixed absolute tolerance that is far
below any meaningful timing quantity in the models (overheads are
milliseconds, the tolerance is a nanosecond).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

#: Absolute tolerance for schedule-time comparisons (1e-6 ms = 1 ns).
TIME_EPS = 1e-6


def feq(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if two times are equal within tolerance."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a <= b`` within tolerance."""
    return a <= b + eps


def fge(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a >= b`` within tolerance."""
    return a >= b - eps


def flt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a < b`` beyond tolerance."""
    return a < b - eps


def fgt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a > b`` beyond tolerance."""
    return a > b + eps


def eps_cluster_ids(values: Sequence[float],
                    eps: float = TIME_EPS) -> list[int]:
    """Anchored tolerance clustering of *nondecreasing* values.

    Returns one 0-based group id per value. A group holds the run of
    values within ``eps`` of its **first** member (anchored, not
    chained): transitive chaining could merge a run of N eps-spaced
    values into one group spanning ``N * eps``, while anchoring
    guarantees no group is wider than ``eps``. This is the single
    clustering rule shared by the simulator's replay ordering and the
    verifier's frozen-start bucketing, so "same time within tolerance"
    means the same thing in both places.

    >>> eps_cluster_ids([0.0, 0.5e-6, 2.0, 2.0 + 2e-6])
    [0, 0, 1, 2]
    """
    ids: list[int] = []
    group = -1
    anchor: float | None = None
    for value in values:
        if anchor is None or value - anchor > eps:
            group += 1
            anchor = value
        ids.append(group)
    return ids


def eps_representatives(values: Iterable[float],
                        eps: float = TIME_EPS) -> list[float]:
    """One representative (the smallest member) per anchored cluster.

    Values are sorted first; see :func:`eps_cluster_ids` for the
    clustering rule. Used to render sets of observed times without
    listing float-jitter duplicates.

    >>> eps_representatives([2.0, 0.0, 2.0 + 0.5e-6])
    [0.0, 2.0]
    """
    ordered = sorted(values)
    ids = eps_cluster_ids(ordered, eps)
    reps: list[float] = []
    last = -1
    for value, group in zip(ordered, ids):
        if group != last:
            reps.append(value)
            last = group
    return reps


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    if numerator < 0:
        raise ValueError("numerator must be non-negative")
    return -(-numerator // denominator)


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers.

    Used to compute the hyperperiod of a set of periodic applications
    (paper §4: the merged graph period is the LCM of all ``T_k``).
    """
    result = 1
    seen_any = False
    for value in values:
        seen_any = True
        if value <= 0:
            raise ValueError(f"periods must be positive, got {value}")
        result = math.lcm(result, value)
    if not seen_any:
        raise ValueError("lcm_many() needs at least one value")
    return result
