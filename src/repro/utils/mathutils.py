"""Numeric helpers used throughout the scheduling code.

All schedule times are floats (milliseconds in the paper's examples).
Checkpoint segments introduce divisions such as ``C / n``, so exact
``==`` comparisons on accumulated times are fragile; the ``f*``
comparison helpers below apply a fixed absolute tolerance that is far
below any meaningful timing quantity in the models (overheads are
milliseconds, the tolerance is a nanosecond).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

#: Absolute tolerance for schedule-time comparisons (1e-6 ms = 1 ns).
TIME_EPS = 1e-6


def feq(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if two times are equal within tolerance."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a <= b`` within tolerance."""
    return a <= b + eps


def fge(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a >= b`` within tolerance."""
    return a >= b - eps


def flt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a < b`` beyond tolerance."""
    return a < b - eps


def fgt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return True if ``a > b`` beyond tolerance."""
    return a > b + eps


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    if numerator < 0:
        raise ValueError("numerator must be non-negative")
    return -(-numerator // denominator)


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers.

    Used to compute the hyperperiod of a set of periodic applications
    (paper §4: the merged graph period is the LCM of all ``T_k``).
    """
    result = 1
    seen_any = False
    for value in values:
        seen_any = True
        if value <= 0:
            raise ValueError(f"periods must be positive, got {value}")
        result = math.lcm(result, value)
    if not seen_any:
        raise ValueError("lcm_many() needs at least one value")
    return result
