"""Small shared utilities: deterministic RNG, graph helpers, math
helpers and plain-text table rendering.

These are deliberately dependency-free so every other package can use
them without import cycles.
"""

from repro.utils.mathutils import (
    ceil_div,
    feq,
    fge,
    fgt,
    fle,
    flt,
    lcm_many,
)
from repro.utils.graphs import topological_order, transitive_successors
from repro.utils.rng import DeterministicRng
from repro.utils.textgrid import TextGrid

__all__ = [
    "ceil_div",
    "feq",
    "fge",
    "fgt",
    "fle",
    "flt",
    "lcm_many",
    "topological_order",
    "transitive_successors",
    "DeterministicRng",
    "TextGrid",
]
