"""Plain-text table rendering.

Used to print schedule tables in the style of the paper's Fig. 6 and to
format experiment result tables without pulling in any dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


class TextGrid:
    """A rectangular grid of strings rendered with aligned columns.

    >>> grid = TextGrid(["name", "value"])
    >>> grid.add_row(["alpha", "1"])
    >>> grid.add_row(["beta", "23"])
    >>> print(grid.render())
    name  | value
    ------+------
    alpha | 1
    beta  | 23
    """

    def __init__(self, header: Sequence[str]) -> None:
        if not header:
            raise ValueError("header must have at least one column")
        self._header = [str(cell) for cell in header]
        self._rows: list[list[str]] = []

    @property
    def column_count(self) -> int:
        """Number of columns in the grid."""
        return len(self._header)

    @property
    def row_count(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def add_row(self, row: Sequence[object]) -> None:
        """Append one data row; must match the header width."""
        if len(row) != len(self._header):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self._header)}"
            )
        self._rows.append([str(cell) for cell in row])

    def render(self, *, separator: str = " | ") -> str:
        """Render the grid with padded columns and a header rule."""
        widths = [len(cell) for cell in self._header]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(row: Sequence[str]) -> str:
            return separator.join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()

        rule = "-+-".join("-" * width for width in widths)
        lines = [fmt(self._header), rule]
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)
