"""Monte Carlo fault-injection campaigns (``repro campaign``).

The paper validates its estimation-driven synthesis only on small
exhaustive fault-scenario sets; this package scales that validation to
thousands of sampled scenarios per design:

* :mod:`repro.campaigns.sampling` — pluggable fault-plan sampling:
  exhaustive for small spaces, uniform and stratified-by-fault-count
  for large ones, all seeded via :func:`repro.utils.rng.derive_seed`;
* :mod:`repro.campaigns.stats` — streaming, exactly-mergeable
  aggregates per schedule (worst/mean finish, slack utilization,
  deadline-miss rate, estimate-gap histogram);
* :mod:`repro.campaigns.runner` — the campaign driver: plan chunks
  fan out as pure jobs through the PR 1 batch engine (process-pool
  parallelism, resumable JSONL checkpoints, byte-identical serial vs
  parallel reports).

See ``docs/campaigns.md`` for the full picture and
:mod:`repro.experiments.campaign` for the estimate-vs-simulated sweep
built on top.
"""

from repro.campaigns.runner import (
    CHUNK_RUNNER,
    PRESET_WORKLOADS,
    CampaignConfig,
    CampaignReport,
    campaign_jobs,
    load_campaign_workload,
    run_campaign,
    run_campaign_chunk,
)
from repro.campaigns.sampling import (
    MAX_EXHAUSTIVE_PLANS,
    SAMPLERS,
    chunk_slice,
    sample_campaign_plans,
)
from repro.campaigns.stats import (
    CampaignStats,
    broadcast_allowance,
    estimate_bound,
)

__all__ = [
    "CHUNK_RUNNER",
    "MAX_EXHAUSTIVE_PLANS",
    "PRESET_WORKLOADS",
    "SAMPLERS",
    "CampaignConfig",
    "CampaignReport",
    "CampaignStats",
    "broadcast_allowance",
    "campaign_jobs",
    "chunk_slice",
    "estimate_bound",
    "load_campaign_workload",
    "run_campaign",
    "run_campaign_chunk",
    "sample_campaign_plans",
]
