"""Streaming per-schedule statistics of a fault-injection campaign.

A campaign may simulate many thousands of plans across worker
processes, so the aggregates are *streaming* (O(1) memory per chunk)
and *mergeable*: every chunk job returns one JSON-able
:class:`CampaignStats`, and the parent folds them in job-submission
order. Merging is exact — counts add, extrema combine with min/max,
means are kept as (sum, count) — so a chunked parallel campaign
reports byte-identical aggregates to a serial one.

The central quantity is the **estimate gap**: the campaign compares
every simulated finish against the estimate *bound* — the
slack-sharing estimate of :func:`repro.schedule.estimation.
estimate_ft_schedule` plus the condition-broadcast allowance it
deliberately does not model (see :func:`estimate_bound`). A sound
bound means zero plans exceed it; the gap histogram shows how tight
it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.runtime.simulator import SimulationResult
from repro.schedule.estimation import FtEstimate
from repro.utils.mathutils import TIME_EPS, fgt

#: Gap histogram shape: ``HIST_BINS`` bins of ``HIST_BIN_PCT`` percent
#: of the bound each; the last bin absorbs everything beyond.
HIST_BIN_PCT = 5.0
HIST_BINS = 12


def broadcast_allowance(app: Application, arch: Architecture,
                        k: int) -> float:
    """Bus time the estimate does not model, bounded per instance.

    The exact conditional scheduler additionally pays
    condition-broadcast frames and knowledge waits: at most one TDMA
    round per observed fault and per cross-node dependency (see the
    module docstring of :mod:`repro.schedule.estimation` and the
    matching invariant pinned by ``tests/test_property_scheduling``).
    """
    return (k + len(app.process_names)) * arch.bus.round_length


def estimate_bound(app: Application, arch: Architecture,
                   estimate: FtEstimate, k: int) -> float:
    """The sound upper bound a campaign holds simulations against.

    The slack-sharing estimate plus the broadcast allowance dominates
    every simulated finish across the whole policy zoo — re-execution,
    checkpointing, replication and hybrids. The estimator serializes
    co-located copies earliest-start-first, exactly as the exact
    conditional scheduler's context exploration does (the ordering
    contract in :mod:`repro.schedule.estimation`), so replicated
    designs no longer need the exact tables' worst case as a floor;
    the seam is pinned positively by
    ``tests/test_campaigns.py::TestSoundnessSeam`` and swept by its
    hypothesis soundness property over replicated/hybrid designs.
    """
    return estimate.schedule_length + broadcast_allowance(app, arch, k)


@dataclass
class CampaignStats:
    """Mergeable aggregates over simulated fault plans."""

    plans: int = 0
    faulty_plans: int = 0
    violations: int = 0
    deadline_misses: int = 0
    unfinished: int = 0
    #: Plans whose simulated finish exceeded the estimate bound — the
    #: soundness counter; a correct seam keeps this at zero.
    exceeded: int = 0
    worst_makespan: float = 0.0
    makespan_sum: float = 0.0
    finished_plans: int = 0
    fault_free_makespan: float | None = None
    #: min over plans of (bound - makespan): how close any scenario
    #: came to the bound (negative iff ``exceeded`` > 0).
    min_gap: float | None = None
    util_sum: float = 0.0
    util_max: float = 0.0
    util_count: int = 0
    gap_hist: list[int] = field(
        default_factory=lambda: [0] * HIST_BINS)

    # -- observation ----------------------------------------------------------

    def observe(self, result: SimulationResult, *, bound: float,
                ff_length: float, deadline: float,
                expected_processes: int | None = None) -> None:
        """Fold one simulation outcome into the aggregates.

        Pass ``expected_processes`` so a plan under which only *some*
        processes complete counts as unfinished — its makespan (the
        max over the completers) understates the true, unbounded
        finish and must stay out of the worst/mean/gap statistics.
        """
        self.plans += 1
        faulty = not result.plan.is_fault_free()
        if faulty:
            self.faulty_plans += 1
        if not result.ok:
            self.violations += 1
        makespan = result.makespan
        incomplete = (expected_processes is not None
                      and len(result.completed) < expected_processes)
        if makespan == float("inf") or incomplete:
            # A plan under which some process never completes has, by
            # definition, missed the global deadline (the simulator
            # records the matching error); count it so the miss rate
            # agrees with the recorded violations.
            self.unfinished += 1
            self.deadline_misses += 1
            return
        self.finished_plans += 1
        self.makespan_sum += makespan
        self.worst_makespan = max(self.worst_makespan, makespan)
        if not faulty and self.fault_free_makespan is None:
            self.fault_free_makespan = makespan
        if fgt(makespan, deadline):
            self.deadline_misses += 1
        gap = bound - makespan
        exceeds = fgt(makespan, bound)
        if exceeds:
            self.exceeded += 1
        if self.min_gap is None or gap < self.min_gap:
            self.min_gap = gap
        if bound > 0 and not exceeds:
            # Exceeding plans stay out of the histogram: clamping their
            # negative gap into bin 0 would disguise an unsound run as
            # a set of tight-but-safe finishes. They are counted by
            # ``exceeded`` (and bounded below by ``min_gap``) instead.
            gap_pct = max(0.0, gap) / bound * 100.0
            index = min(int(gap_pct / HIST_BIN_PCT), HIST_BINS - 1)
            self.gap_hist[index] += 1
        if faulty and bound > ff_length + TIME_EPS:
            utilization = max(0.0, makespan - ff_length) \
                / (bound - ff_length)
            self.util_sum += utilization
            self.util_max = max(self.util_max, utilization)
            self.util_count += 1

    # -- merging --------------------------------------------------------------

    def merge(self, other: "CampaignStats") -> None:
        """Fold another chunk's aggregates into this one (exact)."""
        self.plans += other.plans
        self.faulty_plans += other.faulty_plans
        self.violations += other.violations
        self.deadline_misses += other.deadline_misses
        self.unfinished += other.unfinished
        self.exceeded += other.exceeded
        self.worst_makespan = max(self.worst_makespan,
                                  other.worst_makespan)
        self.makespan_sum += other.makespan_sum
        self.finished_plans += other.finished_plans
        if self.fault_free_makespan is None:
            self.fault_free_makespan = other.fault_free_makespan
        if other.min_gap is not None and (self.min_gap is None
                                          or other.min_gap < self.min_gap):
            self.min_gap = other.min_gap
        self.util_sum += other.util_sum
        self.util_max = max(self.util_max, other.util_max)
        self.util_count += other.util_count
        self.gap_hist = [a + b for a, b
                         in zip(self.gap_hist, other.gap_hist)]

    # -- derived --------------------------------------------------------------

    @property
    def mean_makespan(self) -> float:
        """Mean finish over plans that completed."""
        if not self.finished_plans:
            return 0.0
        return self.makespan_sum / self.finished_plans

    @property
    def mean_slack_utilization(self) -> float:
        """Mean fraction of the budgeted recovery slack consumed by
        faulty plans (0 = no slack used, 1 = bound reached)."""
        if not self.util_count:
            return 0.0
        return self.util_sum / self.util_count

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of simulated plans missing the global deadline."""
        if not self.plans:
            return 0.0
        return self.deadline_misses / self.plans

    # -- transport ------------------------------------------------------------

    def to_jsonable(self) -> dict:
        """Plain-JSON form (chunk results, campaign reports)."""
        return {
            "plans": self.plans,
            "faulty_plans": self.faulty_plans,
            "violations": self.violations,
            "deadline_misses": self.deadline_misses,
            "unfinished": self.unfinished,
            "exceeded": self.exceeded,
            "worst_makespan": self.worst_makespan,
            "makespan_sum": self.makespan_sum,
            "finished_plans": self.finished_plans,
            "fault_free_makespan": self.fault_free_makespan,
            "min_gap": self.min_gap,
            "util_sum": self.util_sum,
            "util_max": self.util_max,
            "util_count": self.util_count,
            "gap_hist": list(self.gap_hist),
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "CampaignStats":
        """Rebuild chunk aggregates from their JSON form."""
        stats = cls()
        for name in ("plans", "faulty_plans", "violations",
                     "deadline_misses", "unfinished", "exceeded",
                     "finished_plans", "util_count"):
            setattr(stats, name, int(payload[name]))
        for name in ("worst_makespan", "makespan_sum", "util_sum",
                     "util_max"):
            setattr(stats, name, float(payload[name]))
        for name in ("fault_free_makespan", "min_gap"):
            value = payload[name]
            setattr(stats, name,
                    None if value is None else float(value))
        stats.gap_hist = [int(c) for c in payload["gap_hist"]]
        if len(stats.gap_hist) != HIST_BINS:
            raise ValueError(
                f"gap histogram has {len(stats.gap_hist)} bins, "
                f"expected {HIST_BINS}")
        return stats
