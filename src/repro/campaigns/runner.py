"""Monte Carlo fault-injection campaigns over synthesized schedules.

A *campaign* takes one workload, synthesizes a fault-tolerant design
for it (strategy + tabu budget, exactly as the experiments do), builds
the exact conditional schedule tables, and then stress-tests those
tables under a sampled set of concrete fault plans — turning the
per-scenario checker of :mod:`repro.runtime.simulator` into an
empirical validation pipeline in the spirit of the transparent-recovery
validation line of Kandasamy et al. (see
:mod:`repro.schedule.estimation`).

Execution model
---------------

The plan set is split into ``chunks`` stride slices
(:func:`repro.campaigns.sampling.chunk_slice`); each chunk is one pure
:class:`~repro.engine.jobs.BatchJob` fanned out through the PR 1
:class:`~repro.engine.runner.BatchEngine` — so campaigns inherit the
engine's process-pool parallelism, resumable JSONL checkpoints and
deterministic reports for free. Every chunk re-derives the same
synthesis and the same plan list from the campaign seed (workers share
nothing), simulates its slice, and returns streaming
:class:`~repro.campaigns.stats.CampaignStats`; the parent folds chunk
stats in job-submission order, which makes serial and parallel
campaign reports byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from collections.abc import Mapping

from repro.campaigns.sampling import (
    SAMPLERS,
    chunk_slice,
    sample_campaign_plans,
)
from repro.campaigns.stats import (
    HIST_BIN_PCT,
    CampaignStats,
    estimate_bound,
)
from repro.engine import journal
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob
from repro.engine.runner import (
    BatchEngine,
    EngineConfig,
    ProgressCallback,
)
from repro.des.core import DesSimulator
from repro.errors import ToleranceViolationError
from repro.eval.core import EvaluatorPool
from repro.kernels import kernels_enabled, kernels_info
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.runtime.faults import extend_fault_plans
from repro.runtime.simulator import simulate
from repro.schedule.estimation import FtEstimate
from repro.schedule.table import ScheduleSet
from repro.synthesis.strategies import StrategyResult, synthesize
from repro.synthesis.tabu import TabuSettings
from repro.utils.rng import derive_seed
from repro.workloads.generator import GeneratorConfig, generate_workload
from repro.workloads.presets import SIMPLE_PRESETS

#: Import-path runner reference resolved by engine workers.
CHUNK_RUNNER = "repro.campaigns.runner:run_campaign_chunk"

#: Named workloads a campaign can target (all transparency-free).
PRESET_WORKLOADS = tuple(SIMPLE_PRESETS)


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: a workload, a design flow, and a sampling plan.

    ``workload`` is a JSON-able spec: ``{"preset": <name>}`` for one
    of :data:`PRESET_WORKLOADS`, or generator knobs
    ``{"processes": .., "nodes": .., "seed": ..}``. Keeping the spec
    declarative (instead of passing model objects) is what lets chunk
    jobs rebuild the instance inside worker processes and lets
    checkpoint files stay meaningful across runs.
    """

    workload: Mapping[str, object] = field(
        default_factory=lambda: {"processes": 8, "nodes": 2, "seed": 1})
    k: int = 2
    strategy: str = "MXR"
    sampler: str = "uniform"
    samples: int = 200
    chunks: int = 4
    seed: int = 0
    settings: TabuSettings = field(
        default_factory=lambda: TabuSettings(
            iterations=8, neighborhood=8, bus_contention=False))
    max_contexts: int = 200_000
    #: Certified mode: additionally run the exhaustive sharded
    #: verifier (:mod:`repro.verify`) on the very design the sampled
    #: plans stressed — same seed derivation, same chunk count — and
    #: fold the certificate into the report.
    certify: bool = False
    certify_max_scenarios: int = 200_000
    #: DES-only fault axes (docs/des.md): every sampled faulty plan is
    #: extended with this many intermittent fault windows …
    intermittent: int = 0
    #: … this many corrupted TDMA slot occurrences …
    slot_faults: int = 0
    #: … and per-process release jitter up to this many time units.
    #: Extended plans run through the event-driven simulator; the
    #: fault-free anchor plan stays pristine (oracle-checkable).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.sampler not in SAMPLERS:
            raise ValueError(
                f"unknown sampler {self.sampler!r}, expected one of "
                f"{SAMPLERS}")
        if self.chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {self.chunks}")
        if self.samples < 0:
            raise ValueError(
                f"samples must be >= 0, got {self.samples}")
        if self.intermittent < 0 or self.slot_faults < 0 \
                or self.jitter < 0:
            raise ValueError(
                "DES axes must be >= 0, got intermittent="
                f"{self.intermittent} slot_faults={self.slot_faults} "
                f"jitter={self.jitter}")

    @property
    def des_axes(self) -> dict:
        """The DES-only axis knobs as a JSON-able mapping."""
        return {
            "intermittent": self.intermittent,
            "jitter": self.jitter,
            "slot_faults": self.slot_faults,
        }

    @property
    def uses_des_axes(self) -> bool:
        """True when any DES-only axis is switched on."""
        return (self.intermittent > 0 or self.slot_faults > 0
                or self.jitter > 0)

    @property
    def label(self) -> str:
        """Stable id component naming the workload."""
        preset = self.workload.get("preset")
        if preset is not None:
            return str(preset)
        return (f"gen{self.workload.get('processes', 8)}p"
                f"{self.workload.get('nodes', 2)}n"
                f"s{self.workload.get('seed', 1)}")


def load_campaign_workload(spec: Mapping[str, object],
                           ) -> tuple[Application, Architecture]:
    """Rebuild the campaign's workload from its declarative spec."""
    unknown = set(spec) - {"preset", "processes", "nodes", "seed"}
    if unknown:
        raise ValueError(
            f"unknown workload spec key(s) {sorted(unknown)}; expected "
            "'preset' or generator knobs 'processes'/'nodes'/'seed'")
    preset = spec.get("preset")
    if preset is not None:
        if preset not in SIMPLE_PRESETS:
            raise ValueError(
                f"unknown campaign preset {preset!r}, expected one of "
                f"{PRESET_WORKLOADS}")
        return SIMPLE_PRESETS[preset]()
    return generate_workload(GeneratorConfig(
        processes=int(spec.get("processes", 8)),
        nodes=int(spec.get("nodes", 2)),
        seed=int(spec.get("seed", 1)),
    ))


def synthesize_campaign_design(app, arch, k: int, strategy: str,
                               settings: TabuSettings, seed: int, *,
                               pool: EvaluatorPool):
    """The design a campaign (or verification) seed produces.

    One shared derivation — tabu seed via
    ``derive_seed(seed, "campaign-tabu", settings.seed)`` — used by
    campaign chunks *and* the verification chunks of
    :mod:`repro.verify.runner`, so a certified campaign provably
    verifies the very design its sampled plans stressed: equal
    ``(workload, k, strategy, settings, seed)`` yields the identical
    synthesis on both sides.
    """
    fault_model = FaultModel(k=k)
    settings = replace(settings, seed=derive_seed(
        seed, "campaign-tabu", settings.seed))
    return synthesize(app, arch, fault_model, strategy,
                      settings=settings, cache=pool)


def campaign_jobs(config: CampaignConfig) -> list[BatchJob]:
    """One engine job per plan chunk."""
    return grid_jobs(
        CHUNK_RUNNER,
        {"chunk": tuple(range(config.chunks))},
        prefix=f"campaign/{config.label}/k={config.k}"
               f"/{config.strategy}/{config.sampler}",
        common={
            "workload": dict(config.workload),
            "k": config.k,
            "strategy": config.strategy,
            "sampler": config.sampler,
            "samples": config.samples,
            "chunks": config.chunks,
            "seed": config.seed,
            "settings": asdict(config.settings),
            "max_contexts": config.max_contexts,
            "intermittent": config.intermittent,
            "slot_faults": config.slot_faults,
            "jitter": config.jitter,
        },
    )


@dataclass
class CampaignDesign:
    """One fully evaluated campaign design context.

    Everything :func:`run_campaign_chunk` derives from the seed before
    it starts simulating: the instance, the synthesized design, the
    exact tables and the certified estimate bound. Exposed so
    in-process callers that need both the sampled campaign *and* an
    exhaustive verification of the same design (the certified sweep
    cells of :mod:`repro.experiments.campaign`) build it once instead
    of re-running the synthesis per phase.
    """

    app: Application
    arch: Architecture
    fault_model: FaultModel
    result: StrategyResult
    schedule: ScheduleSet
    certified: FtEstimate
    bound: float
    pool: EvaluatorPool


def build_campaign_design(params: Mapping[str, object],
                          ) -> CampaignDesign:
    """Derive the chunk's design context from its params (pure)."""
    app, arch = load_campaign_workload(params["workload"])
    k = int(params["k"])
    fault_model = FaultModel(k=k)
    pool = EvaluatorPool()
    result = synthesize_campaign_design(
        app, arch, k, str(params["strategy"]),
        TabuSettings(**params["settings"]), int(params["seed"]),
        pool=pool)
    evaluator = pool.evaluator_for(app, arch, fault_model)
    schedule = evaluator.exact_schedule(
        result.policies, result.mapping,
        max_contexts=int(params["max_contexts"]))
    # The soundness seam: simulations are held against the *budgeted*
    # slack-sharing estimate (sound for the replication hybrids the
    # search may pick — the default "max" rule is not; see
    # :func:`repro.schedule.estimation.estimate_ft_schedule`) plus the
    # condition-broadcast allowance the estimation model skips. The
    # estimator shares the exact scheduler's earliest-start-first
    # replica serialization, so the bound needs no exact-tables floor;
    # the tables built above serve simulation and the report's
    # exact_worst_case gap column only.
    certified = evaluator.estimate(
        result.policies, result.mapping, slack_sharing="budgeted")
    bound = estimate_bound(app, arch, certified, k)
    return CampaignDesign(app=app, arch=arch, fault_model=fault_model,
                          result=result, schedule=schedule,
                          certified=certified, bound=bound, pool=pool)


def run_campaign_chunk(params: Mapping[str, object],
                       design: CampaignDesign | None = None) -> dict:
    """One chunk: synthesize, build exact tables, simulate a slice.

    Pure function of its params (the engine's worker contract). The
    synthesis seed and the sampling seed are both derived from the
    campaign seed — *not* from the chunk index — so every chunk
    reproduces the identical design and plan list and only its stride
    slice differs. ``design`` lets an in-process caller hand in the
    :func:`build_campaign_design` context it already built (engine
    workers always rebuild from the params).
    """
    if design is None:
        design = build_campaign_design(params)
    app, arch = design.app, design.arch
    fault_model = design.fault_model
    result, schedule = design.result, design.schedule
    k = fault_model.k

    plans = sample_campaign_plans(
        app, result.policies, k,
        sampler=str(params["sampler"]),
        samples=int(params["samples"]),
        seed=derive_seed(int(params["seed"]), "campaign-plans"))
    # DES-only axes (docs/des.md): every chunk extends the *full* plan
    # list with the same derived seed before slicing, so the extended
    # scenarios — like the base plans — are a pure function of the
    # campaign seed and byte-identical across chunks.
    intermittent = int(params.get("intermittent", 0))
    slot_faults = int(params.get("slot_faults", 0))
    jitter = float(params.get("jitter", 0.0))
    plans = extend_fault_plans(
        plans,
        node_names=arch.node_names,
        process_names=app.process_names,
        horizon=schedule.worst_case_length,
        round_length=arch.bus.round_length,
        slots_per_round=len(arch.bus.slot_order),
        intermittent=intermittent,
        slot_faults=slot_faults,
        jitter=jitter,
        seed=derive_seed(int(params["seed"]), "campaign-des"))
    slice_plans = chunk_slice(plans, int(params["chunk"]),
                              int(params["chunks"]))

    des = None
    if intermittent > 0 or slot_faults > 0 or jitter > 0:
        des = DesSimulator(app, arch, result.mapping, result.policies,
                           fault_model, schedule)
    batched = None
    if des is None and kernels_enabled():
        # Table-expressible plans only (no DES axes): the batched
        # kernel replays them bit-identically to simulate(), falling
        # back to the oracle per plan for anything it cannot prove.
        from repro.kernels.batch import BatchedSimulator
        batched = BatchedSimulator(app, arch, result.mapping,
                                   result.policies, fault_model,
                                   schedule)
    stats = CampaignStats()
    for plan in slice_plans:
        if des is not None:
            # The DES executes every plan: table-expressible ones
            # bit-identically to replay, extended ones forward.
            outcome = des.simulate(plan)
        elif batched is not None:
            outcome = batched.simulate_plan(plan)
        else:
            outcome = simulate(app, arch, result.mapping,
                               result.policies, fault_model, schedule,
                               plan)
        stats.observe(outcome, bound=design.bound,
                      ff_length=result.estimate.ff_length,
                      deadline=app.deadline,
                      expected_processes=len(app.process_names))
    cache_stats = design.pool.stats()
    return {
        "chunk": int(params["chunk"]),
        "plans_total": len(plans),
        "stats": stats.to_jsonable(),
        "cache_hits": cache_stats.estimates.hits,
        "cache_misses": cache_stats.estimates.misses,
        "cache_entries": cache_stats.estimates.entries,
        "estimate": result.estimate.schedule_length,
        "certified_estimate": design.certified.schedule_length,
        "estimate_bound": design.bound,
        "exact_worst_case": schedule.worst_case_length,
        "fault_free_length": result.estimate.ff_length,
        "nft_length": result.nft_length,
        "deadline": app.deadline,
        "processes": len(app.process_names),
        "nodes": len(arch.node_names),
    }


#: Scalars every chunk of one campaign must agree on (they all derive
#: from the same seed); a mismatch means a runner broke purity.
_CONSISTENT_KEYS = ("plans_total", "estimate", "certified_estimate",
                    "estimate_bound",
                    "exact_worst_case", "fault_free_length",
                    "nft_length", "deadline", "processes", "nodes")


@dataclass
class CampaignReport:
    """Merged outcome of one campaign (all chunks)."""

    config: CampaignConfig
    stats: CampaignStats
    estimate: float
    certified_estimate: float
    estimate_bound: float
    exact_worst_case: float
    fault_free_length: float
    nft_length: float
    deadline: float
    processes: int
    nodes: int
    plans_total: int
    cache_hits: int = 0
    cache_misses: int = 0
    executed_chunks: int = 0
    resumed_chunks: int = 0
    #: The exhaustive certificate of certified-mode campaigns
    #: (:class:`repro.verify.VerifyReport`), None otherwise.
    verification: object | None = None
    #: Why a requested certificate was skipped (scenario count beyond
    #: ``certify_max_scenarios``), None when it ran or was not asked.
    certify_skipped: str | None = None

    @property
    def ok(self) -> bool:
        """True when no plan violated an invariant, missed a deadline,
        or finished beyond the estimate bound — and, in certified
        mode, the exhaustive verification passed as well (a *skipped*
        certificate leaves the sampled verdict untouched, like a
        frontier design beyond the DSE scenario budget)."""
        certified = (self.verification is None
                     or self.verification.ok)
        return (self.stats.violations == 0
                and self.stats.deadline_misses == 0
                and self.stats.exceeded == 0
                and certified)

    # -- deterministic export -------------------------------------------------

    def to_jsonable(self) -> dict:
        """Timing-free report payload (byte-stable across runs)."""
        stats = self.stats.to_jsonable()
        stats["mean_makespan"] = self.stats.mean_makespan
        stats["mean_slack_utilization"] = \
            self.stats.mean_slack_utilization
        stats["deadline_miss_rate"] = self.stats.deadline_miss_rate
        payload = {
            "campaign": {
                "workload": self.config.label,
                "k": self.config.k,
                "strategy": self.config.strategy,
                "sampler": self.config.sampler,
                "samples": self.config.samples,
                "chunks": self.config.chunks,
                "seed": self.config.seed,
            },
            "des_axes": (self.config.des_axes
                         if self.config.uses_des_axes else None),
            "instance": {
                "processes": self.processes,
                "nodes": self.nodes,
                "deadline": self.deadline,
            },
            "schedule": {
                "estimate": self.estimate,
                "certified_estimate": self.certified_estimate,
                "estimate_bound": self.estimate_bound,
                "exact_worst_case": self.exact_worst_case,
                "fault_free_length": self.fault_free_length,
                "nft_length": self.nft_length,
            },
            "plans_total": self.plans_total,
            "gap_hist_bin_pct": HIST_BIN_PCT,
            "stats": stats,
            # One table set per design; DES-extended plans are not
            # batch-eligible (deterministic shape, not live counters).
            "kernels": kernels_info(
                compiled_tables=1,
                batched_scenarios=(0 if self.config.uses_des_axes
                                   else self.plans_total)),
        }
        if self.verification is not None:
            payload["verification"] = self.verification.to_jsonable()
        elif self.certify_skipped is not None:
            payload["verification"] = {"skipped": self.certify_skipped}
        return payload

    def to_json(self) -> str:
        """Canonical JSON text of the report."""
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> None:
        """Write the canonical JSON report (atomic replace)."""
        journal.write_atomic_text(path, self.to_json() + "\n")

    def summary_lines(self) -> list[str]:
        """Human-readable aggregate summary (CLI output)."""
        stats = self.stats
        lines = [
            f"workload {self.config.label}: {self.processes} processes "
            f"on {self.nodes} nodes, k = {self.config.k}, "
            f"strategy {self.config.strategy}",
            f"{stats.plans} plans simulated "
            f"({self.config.sampler} sampler, {self.config.chunks} "
            f"chunk(s); {self.executed_chunks} executed, "
            f"{self.resumed_chunks} resumed; per-chunk synthesis "
            f"estimation cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses)",
            f"finish: worst {stats.worst_makespan:.1f}, "
            f"mean {stats.mean_makespan:.1f}, "
            f"fault-free {_fmt_opt(stats.fault_free_makespan)} "
            f"simulated ({self.fault_free_length:.1f} estimated), "
            f"deadline {self.deadline:.1f}",
            f"estimate {self.estimate:.1f} (certified "
            f"{self.certified_estimate:.1f}, bound "
            f"{self.estimate_bound:.1f}, exact worst case "
            f"{self.exact_worst_case:.1f})",
            f"slack utilization: mean "
            f"{stats.mean_slack_utilization * 100:.1f} %, "
            f"max {stats.util_max * 100:.1f} %",
            f"violations {stats.violations}, deadline misses "
            f"{stats.deadline_misses}, plans beyond the estimate "
            f"bound {stats.exceeded} (min gap "
            f"{0.0 if stats.min_gap is None else stats.min_gap:.1f})",
        ]
        if self.config.uses_des_axes:
            lines.append(
                f"DES axes per faulty plan: "
                f"{self.config.intermittent} intermittent window(s), "
                f"{self.config.slot_faults} corrupted slot(s), "
                f"jitter up to {self.config.jitter:g} "
                "(event-driven simulator; beyond the k-fault "
                "hypothesis)")
        if self.verification is not None:
            verify = self.verification
            verdict = ("CERTIFIED" if verify.ok
                       else "NOT certified")
            lines.append(
                f"certificate: {verify.stats.scenarios} scenarios "
                f"verified exhaustively, worst "
                f"{verify.stats.worst_makespan:.1f}, "
                f"{verify.stats.failures} failure(s) -> {verdict} "
                f"for k = {self.config.k}")
        elif self.certify_skipped is not None:
            lines.append(f"certificate: SKIPPED — "
                         f"{self.certify_skipped}")
        return lines


def _fmt_opt(value: float | None) -> str:
    """One-decimal float, or a dash when no plan anchored the value."""
    return "-" if value is None else f"{value:.1f}"


def run_campaign(config: CampaignConfig, *,
                 engine_config: EngineConfig | None = None,
                 progress: ProgressCallback | None = None,
                 ) -> CampaignReport:
    """Run (or resume) one campaign through the batch engine.

    In certified mode (``config.certify``) the sampled stress test is
    followed by an exhaustive sharded verification of the same design
    (same seed derivation, same engine configuration — distinct job
    ids, so a shared checkpoint file serves both phases) and the
    certificate lands in :attr:`CampaignReport.verification`.
    """
    engine = BatchEngine(engine_config or EngineConfig())
    batch = engine.run(campaign_jobs(config), progress=progress)
    cells = batch.results()

    first = cells[0]
    for cell in cells[1:]:
        for key in _CONSISTENT_KEYS:
            if cell[key] != first[key]:
                raise RuntimeError(
                    f"campaign chunks disagree on {key!r}: "
                    f"{cell[key]!r} != {first[key]!r} — a chunk "
                    "runner is not a pure function of the seed")

    verification = None
    certify_skipped = None
    if config.certify:
        # Imported lazily: repro.verify.runner imports this module
        # for the shared design derivation.
        from repro.verify.runner import (
            VerifyConfig,
            run_verification,
        )
        try:
            verification = run_verification(
                VerifyConfig(
                    workload=config.workload,
                    k=config.k,
                    strategy=config.strategy,
                    chunks=config.chunks,
                    seed=config.seed,
                    settings=config.settings,
                    max_contexts=config.max_contexts,
                    max_scenarios=config.certify_max_scenarios,
                ),
                engine_config=engine_config, progress=progress)
        except ToleranceViolationError as error:
            # Scenario count beyond the certify ceiling: keep the
            # sampled report, record why the certificate is missing
            # (same degrade-not-crash shape as the DSE frontier).
            certify_skipped = str(error)
        else:
            if verification.exact_worst_case != float(
                    cells[0]["exact_worst_case"]):
                raise RuntimeError(
                    "certified campaign verified a different design "
                    "than it sampled — the shared seed derivation "
                    f"broke ({verification.exact_worst_case!r} != "
                    f"{cells[0]['exact_worst_case']!r})")

    merged = CampaignStats()
    for cell in cells:
        merged.merge(CampaignStats.from_jsonable(cell["stats"]))
    return CampaignReport(
        config=config,
        stats=merged,
        estimate=float(first["estimate"]),
        certified_estimate=float(first["certified_estimate"]),
        estimate_bound=float(first["estimate_bound"]),
        exact_worst_case=float(first["exact_worst_case"]),
        fault_free_length=float(first["fault_free_length"]),
        nft_length=float(first["nft_length"]),
        deadline=float(first["deadline"]),
        processes=int(first["processes"]),
        nodes=int(first["nodes"]),
        plans_total=int(first["plans_total"]),
        cache_hits=sum(int(c.get("cache_hits", 0)) for c in cells),
        cache_misses=sum(int(c.get("cache_misses", 0))
                         for c in cells),
        executed_chunks=batch.executed,
        resumed_chunks=batch.resumed,
        verification=verification,
        certify_skipped=certify_skipped,
    )
