"""Fault-plan sampling strategies for Monte Carlo campaigns.

A campaign stresses one synthesized schedule under many concrete
fault scenarios. Which scenarios depends on the instance size:

* ``exhaustive`` — every plan :func:`repro.ftcpg.scenarios.
  iter_fault_plans` enumerates, for instances whose plan count
  (:func:`repro.ftcpg.scenarios.count_fault_plans`) is small enough;
* ``uniform`` — the fault-free plan plus random plans whose fault
  count is drawn uniformly from ``1..k``
  (:func:`repro.runtime.faults.sample_fault_plans`);
* ``stratified`` — one stratum per total fault count ``1..k`` with an
  equal share of the sample budget each (a saturated stratum donates
  its unused quota to the rest). Uniform sampling concentrates
  on mid-range counts (there are combinatorially more of them);
  stratification guarantees the rare extremes — single faults and the
  full budget ``k``, which exercise the deepest recovery slack — are
  covered even with small budgets.

All strategies are deterministic: the drawn plan *list* is a pure
function of ``(instance, strategy, samples, seed)``, with per-stratum
streams derived via :func:`repro.utils.rng.derive_seed`. Campaign
chunks rely on this — every chunk re-derives the same list and
simulates its own stride slice (:func:`chunk_slice`), so a chunked
parallel run covers exactly the plans a serial run covers.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

from repro.errors import PolicyError
from repro.ftcpg.scenarios import (
    FaultPlan,
    count_fault_plans,
    iter_fault_plans,
)
from repro.model.application import Application
from repro.policies.types import PolicyAssignment
from repro.runtime.faults import sample_fault_plan_exact, sample_fault_plans
from repro.utils.rng import DeterministicRng, derive_seed

#: Strategy names accepted by :func:`sample_campaign_plans`.
SAMPLERS = ("exhaustive", "uniform", "stratified")

#: Refuse exhaustive enumeration beyond this many plans.
MAX_EXHAUSTIVE_PLANS = 200_000


def sample_campaign_plans(
    app: Application,
    policies: PolicyAssignment,
    k: int,
    *,
    sampler: str = "uniform",
    samples: int = 200,
    seed: int = 0,
) -> list[FaultPlan]:
    """The deterministic plan list of one campaign.

    The fault-free plan always comes first (every strategy includes
    it: it anchors the slack-utilization statistic). ``samples``
    bounds the number of *faulty* plans and is ignored by
    ``exhaustive``, which always yields the complete scenario set.
    """
    if sampler not in SAMPLERS:
        raise ValueError(
            f"unknown sampler {sampler!r}, expected one of {SAMPLERS}")
    if samples < 0:
        raise ValueError(f"samples must be >= 0, got {samples}")
    if sampler == "exhaustive":
        total = count_fault_plans(app, policies, k)
        if total > MAX_EXHAUSTIVE_PLANS:
            raise PolicyError(
                f"{total} fault plans exceed the exhaustive campaign "
                f"limit {MAX_EXHAUSTIVE_PLANS}; use the 'uniform' or "
                "'stratified' sampler")
        return list(iter_fault_plans(app, policies, k))
    if sampler == "uniform":
        return sample_fault_plans(app, policies, k, samples, seed=seed)
    return _stratified_plans(app, policies, k, samples, seed)


def _stratified_plans(app: Application, policies: PolicyAssignment,
                      k: int, samples: int, seed: int,
                      ) -> list[FaultPlan]:
    """Equal sample share per total fault count ``1..k``.

    A stratum that saturates (tiny instances have only a handful of
    distinct low-count plans) donates its unused quota to the
    remaining strata, so the campaign delivers as close to ``samples``
    faulty plans as the instance admits instead of silently
    under-sampling.
    """
    plans: list[FaultPlan] = [FaultPlan({})]
    seen: set[tuple] = {()}
    if k <= 0:
        return plans
    strata = list(range(1, k + 1))
    rngs = {total: DeterministicRng(derive_seed(seed, "stratum", total))
            for total in strata}

    def draw_one(total: int) -> bool:
        """Add one fresh plan of ``total`` faults; False = saturated.

        Saturation is detected by rejection sampling, so a stratum
        whose remaining fresh plans are a tiny fraction of its space
        can (deterministically per seed) be declared exhausted a few
        plans early; the report's ``plans`` count is the ground truth
        for how many were actually simulated.
        """
        for _attempt in range(200):
            plan = sample_fault_plan_exact(app, policies, total,
                                           rngs[total])
            signature = tuple(sorted(plan.faults.items()))
            if signature not in seen:
                seen.add(signature)
                plans.append(plan)
                return True
        return False

    exhausted: set[int] = set()
    for total in strata:
        quota = samples // k + (1 if total <= samples % k else 0)
        for _ in range(quota):
            if not draw_one(total):
                exhausted.add(total)
                break
    # Spill pass: hand the unused quota of saturated strata to the
    # rest, round-robin so no single fault count dominates the spill.
    while len(plans) - 1 < samples and len(exhausted) < len(strata):
        progressed = False
        for total in strata:
            if total in exhausted or len(plans) - 1 >= samples:
                continue
            if draw_one(total):
                progressed = True
            else:
                exhausted.add(total)
        if not progressed:
            break
    return plans


ItemT = TypeVar("ItemT")


def chunk_slice(plans: Sequence[ItemT], chunk: int, chunks: int,
                ) -> list[ItemT]:
    """The stride slice of one work chunk.

    Chunk ``i`` of ``n`` processes ``plans[i::n]``; the slices
    partition the list exactly, so the union over all chunks —
    however they are scheduled — is the serial run. Generic on
    purpose: campaigns slice fault plans, the design-space explorer
    (:mod:`repro.dse`) slices candidates.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    if not 0 <= chunk < chunks:
        raise ValueError(f"chunk must be in [0, {chunks}), got {chunk}")
    return list(plans[chunk::chunks])
