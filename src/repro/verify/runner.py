"""Sharded verification through the batch engine (``repro verify``).

A *verification* takes one workload, synthesizes a fault-tolerant
design for it (exactly the derivation :func:`repro.campaigns.runner.
synthesize_campaign_design` gives a campaign with the same seed),
builds the exact conditional schedule tables, and then **proves** the
tolerance claim: every fault scenario within the budget ``k`` is
simulated, every run-time invariant checked, and the transparency
contract audited — the end-to-end certificate the paper's §5.2
schedule tables promise.

Execution model — the same discipline as :mod:`repro.campaigns`: the
scenario order is split into ``chunks`` **contiguous** windows
(:func:`repro.verify.core.chunk_bounds`; contiguous, not strided,
because the sweep's prefix-reuse fork feeds on scenario adjacency).
Each chunk is one pure :class:`~repro.engine.jobs.BatchJob` through
the :class:`~repro.engine.runner.BatchEngine` — process-pool
parallelism, resumable JSONL checkpoints, deterministic fold order.
Every chunk re-derives the same design from the seed, sweeps its
window, and returns streaming
:class:`~repro.verify.stats.VerificationStats`; the parent folds
chunk stats in job-submission order, which makes serial and parallel
verification reports byte-identical — and, because the sweep is
bit-identical to one-shot simulation, identical to a run with
``REPRO_VERIFY_INCREMENTAL=0`` as well.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from collections.abc import Mapping

from repro.campaigns.runner import (
    load_campaign_workload,
    synthesize_campaign_design,
)
from repro.campaigns.stats import estimate_bound
from repro.des.core import DesSimulator
from repro.engine import journal
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob
from repro.engine.runner import (
    BatchEngine,
    EngineConfig,
    ProgressCallback,
)
from repro.errors import ToleranceViolationError
from repro.eval.core import EvaluatorPool
from repro.ftcpg.scenarios import count_fault_plans, iter_fault_plans
from repro.kernels import kernels_enabled, kernels_info
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.model.transparency import Transparency
from repro.runtime.faults import extend_fault_plans, sample_fault_plans
from repro.synthesis.tabu import TabuSettings
from repro.utils.rng import derive_seed
from repro.verify.core import ScenarioSweep, chunk_bounds
from repro.verify.stats import VerificationStats
from repro.workloads.presets import brake_by_wire, fig5_example

#: Import-path runner reference resolved by engine workers.
CHUNK_RUNNER = "repro.verify.runner:run_verify_chunk"

#: Default ceiling on exhaustively simulated scenarios. Far above the
#: legacy serial verifier's 100k — sharding and prefix reuse are what
#: make Fig. 7/8-scale scenario sets tractable — but still a guard
#: against accidentally exponential instances.
DEFAULT_MAX_SCENARIOS = 2_000_000


@dataclass(frozen=True)
class VerifyConfig:
    """One verification: a workload, a design flow, and a shard grid.

    ``workload`` is the campaigns' declarative spec plus the two
    transparency-carrying presets: ``{"preset": "fig5"}`` /
    ``{"preset": "bbw"}`` (whose preset transparency is then enforced
    as part of the certificate), any
    :data:`~repro.workloads.presets.SIMPLE_PRESETS` name, or generator
    knobs ``{"processes": .., "nodes": .., "seed": ..}``.
    """

    workload: Mapping[str, object] = field(
        default_factory=lambda: {"processes": 5, "nodes": 2, "seed": 1})
    k: int = 2
    strategy: str = "MXR"
    chunks: int = 4
    seed: int = 0
    settings: TabuSettings = field(
        default_factory=lambda: TabuSettings(
            iterations=8, neighborhood=8, bus_contention=False))
    max_contexts: int = 200_000
    max_scenarios: int = DEFAULT_MAX_SCENARIOS
    #: DES-only scenario sampling (docs/des.md): this many random
    #: fault plans are extended with the axes below and executed
    #: one-shot through the event-driven simulator in the parent —
    #: they are beyond the table-expressible enumeration, so the
    #: sharded prefix-reuse sweep cannot carry them.
    des_scenarios: int = 0
    intermittent: int = 1
    slot_faults: int = 1
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {self.chunks}")
        if self.max_scenarios < 1:
            raise ValueError(
                f"max_scenarios must be >= 1, got {self.max_scenarios}")
        if self.des_scenarios < 0 or self.intermittent < 0 \
                or self.slot_faults < 0 or self.jitter < 0:
            raise ValueError(
                "DES knobs must be >= 0, got des_scenarios="
                f"{self.des_scenarios} intermittent="
                f"{self.intermittent} slot_faults={self.slot_faults} "
                f"jitter={self.jitter}")

    @property
    def label(self) -> str:
        """Stable id component naming the workload."""
        preset = self.workload.get("preset")
        if preset is not None:
            return str(preset)
        # Fallbacks mirror load_campaign_workload's generator
        # defaults, so the label names the instance actually verified.
        return (f"gen{self.workload.get('processes', 8)}p"
                f"{self.workload.get('nodes', 2)}n"
                f"s{self.workload.get('seed', 1)}")


def load_verify_workload(spec: Mapping[str, object],
                         ) -> tuple[Application, Architecture,
                                    Transparency | None]:
    """Rebuild a verification workload from its declarative spec.

    Superset of :func:`~repro.campaigns.runner.load_campaign_workload`:
    the ``fig5`` and ``bbw`` presets additionally carry the paper's /
    case study's transparency requirements, which the verifier then
    audits scenario by scenario.
    """
    preset = spec.get("preset")
    if preset == "fig5":
        app, arch, __, transparency, ___ = fig5_example()
        return app, arch, transparency
    if preset == "bbw":
        app, arch, transparency = brake_by_wire()
        return app, arch, transparency
    app, arch = load_campaign_workload(spec)
    return app, arch, None


def verify_jobs(config: VerifyConfig) -> list[BatchJob]:
    """One engine job per scenario window."""
    return grid_jobs(
        CHUNK_RUNNER,
        {"chunk": tuple(range(config.chunks))},
        prefix=f"verify/{config.label}/k={config.k}/{config.strategy}",
        common={
            "workload": dict(config.workload),
            "k": config.k,
            "strategy": config.strategy,
            "chunks": config.chunks,
            "seed": config.seed,
            "settings": asdict(config.settings),
            "max_contexts": config.max_contexts,
            "max_scenarios": config.max_scenarios,
        },
    )


def run_verify_chunk(params: Mapping[str, object]) -> dict:
    """One chunk: synthesize, build exact tables, sweep a window.

    Pure function of its params (the engine's worker contract): the
    design and the scenario order derive from the seed alone, so every
    chunk reproduces the identical instance and only its contiguous
    window differs. Whether the sweep runs forked or forced-full
    (``REPRO_VERIFY_INCREMENTAL=0``) never shows in the result — the
    two paths are bit-identical and the flag stays out of the payload.
    """
    app, arch, transparency = load_verify_workload(params["workload"])
    k = int(params["k"])
    fault_model = FaultModel(k=k)
    pool = EvaluatorPool()
    result = synthesize_campaign_design(
        app, arch, k, str(params["strategy"]),
        TabuSettings(**params["settings"]), int(params["seed"]),
        pool=pool)
    # Refuse intractable instances *before* paying for the exact
    # conditional tables (the expensive, explosion-prone step): the
    # scenario count needs nothing but the synthesized policies.
    total = count_fault_plans(app, result.policies, k)
    max_scenarios = int(params["max_scenarios"])
    if total > max_scenarios:
        raise ToleranceViolationError(
            f"{total} fault scenarios exceed the verification limit "
            f"{max_scenarios}; raise --max-scenarios or verify a "
            "smaller instance")
    evaluator = pool.evaluator_for(app, arch, fault_model)
    schedule = evaluator.exact_schedule(
        result.policies, result.mapping, transparency,
        max_contexts=int(params["max_contexts"]))
    certified = evaluator.estimate(
        result.policies, result.mapping, slack_sharing="budgeted")
    # Estimate + allowance alone is sound across the policy zoo (the
    # estimator shares the exact scheduler's replica serialization
    # order); exact_worst_case stays in the report as a tightness
    # reference, not a floor.
    bound = estimate_bound(app, arch, certified, k)
    start, stop = chunk_bounds(total, int(params["chunk"]),
                               int(params["chunks"]))
    stats = VerificationStats()
    if kernels_enabled():
        # The batched kernel walks the identical enumeration order the
        # sweep emits (iter_fault_plans), so the observed stream — and
        # thus every merged cell — is bit-identical to the oracle path
        # below (REPRO_KERNELS=0 forces it).
        from itertools import islice

        from repro.kernels.batch import BatchedSimulator
        batched = BatchedSimulator(app, arch, result.mapping,
                                   result.policies, fault_model,
                                   schedule)
        window = islice(iter_fault_plans(app, result.policies, k),
                        start, stop)
        for outcome in batched.results(window):
            stats.observe(outcome, transparency)
    else:
        sweep = ScenarioSweep(app, arch, result.mapping,
                              result.policies, fault_model, schedule)
        for outcome in sweep.results(start, stop):
            stats.observe(outcome, transparency)

    cache_stats = pool.stats()
    return {
        "chunk": int(params["chunk"]),
        "scenarios_total": total,
        "start": start,
        "stop": stop,
        "stats": stats.to_jsonable(),
        "cache_hits": cache_stats.estimates.hits,
        "cache_misses": cache_stats.estimates.misses,
        "estimate": result.estimate.schedule_length,
        "certified_estimate": certified.schedule_length,
        "estimate_bound": bound,
        "exact_worst_case": schedule.worst_case_length,
        "fault_free_length": result.estimate.ff_length,
        "nft_length": result.nft_length,
        "deadline": app.deadline,
        "processes": len(app.process_names),
        "nodes": len(arch.node_names),
    }


#: Scalars every chunk of one verification must agree on (they all
#: derive from the same seed); a mismatch means a runner broke purity.
_CONSISTENT_KEYS = ("scenarios_total", "estimate",
                    "certified_estimate", "estimate_bound",
                    "exact_worst_case", "fault_free_length",
                    "nft_length", "deadline", "processes", "nodes")


@dataclass
class VerifyReport:
    """Merged outcome of one verification (all scenario windows)."""

    config: VerifyConfig
    stats: VerificationStats
    scenarios_total: int
    estimate: float
    certified_estimate: float
    estimate_bound: float
    exact_worst_case: float
    fault_free_length: float
    nft_length: float
    deadline: float
    processes: int
    nodes: int
    cache_hits: int = 0
    cache_misses: int = 0
    executed_chunks: int = 0
    resumed_chunks: int = 0
    #: One-shot DES scenario section (:func:`run_des_scenarios`),
    #: None when ``des_scenarios`` was 0.
    des: dict | None = None

    @property
    def ok(self) -> bool:
        """True when every scenario was tolerated and the transparency
        contract held — the design is *certified* for ``k`` faults.

        DES-only scenarios do not gate the verdict: they inject beyond
        the paper's fault hypothesis (intermittent re-hits, bus
        corruption, jitter), so their violations are reported findings
        in :attr:`des`, not certificate failures — the certificate
        claims exactly the ``k``-transient-fault guarantee."""
        return self.stats.ok

    @property
    def frozen_violations(self) -> list[str]:
        """Transparency-contract violations (report messages)."""
        return self.stats.frozen_violations()

    def raise_on_failure(self) -> None:
        """Raise :class:`ToleranceViolationError` when not certified."""
        if self.ok:
            return
        details = [err for record in self.stats.failure_records
                   for err in record["errors"]]
        details.extend(self.frozen_violations)
        shown = "; ".join(details[:5])
        raise ToleranceViolationError(
            f"{self.stats.failures} of {self.stats.scenarios} fault "
            f"scenarios failed, "
            f"{len(self.frozen_violations)} transparency violations: "
            f"{shown}")

    # -- deterministic export -------------------------------------------------

    def to_jsonable(self) -> dict:
        """Timing-free report payload (byte-stable across runs)."""
        stats = self.stats.to_jsonable()
        stats["mean_makespan"] = self.stats.mean_makespan
        stats["frozen_violations"] = self.frozen_violations
        return {
            "verify": {
                "workload": self.config.label,
                "k": self.config.k,
                "strategy": self.config.strategy,
                "chunks": self.config.chunks,
                "seed": self.config.seed,
            },
            "instance": {
                "processes": self.processes,
                "nodes": self.nodes,
                "deadline": self.deadline,
            },
            "schedule": {
                "estimate": self.estimate,
                "certified_estimate": self.certified_estimate,
                "estimate_bound": self.estimate_bound,
                "exact_worst_case": self.exact_worst_case,
                "fault_free_length": self.fault_free_length,
                "nft_length": self.nft_length,
            },
            "scenarios_total": self.scenarios_total,
            "certified": self.ok,
            "stats": stats,
            "des": self.des,
            # One table set per design; every enumerated scenario is
            # batch-eligible (deterministic shape, not live counters).
            "kernels": kernels_info(
                compiled_tables=1,
                batched_scenarios=self.scenarios_total),
        }

    def to_json(self) -> str:
        """Canonical JSON text of the report."""
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> None:
        """Write the canonical JSON report (atomic replace)."""
        journal.write_atomic_text(path, self.to_json() + "\n")

    def summary_lines(self) -> list[str]:
        """Human-readable aggregate summary (CLI output)."""
        stats = self.stats
        hist = ", ".join(
            f"{count}f: {bin_.worst_makespan:.1f}"
            for count, bin_ in sorted(stats.fault_hist.items())
            if bin_.finished)
        lines = [
            f"workload {self.config.label}: {self.processes} processes "
            f"on {self.nodes} nodes, k = {self.config.k}, "
            f"strategy {self.config.strategy}",
            f"{stats.scenarios} of {self.scenarios_total} fault "
            f"scenarios simulated exhaustively "
            f"({self.config.chunks} chunk(s); {self.executed_chunks} "
            f"executed, {self.resumed_chunks} resumed)",
            f"finish: worst {stats.worst_makespan:.1f}, "
            f"mean {stats.mean_makespan:.1f}, fault-free "
            f"{stats.fault_free_makespan or 0.0:.1f}, "
            f"deadline {self.deadline:.1f}",
            f"worst makespan per fault count: {hist or '-'}",
            f"estimate {self.estimate:.1f} (certified "
            f"{self.certified_estimate:.1f}, bound "
            f"{self.estimate_bound:.1f}, exact worst case "
            f"{self.exact_worst_case:.1f})",
            f"failures {stats.failures}, transparency violations "
            f"{len(self.frozen_violations)}"
            f" -> {'CERTIFIED' if self.ok else 'NOT certified'} "
            f"for k = {self.config.k}",
        ]
        if self.des is not None:
            des = self.des
            lines.append(
                f"DES (beyond hypothesis): {des['scenarios']} "
                f"scenario(s) one-shot through the event engine, "
                f"{des['failures']} with violations, worst "
                f"{des['worst_makespan']:.1f} "
                f"({des['axes']['intermittent']} window(s), "
                f"{des['axes']['slot_faults']} corrupted slot(s), "
                f"jitter up to {des['axes']['jitter']:g} per scenario)")
        return lines


def merge_verify_cells(config: VerifyConfig, cells: list[dict],
                       executed: int = 0, resumed: int = 0,
                       ) -> VerifyReport:
    """Fold chunk results into one report (exposed for campaigns)."""
    first = cells[0]
    for cell in cells[1:]:
        for key in _CONSISTENT_KEYS:
            if cell[key] != first[key]:
                raise RuntimeError(
                    f"verify chunks disagree on {key!r}: "
                    f"{cell[key]!r} != {first[key]!r} — a chunk "
                    "runner is not a pure function of the seed")
    merged = VerificationStats()
    for cell in cells:
        merged.merge(VerificationStats.from_jsonable(cell["stats"]))
    return VerifyReport(
        config=config,
        stats=merged,
        scenarios_total=int(first["scenarios_total"]),
        estimate=float(first["estimate"]),
        certified_estimate=float(first["certified_estimate"]),
        estimate_bound=float(first["estimate_bound"]),
        exact_worst_case=float(first["exact_worst_case"]),
        fault_free_length=float(first["fault_free_length"]),
        nft_length=float(first["nft_length"]),
        deadline=float(first["deadline"]),
        processes=int(first["processes"]),
        nodes=int(first["nodes"]),
        cache_hits=sum(int(c.get("cache_hits", 0)) for c in cells),
        cache_misses=sum(int(c.get("cache_misses", 0))
                         for c in cells),
        executed_chunks=executed,
        resumed_chunks=resumed,
    )


def run_des_scenarios(config: VerifyConfig) -> dict:
    """Execute the config's DES-only scenarios one-shot (parent-side).

    The sharded sweep walks the table-expressible enumeration tree;
    intermittent windows, corrupted slots and jitter live outside it,
    so these scenarios are sampled (seed-derived, deterministic),
    extended with the configured axes, and run straight through
    :class:`repro.des.core.DesSimulator`. Returns the JSON-able
    section stored in :attr:`VerifyReport.des`.
    """
    app, arch, __ = load_verify_workload(config.workload)
    fault_model = FaultModel(k=config.k)
    pool = EvaluatorPool()
    result = synthesize_campaign_design(
        app, arch, config.k, config.strategy, config.settings,
        config.seed, pool=pool)
    evaluator = pool.evaluator_for(app, arch, fault_model)
    schedule = evaluator.exact_schedule(
        result.policies, result.mapping,
        max_contexts=config.max_contexts)
    base_plans = sample_fault_plans(
        app, result.policies, config.k, config.des_scenarios,
        seed=derive_seed(config.seed, "verify-des"),
        include_fault_free=False)
    plans = extend_fault_plans(
        base_plans,
        node_names=arch.node_names,
        process_names=app.process_names,
        horizon=schedule.worst_case_length,
        round_length=arch.bus.round_length,
        slots_per_round=len(arch.bus.slot_order),
        intermittent=config.intermittent,
        slot_faults=config.slot_faults,
        jitter=config.jitter,
        seed=derive_seed(config.seed, "verify-des-axes"))
    simulator = DesSimulator(app, arch, result.mapping, result.policies,
                             fault_model, schedule)
    failures = 0
    worst = 0.0
    unfinished = 0
    samples: list[str] = []
    for plan in plans:
        outcome = simulator.simulate(plan)
        if outcome.errors:
            failures += 1
            if len(samples) < 5:
                samples.append(outcome.errors[0])
        if outcome.makespan == float("inf"):
            unfinished += 1
        else:
            worst = max(worst, outcome.makespan)
    return {
        "axes": {
            "intermittent": config.intermittent,
            "jitter": config.jitter,
            "slot_faults": config.slot_faults,
        },
        "error_samples": samples,
        "failures": failures,
        "scenarios": len(plans),
        "unfinished": unfinished,
        "worst_makespan": worst,
    }


def run_verification(config: VerifyConfig, *,
                     engine_config: EngineConfig | None = None,
                     progress: ProgressCallback | None = None,
                     ) -> VerifyReport:
    """Run (or resume) one verification through the batch engine.

    When ``config.des_scenarios > 0``, the sharded table-expressible
    sweep is followed by a one-shot DES pass over the sampled
    beyond-hypothesis scenarios; its section lands in
    :attr:`VerifyReport.des` (reported, not certificate-gating).
    """
    engine = BatchEngine(engine_config or EngineConfig())
    batch = engine.run(verify_jobs(config), progress=progress)
    report = merge_verify_cells(config, batch.results(),
                                executed=batch.executed,
                                resumed=batch.resumed)
    if config.des_scenarios > 0:
        report.des = run_des_scenarios(config)
    return report
