"""Streaming, exactly-mergeable verification statistics.

A sharded verification sweep simulates scenario ranges in worker
processes, so its aggregates follow the same discipline as
:class:`repro.campaigns.stats.CampaignStats`: every chunk folds its
scenarios into one JSON-able :class:`VerificationStats` with O(1)
memory per scenario, and the parent merges chunk stats in job
submission order. Merging is exact — counts add, extrema combine with
min/max, means are kept as (sum, count), capped record lists keep the
first ``cap`` of the concatenation — so a chunked parallel sweep
reports byte-identical aggregates to a serial one.

Frozen-start bookkeeping is where verification differs from
campaigns: the transparency contract requires a frozen process or
message to start at the *same* time in every scenario in which it
fires. Each frozen activation therefore carries a
:class:`FrozenStartStat` — exact (unrounded) min/max plus a capped
sample of distinct starts. The violation decision compares the exact
spread ``max - min`` against ``TIME_EPS``; the old
``round(start, 6)`` bucketing could collapse a real > eps spread onto
two adjacent 1e-6 grid points and miss it (see
``tests/test_verify.py::TestFrozenStartEps``). Display clustering
uses :func:`repro.utils.mathutils.eps_representatives` — the same
anchored eps-run rule as the simulator's replay ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.transparency import Transparency
from repro.runtime.simulator import SimulationResult
from repro.schedule.table import EntryKind
from repro.utils.mathutils import TIME_EPS, eps_representatives

#: Failure records kept per merged stats object (counts are exact,
#: the *records* are a bounded sample: first-cap of the scenario
#: order, which keeping first-cap of every concatenation preserves).
FAILURE_RECORD_CAP = 20

#: Distinct start samples kept per frozen activation (smallest
#: observed; the exact min/max are tracked separately and unbounded).
START_SAMPLE_CAP = 8


@dataclass
class FrozenStartStat:
    """Observed start times of one frozen activation.

    ``starts`` holds the smallest :data:`START_SAMPLE_CAP` distinct
    exact starts (min-k of a union is associative, so merging chunk
    records in any grouping yields the same sample); ``min_start`` /
    ``max_start`` are exact over *all* observations and alone decide
    the violation.
    """

    min_start: float
    max_start: float
    starts: tuple[float, ...]

    @classmethod
    def of(cls, start: float) -> "FrozenStartStat":
        """Record for a first observation."""
        return cls(min_start=start, max_start=start, starts=(start,))

    def observe(self, start: float) -> None:
        """Fold one more observed start."""
        self.min_start = min(self.min_start, start)
        self.max_start = max(self.max_start, start)
        if start not in self.starts:
            self.starts = tuple(sorted(
                (*self.starts, start)))[:START_SAMPLE_CAP]

    def merge(self, other: "FrozenStartStat") -> None:
        """Fold another record for the same activation (exact)."""
        self.min_start = min(self.min_start, other.min_start)
        self.max_start = max(self.max_start, other.max_start)
        self.starts = tuple(sorted(
            set(self.starts) | set(other.starts)))[:START_SAMPLE_CAP]

    @property
    def spread(self) -> float:
        """Exact spread of the observed starts."""
        return self.max_start - self.min_start

    @property
    def violated(self) -> bool:
        """True when the starts differ beyond the time tolerance."""
        return self.spread > TIME_EPS

    def shown_starts(self) -> list[float]:
        """Eps-distinct starts for messages (max always included)."""
        return eps_representatives((*self.starts, self.max_start))

    def to_jsonable(self) -> dict:
        """Plain-JSON form."""
        return {"min": self.min_start, "max": self.max_start,
                "starts": list(self.starts)}

    @classmethod
    def from_jsonable(cls, payload: dict) -> "FrozenStartStat":
        """Rebuild from the plain-JSON form."""
        return cls(min_start=float(payload["min"]),
                   max_start=float(payload["max"]),
                   starts=tuple(float(s) for s in payload["starts"]))


@dataclass
class FaultCountBin:
    """Makespan aggregates of all scenarios with one total fault count."""

    scenarios: int = 0
    failures: int = 0
    worst_makespan: float = 0.0
    makespan_sum: float = 0.0
    finished: int = 0

    @property
    def mean_makespan(self) -> float:
        """Mean finish over tolerated scenarios of this fault count."""
        if not self.finished:
            return 0.0
        return self.makespan_sum / self.finished

    def merge(self, other: "FaultCountBin") -> None:
        """Fold another bin of the same fault count (exact)."""
        self.scenarios += other.scenarios
        self.failures += other.failures
        self.worst_makespan = max(self.worst_makespan,
                                  other.worst_makespan)
        self.makespan_sum += other.makespan_sum
        self.finished += other.finished

    def to_jsonable(self) -> dict:
        """Plain-JSON form."""
        return {"scenarios": self.scenarios, "failures": self.failures,
                "worst_makespan": self.worst_makespan,
                "makespan_sum": self.makespan_sum,
                "finished": self.finished}

    @classmethod
    def from_jsonable(cls, payload: dict) -> "FaultCountBin":
        """Rebuild from the plain-JSON form."""
        return cls(scenarios=int(payload["scenarios"]),
                   failures=int(payload["failures"]),
                   worst_makespan=float(payload["worst_makespan"]),
                   makespan_sum=float(payload["makespan_sum"]),
                   finished=int(payload["finished"]))


FrozenKey = tuple[str, int]


@dataclass
class VerificationStats:
    """Mergeable aggregates over simulated fault scenarios."""

    scenarios: int = 0
    failures: int = 0
    finished: int = 0
    worst_makespan: float = 0.0
    makespan_sum: float = 0.0
    fault_free_makespan: float | None = None
    failure_records: list[dict] = field(default_factory=list)
    fault_hist: dict[int, FaultCountBin] = field(default_factory=dict)
    frozen_processes: dict[FrozenKey, FrozenStartStat] = field(
        default_factory=dict)
    frozen_messages: dict[FrozenKey, FrozenStartStat] = field(
        default_factory=dict)

    # -- observation ----------------------------------------------------------

    def observe(self, result: SimulationResult,
                transparency: Transparency | None = None) -> None:
        """Fold one simulated scenario into the aggregates.

        Matches the legacy exhaustive verifier: scenarios with
        invariant violations are counted as failures and excluded
        from the makespan statistics and the frozen-start records
        (their trace is not a run the contract speaks about).
        """
        self.scenarios += 1
        bin_ = self.fault_hist.setdefault(result.plan.total_faults,
                                          FaultCountBin())
        bin_.scenarios += 1
        if not result.ok:
            self.failures += 1
            bin_.failures += 1
            if len(self.failure_records) < FAILURE_RECORD_CAP:
                self.failure_records.append({
                    "plan": result.plan.describe(),
                    "errors": list(result.errors[:3]),
                })
            return
        makespan = result.makespan
        self.finished += 1
        bin_.finished += 1
        self.worst_makespan = max(self.worst_makespan, makespan)
        self.makespan_sum += makespan
        bin_.worst_makespan = max(bin_.worst_makespan, makespan)
        bin_.makespan_sum += makespan
        if result.plan.is_fault_free() \
                and self.fault_free_makespan is None:
            self.fault_free_makespan = makespan
        if transparency is None:
            return
        for entry in result.fired_entries:
            if entry.kind is EntryKind.ATTEMPT \
                    and entry.attempt.segment == 1 \
                    and entry.attempt.attempt == 1 \
                    and transparency.is_frozen_process(
                        entry.attempt.process):
                self._observe_frozen(
                    self.frozen_processes,
                    (entry.attempt.process, entry.attempt.copy),
                    entry.start)
            if entry.kind is EntryKind.MESSAGE \
                    and transparency.is_frozen_message(entry.message):
                self._observe_frozen(
                    self.frozen_messages,
                    (entry.message, entry.producer_copy or 0),
                    entry.start)

    @staticmethod
    def _observe_frozen(records: dict[FrozenKey, FrozenStartStat],
                        key: FrozenKey, start: float) -> None:
        record = records.get(key)
        if record is None:
            records[key] = FrozenStartStat.of(start)
        else:
            record.observe(start)

    # -- merging --------------------------------------------------------------

    def merge(self, other: "VerificationStats") -> None:
        """Fold another chunk's aggregates into this one (exact)."""
        self.scenarios += other.scenarios
        self.failures += other.failures
        self.finished += other.finished
        self.worst_makespan = max(self.worst_makespan,
                                  other.worst_makespan)
        self.makespan_sum += other.makespan_sum
        if self.fault_free_makespan is None:
            self.fault_free_makespan = other.fault_free_makespan
        self.failure_records = (self.failure_records
                                + other.failure_records
                                )[:FAILURE_RECORD_CAP]
        for count, bin_ in other.fault_hist.items():
            self.fault_hist.setdefault(count,
                                       FaultCountBin()).merge(bin_)
        for records, other_records in (
                (self.frozen_processes, other.frozen_processes),
                (self.frozen_messages, other.frozen_messages)):
            for key, record in other_records.items():
                mine = records.get(key)
                if mine is None:
                    records[key] = FrozenStartStat(
                        record.min_start, record.max_start,
                        record.starts)
                else:
                    mine.merge(record)

    # -- derived --------------------------------------------------------------

    @property
    def mean_makespan(self) -> float:
        """Mean finish over tolerated scenarios."""
        if not self.finished:
            return 0.0
        return self.makespan_sum / self.finished

    def frozen_violations(self) -> list[str]:
        """Transparency-contract violations, as report messages."""
        messages: list[str] = []
        for (process, copy), record in sorted(
                self.frozen_processes.items()):
            if record.violated:
                messages.append(
                    f"frozen process {process!r} (copy {copy}) started "
                    f"at {record.shown_starts()} across scenarios "
                    f"(spread {record.spread:.3g})")
        for (message, copy), record in sorted(
                self.frozen_messages.items()):
            if record.violated:
                messages.append(
                    f"frozen message {message!r} (copy {copy}) "
                    f"transmitted at {record.shown_starts()} across "
                    f"scenarios (spread {record.spread:.3g})")
        return messages

    @property
    def ok(self) -> bool:
        """All scenarios tolerated and the transparency contract held."""
        return self.failures == 0 and not self.frozen_violations()

    # -- transport ------------------------------------------------------------

    def to_jsonable(self) -> dict:
        """Plain-JSON form (chunk results, verification reports)."""
        return {
            "scenarios": self.scenarios,
            "failures": self.failures,
            "finished": self.finished,
            "worst_makespan": self.worst_makespan,
            "makespan_sum": self.makespan_sum,
            "fault_free_makespan": self.fault_free_makespan,
            "failure_records": [dict(r) for r in self.failure_records],
            "fault_hist": {
                str(count): bin_.to_jsonable()
                for count, bin_ in sorted(self.fault_hist.items())
            },
            "frozen_processes": self._frozen_jsonable(
                self.frozen_processes),
            "frozen_messages": self._frozen_jsonable(
                self.frozen_messages),
        }

    @staticmethod
    def _frozen_jsonable(records: dict[FrozenKey, FrozenStartStat],
                         ) -> list[dict]:
        return [
            {"name": name, "copy": copy, **record.to_jsonable()}
            for (name, copy), record in sorted(records.items())
        ]

    @classmethod
    def from_jsonable(cls, payload: dict) -> "VerificationStats":
        """Rebuild chunk aggregates from their JSON form."""
        stats = cls(
            scenarios=int(payload["scenarios"]),
            failures=int(payload["failures"]),
            finished=int(payload["finished"]),
            worst_makespan=float(payload["worst_makespan"]),
            makespan_sum=float(payload["makespan_sum"]),
            fault_free_makespan=(
                None if payload["fault_free_makespan"] is None
                else float(payload["fault_free_makespan"])),
            failure_records=[dict(r)
                             for r in payload["failure_records"]],
            fault_hist={
                int(count): FaultCountBin.from_jsonable(bin_)
                for count, bin_ in payload["fault_hist"].items()
            },
        )
        for target, name in ((stats.frozen_processes,
                              "frozen_processes"),
                             (stats.frozen_messages,
                              "frozen_messages")):
            for record in payload[name]:
                target[(str(record["name"]), int(record["copy"]))] = \
                    FrozenStartStat.from_jsonable(record)
        return stats
