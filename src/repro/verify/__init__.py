"""Scalable verification of synthesized schedule tables.

The proof side of the synthesis flow: where campaigns *sample* fault
scenarios, this package simulates **all** of them — sharded through
the batch engine, with trace-prefix reuse along the shared fault-plan
enumeration tree — and certifies the paper's central claim that the
tables tolerate any ``k`` transient faults under the chosen
transparency contract. :mod:`repro.runtime.verify` remains as a thin
serial shim over this package.
"""

from repro.verify.core import (
    ScenarioSweep,
    chunk_bounds,
    incremental_default,
)
from repro.verify.runner import (
    DEFAULT_MAX_SCENARIOS,
    VerifyConfig,
    VerifyReport,
    load_verify_workload,
    merge_verify_cells,
    run_verification,
    run_verify_chunk,
    verify_jobs,
)
from repro.verify.stats import (
    FaultCountBin,
    FrozenStartStat,
    VerificationStats,
)

__all__ = [
    "DEFAULT_MAX_SCENARIOS",
    "FaultCountBin",
    "FrozenStartStat",
    "ScenarioSweep",
    "VerificationStats",
    "VerifyConfig",
    "VerifyReport",
    "chunk_bounds",
    "incremental_default",
    "load_verify_workload",
    "merge_verify_cells",
    "run_verification",
    "run_verify_chunk",
    "verify_jobs",
]
