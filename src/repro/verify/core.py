"""The scenario sweep: exhaustive simulation with trace-prefix reuse.

The legacy verifier re-simulated every fault scenario from scratch:
for each plan it re-derived the ground truth of *every* copy and
re-filtered *every* table entry's guard, although consecutive plans in
:func:`repro.ftcpg.scenarios.iter_fault_plans` order differ only from
some copy onward. :class:`ScenarioSweep` walks the enumeration's
recursion tree itself (one level per copy, sharing the
:class:`~repro.ftcpg.scenarios.PlanEnumeration` tables with the
iterator) and **forks the scenario state at the first differing fault
branch**:

* *ground truth* — a copy's executed attempts, success and progress
  depend only on its own fault distribution
  (:func:`repro.runtime.simulator._copy_ground_truth`), so the truth
  dictionaries are pushed entering a branch and popped leaving it;
* *guard filtering* — each conditional table entry is staged at the
  tree levels its guard literals refer to; a branch checks only the
  entries staged at its level, rejects them for the whole subtree on
  the first mismatching literal, and re-stages survivors at their
  next relevant level. An entry whose last literal matches is *fired*
  for every scenario below the branch.

At each leaf the accumulated fired entries are re-sorted into
schedule-entry order and handed to the same
:func:`~repro.runtime.simulator._finish_simulation` the one-shot
:func:`~repro.runtime.simulator.simulate` path ends in, so the replay,
the invariant checks and every reported error are one shared
implementation — the **bit-identity invariant**: for every plan the
sweep yields exactly the :class:`SimulationResult` that
``simulate(...)`` returns (pinned by ``tests/test_verify.py``).
``REPRO_VERIFY_INCREMENTAL=0`` (or ``incremental=False``) forces the
one-shot oracle path everywhere, the escape hatch benchmarks and
identity tests compare against — the same discipline as
``REPRO_EVAL_INCREMENTAL`` in :mod:`repro.eval.core`.

Sharding slices the scenario order into **contiguous** windows
(:func:`chunk_bounds`) — not the stride slices campaigns use: stride
would interleave scenarios from distant branches and destroy exactly
the prefix locality the fork reuse feeds on. The
:meth:`~repro.ftcpg.scenarios.PlanEnumeration.subtree_leaves` DP lets
a shard skip whole subtrees outside its window without visiting them.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

from repro.ftcpg.conditions import ConditionLiteral
from repro.ftcpg.scenarios import (
    FaultPlan,
    iter_fault_plans,
    plan_enumeration,
)
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.runtime.simulator import (
    SimulationResult,
    _copy_ground_truth,
    _finish_simulation,
    _GroundTruth,
    simulate,
)
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import ScheduleSet


def incremental_default() -> bool:
    """Process-wide default for the prefix-reuse sweep.

    ``REPRO_VERIFY_INCREMENTAL=0`` (or ``false``/``off``/``no``)
    forces full per-scenario re-simulation everywhere — the oracle
    mode used by the identity tests and the benchmark baseline. Read
    per :class:`ScenarioSweep` construction, so engine worker
    processes inherit the choice through their environment.
    """
    value = os.environ.get("REPRO_VERIFY_INCREMENTAL", "1")
    return value.strip().lower() not in ("0", "false", "off", "no")


def chunk_bounds(total: int, chunk: int, chunks: int,
                 ) -> tuple[int, int]:
    """The contiguous scenario window ``[start, stop)`` of one shard.

    The windows partition ``range(total)`` exactly and differ in size
    by at most one. Contiguous on purpose — consecutive scenarios
    share the longest fault-plan prefixes, which is what the sweep's
    state fork amortizes; the stride slices campaigns use
    (:func:`repro.campaigns.sampling.chunk_slice`) would hand every
    shard scenarios from maximally distant branches.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    if not 0 <= chunk < chunks:
        raise ValueError(f"chunk must be in [0, {chunks}), got {chunk}")
    return chunk * total // chunks, (chunk + 1) * total // chunks


#: One staged conditional entry: (entry index, literal stages grouped
#: by tree level, index of the stage to check next).
_Staged = tuple[int, tuple[tuple[int, tuple[ConditionLiteral, ...]],
                           ...], int]


class ScenarioSweep:
    """Exhaustive scenario simulation over one design's schedule.

    Yields, for a contiguous range of the
    :func:`~repro.ftcpg.scenarios.iter_fault_plans` order, the exact
    :class:`SimulationResult` of every scenario — via the forked
    incremental walk by default, via one-shot ``simulate()`` calls
    when ``incremental`` is off.
    """

    def __init__(self, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 fault_model: FaultModel, schedule: ScheduleSet, *,
                 incremental: bool | None = None) -> None:
        self._app = app
        self._arch = arch
        self._mapping = mapping
        self._policies = policies
        self._fault_model = fault_model
        self._schedule = schedule
        if incremental is None:
            incremental = incremental_default()
        self._incremental = incremental
        self._enum = plan_enumeration(app, policies, fault_model.k)
        self._leaves: list[list[int]] | None = None
        self._base_fired: list[int] | None = None
        self._seeds: list[list[_Staged]] | None = None

    @property
    def incremental(self) -> bool:
        """Whether the sweep forks state along shared prefixes."""
        return self._incremental

    @property
    def total(self) -> int:
        """Number of scenarios (== ``count_fault_plans``)."""
        return self._leaf_table()[0][self._fault_model.k]

    def _leaf_table(self) -> list[list[int]]:
        if self._leaves is None:
            self._leaves = self._enum.subtree_leaves()
        return self._leaves

    # -- entry staging ---------------------------------------------------------

    def _prepare_entries(self) -> None:
        """Stage every conditional entry at its guard's tree levels.

        Unconditional entries fire in every scenario (``base_fired``);
        an entry whose guard references a copy outside the enumeration
        can never fire and is dropped — the same verdicts the one-shot
        guard filter reaches, just precomputed once.
        """
        if self._base_fired is not None:
            return
        depth_of = {key: d for d, key in enumerate(self._enum.copies)}
        base_fired: list[int] = []
        seeds: list[list[_Staged]] = [[] for _ in self._enum.copies]
        for index, entry in enumerate(self._schedule.entries):
            if not entry.guard.literals:
                base_fired.append(index)
                continue
            by_depth: dict[int, list[ConditionLiteral]] = {}
            unknown = False
            for literal in entry.guard.literals:
                depth = depth_of.get((literal.attempt.process,
                                      literal.attempt.copy))
                if depth is None:
                    unknown = True
                    break
                by_depth.setdefault(depth, []).append(literal)
            if unknown:
                continue
            stages = tuple((depth, tuple(literals))
                           for depth, literals in sorted(by_depth.items()))
            seeds[stages[0][0]].append((index, stages, 0))
        self._base_fired = base_fired
        self._seeds = seeds

    # -- iteration -------------------------------------------------------------

    def results(self, start: int = 0, stop: int | None = None,
                ) -> Iterator[SimulationResult]:
        """Simulate scenarios ``start .. stop-1`` of the enumeration."""
        total = self.total
        if stop is None:
            stop = total
        start = max(0, start)
        stop = min(stop, total)
        if start >= stop:
            return iter(())
        if not self._incremental:
            return self._iter_full(start, stop)
        return self._iter_incremental(start, stop)

    def _iter_full(self, start: int, stop: int,
                   ) -> Iterator[SimulationResult]:
        """The oracle path: one-shot ``simulate()`` per plan."""
        for index, plan in enumerate(iter_fault_plans(
                self._app, self._policies, self._fault_model.k)):
            if index >= stop:
                break
            if index < start:
                continue
            yield simulate(self._app, self._arch, self._mapping,
                           self._policies, self._fault_model,
                           self._schedule, plan)

    def _iter_incremental(self, start: int, stop: int,
                          ) -> Iterator[SimulationResult]:
        """The forked walk over the shared enumeration tree."""
        self._prepare_entries()
        enum = self._enum
        depth_count = len(enum.copies)
        leaves = self._leaf_table()
        entries = self._schedule.entries
        base_fired = self._base_fired

        # Mutable walk state, pushed entering a branch, popped leaving:
        executed: dict = {}
        copy_success: dict = {}
        segments_done: dict = {}
        chosen: list[tuple[int, ...]] = []
        pending: list[list[_Staged]] = [list(seed)
                                        for seed in self._seeds]
        fired_acc: list[int] = []
        counter = 0  # leaves passed, including skipped subtrees

        def walk(depth: int, remaining: int,
                 ) -> Iterator[SimulationResult]:
            nonlocal counter
            if depth == depth_count:
                plan = FaultPlan(faults={
                    key: counts
                    for key, counts in zip(enum.copies, chosen)
                    if sum(counts) > 0
                })
                truth = _GroundTruth(executed=executed,
                                     copy_success=copy_success,
                                     copy_segments_done=segments_done)
                fired = [entries[i]
                         for i in sorted(base_fired + fired_acc)]
                counter += 1
                yield _finish_simulation(
                    self._app, self._arch, self._mapping,
                    self._policies, self._fault_model, plan, truth,
                    fired)
                return
            key = enum.copies[depth]
            copy_plan = enum.copy_plans[depth]
            staged = pending[depth]
            for counts in enum.options[depth]:
                used = sum(counts)
                if used > remaining:
                    break  # options ordered by total: the rest too
                subtree = leaves[depth + 1][remaining - used]
                if counter + subtree <= start:
                    counter += subtree  # whole subtree before window
                    continue
                if counter >= stop:
                    break  # whole window emitted
                # -- fork: push this copy's truth ...
                copy_exec, success, done = _copy_ground_truth(
                    key[0], key[1], copy_plan, counts)
                executed.update(copy_exec)
                copy_success[key] = success
                segments_done[key] = done
                chosen.append(counts)
                # ... and advance the entries staged at this level.
                fired_mark = len(fired_acc)
                moved: dict[int, int] = {}
                for record in staged:
                    stages, stage = record[1], record[2]
                    fires = True
                    for literal in stages[stage][1]:
                        actual = copy_exec.get(literal.attempt)
                        if actual is None or actual != literal.faulty:
                            fires = False
                            break
                    if not fires:
                        continue  # rejected for the whole subtree
                    if stage + 1 == len(stages):
                        fired_acc.append(record[0])
                    else:
                        nxt = stages[stage + 1][0]
                        moved.setdefault(nxt, len(pending[nxt]))
                        pending[nxt].append((record[0], stages,
                                             stage + 1))
                yield from walk(depth + 1, remaining - used)
                # -- unfork.
                del fired_acc[fired_mark:]
                for nxt, mark in moved.items():
                    del pending[nxt][mark:]
                chosen.pop()
                for attempt in copy_exec:
                    del executed[attempt]
                del copy_success[key]
                del segments_done[key]

        return walk(0, self._fault_model.k)
