"""Array-compiled estimation/simulation kernels (bit-identical).

The two hottest inner loops of the reproduction — the slack-sharing
list scheduler in :mod:`repro.schedule.estimation` and the table-replay
simulator in :mod:`repro.runtime.simulator` — spend most of their time
rebuilding per-run context (structure tables, copy costs, ground-truth
dictionaries) and hashing composite keys. This package lowers one
problem (or one design's schedule) into flat integer-indexed tables
**once** and then runs index-based kernels over them:

* :mod:`repro.kernels.tables` — the per-problem "compile" step:
  process indices, successor/input CSR adjacency, per-copy cost
  vectors and the shared TDMA/send-memo context, cached per
  ``(app, arch, k, priorities)``;
* :mod:`repro.kernels.estimator` — the estimator's schedule loop and
  slack pools rewritten over those tables, materializing a genuine
  :class:`~repro.schedule.estimation.EstimatorState`;
* :mod:`repro.kernels.batch` — a batched scenario kernel advancing
  many fault plans of one design through the table replay with
  delta ground truth and delta guard evaluation.

Bit-identity is the acceptance gate, exactly as for
``REPRO_EVAL_INCREMENTAL`` (PR 4) and ``REPRO_DES`` (PR 8): the
kernels perform the *identical* IEEE arithmetic in the *identical*
order as the pure-Python oracle, so every estimate, simulation result,
report and cache key matches byte for byte. ``REPRO_KERNELS=0``
forces the oracle everywhere — the escape hatch the differential
tests in ``tests/test_oracle.py`` compare against.

Integer and float tables use plain Python ``list``/``array`` storage;
:mod:`numpy`, when importable, accelerates only the int8 guard/state
masks of the batched kernel (never float math — a leaked
``np.float64`` would poison JSON payloads and byte-identity).
"""

from __future__ import annotations

import os

__all__ = [
    "KERNELS_ENV",
    "KernelCounters",
    "counters",
    "kernels_enabled",
    "kernels_info",
]

#: Environment variable of the escape hatch (``0`` forces the oracle).
KERNELS_ENV = "REPRO_KERNELS"


def kernels_enabled() -> bool:
    """Process-wide switch for the array-compiled kernels.

    ``REPRO_KERNELS=0`` (or ``false``/``off``/``no``) forces the
    pure-Python oracle everywhere — the mode the identity tests and
    benchmark baselines compare against. Read at every decision point,
    so tests can flip it per case and worker processes inherit the
    choice through their environment.
    """
    value = os.environ.get(KERNELS_ENV, "1")
    return value.strip().lower() not in ("0", "false", "off", "no")


def kernels_info(*, compiled_tables: int,
                 batched_scenarios: int) -> dict:
    """The ``kernels`` telemetry block reports embed.

    ``compiled_tables`` and ``batched_scenarios`` are deterministic
    functions of the workload shape (how many table sets the run
    implies and how many scenarios are batch-eligible), **not** live
    counters — so a report differs between kernels-on and
    ``REPRO_KERNELS=0`` runs in exactly one value: ``enabled``. The
    differential tests normalize that single key and assert the rest
    byte-identical.
    """
    return {
        "enabled": kernels_enabled(),
        "compiled_tables": compiled_tables,
        "batched_scenarios": batched_scenarios,
    }


class KernelCounters:
    """Process-local kernel telemetry (diagnostics, not reports).

    Reports derive their ``kernels`` block from deterministic workload
    shape (see ``docs/kernels.md``) so kernels-on and kernels-off runs
    stay byte-identical; these live counters exist for tests and
    interactive inspection only.
    """

    __slots__ = ("problems_compiled", "schedules_compiled",
                 "estimator_runs", "batched_scenarios",
                 "oracle_fallbacks")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.problems_compiled = 0
        self.schedules_compiled = 0
        self.estimator_runs = 0
        self.batched_scenarios = 0
        self.oracle_fallbacks = 0

    def snapshot(self) -> dict[str, int]:
        """Counter values as a plain dict."""
        return {
            "problems_compiled": self.problems_compiled,
            "schedules_compiled": self.schedules_compiled,
            "estimator_runs": self.estimator_runs,
            "batched_scenarios": self.batched_scenarios,
            "oracle_fallbacks": self.oracle_fallbacks,
        }


#: The process-wide counter instance.
counters = KernelCounters()
