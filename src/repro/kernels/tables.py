"""The per-problem compile step: flat tables for the kernels.

:func:`compile_problem` lowers one ``(app, arch, k, priorities)``
context into a :class:`CompiledProblem`: contiguous process indices,
input/output/successor adjacency as index lists, per-copy cost memos
and the shared TDMA/send-memo context the estimator kernel runs over.
Compilation is cached (keyed by application identity plus architecture
identity, fault budget and priority content), so tabu walks, sweeps
and campaign chunks that evaluate thousands of candidates of one
problem pay the lowering once.

Float vectors are stored as ``array('d')`` and index vectors as
``array('q')`` — indexing either returns a plain Python ``float`` /
``int``, which is what keeps kernel arithmetic byte-identical to the
oracle (numpy scalars would leak ``np.float64`` into results and JSON
payloads; numpy is therefore used only for the int8 guard masks of
:mod:`repro.kernels.batch`).
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from weakref import WeakKeyDictionary
from collections.abc import Mapping

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.comm.tdma import TdmaBus
from repro.policies.recovery import CopyExecution
from repro.policies.types import CopyPlan
from repro.schedule.estimation import _AppStructure, _CopyCost
from repro.schedule.priorities import partial_critical_path_priorities

CopyKey = tuple[str, int]

#: Compiled problems retained per application (LRU beyond this).
_MAX_PER_APP = 16

#: app -> OrderedDict[(id(arch), k, priority key) -> CompiledProblem].
#: The compiled problem holds the arch strongly, so the id() component
#: of its key stays valid for exactly as long as the entry lives.
_CACHE: "WeakKeyDictionary[Application, OrderedDict]" = \
    WeakKeyDictionary()


class CompiledProblem:
    """Flat, index-addressed tables of one estimation problem.

    Everything here is immutable run-to-run context: per-process
    constants, adjacency in process indices, the interned priority
    vector, and the run-chain context (:class:`_AppStructure`,
    :class:`TdmaBus`, the uncontended-send memo) shared by every
    kernel run *and* every oracle re-evaluation chained off a
    kernel-produced state.
    """

    __slots__ = (
        "app", "arch", "k", "priorities", "structure", "bus",
        "send_memo", "names", "pid_of", "rank", "release", "negpri",
        "node_names", "nid_of", "inputs", "outputs", "successors",
        "base_blockers", "msg_names",
        "_cost_memo", "_key_memo", "_keys_rows",
    )

    def __init__(self, app: Application, arch: Architecture, k: int,
                 priorities: dict[str, float]) -> None:
        self.app = app
        self.arch = arch
        self.k = k
        self.priorities = priorities
        self.structure = _AppStructure(app)
        self.bus = TdmaBus(arch.bus)
        self.send_memo: dict = {}

        names = tuple(app.process_names)
        self.names = names
        self.pid_of = {name: pid for pid, name in enumerate(names)}
        # Rank in sorted-name order: candidate tuples built on
        # (rank, copy) compare in exactly the order the oracle's
        # (name, copy) keys do.
        order = {name: rank
                 for rank, name in enumerate(sorted(names))}
        self.rank = array("q", (order[name] for name in names))
        self.release = array(
            "d", (app.process(name).release for name in names))
        self.negpri = array(
            "d", (-priorities[name] for name in names))

        self.node_names = tuple(arch.node_names)
        self.nid_of = {node: nid
                       for nid, node in enumerate(self.node_names)}

        # Message indices: assigned over the union of all structure
        # inputs/outputs in process order (internal keys only).
        msg_idx: dict[str, int] = {}
        msg_names: list[str] = []
        for name in names:
            for message in self.structure.outputs[name]:
                if message.name not in msg_idx:
                    msg_idx[message.name] = len(msg_names)
                    msg_names.append(message.name)
            for message in self.structure.inputs[name]:
                if message.name not in msg_idx:
                    msg_idx[message.name] = len(msg_names)
                    msg_names.append(message.name)
        self.msg_names = tuple(msg_names)

        pid_of = self.pid_of
        self.inputs = tuple(
            tuple((msg_idx[m.name], pid_of[m.src])
                  for m in self.structure.inputs[name])
            for name in names)
        self.outputs = tuple(
            tuple((msg_idx[m.name], m.name, pid_of[m.dst],
                   m.size_bytes)
                  for m in self.structure.outputs[name])
            for name in names)
        self.successors = tuple(
            tuple(pid_of[s] for s in self.structure.successors[name])
            for name in names)
        self.base_blockers = array(
            "q", (self.structure.blockers[name] for name in names))

        #: (pid, nid, CopyPlan) -> _CopyCost, shared across runs.
        self._cost_memo: dict[tuple[int, int, CopyPlan], _CopyCost] = {}
        #: (pid, copy) -> interned CopyKey tuple.
        self._key_memo: dict[tuple[int, int], CopyKey] = {}
        #: (pid, ncopies) -> interned tuple of that process's keys.
        self._keys_rows: dict[tuple[int, int],
                              tuple[CopyKey, ...]] = {}

    def copy_cost(self, pid: int, nid: int, plan: CopyPlan,
                  ) -> _CopyCost:
        """The memoized per-copy cost of one placed recovery plan."""
        memo_key = (pid, nid, plan)
        cost = self._cost_memo.get(memo_key)
        if cost is None:
            process = self.app.process(self.names[pid])
            execution = CopyExecution(
                wcet=process.wcet_on(self.node_names[nid]), plan=plan,
                alpha=process.alpha, mu=process.mu, chi=process.chi)
            cost = _CopyCost(execution, self.k)
            self._cost_memo[memo_key] = cost
        return cost

    def copy_key(self, pid: int, copy: int) -> CopyKey:
        """The interned ``(name, copy)`` key of one placed copy."""
        memo_key = (pid, copy)
        key = self._key_memo.get(memo_key)
        if key is None:
            key = (self.names[pid], copy)
            self._key_memo[memo_key] = key
        return key

    def keys_row(self, pid: int, ncopies: int) -> tuple[CopyKey, ...]:
        """The interned key tuple of one process's placed copies.

        Copy counts take few distinct values (1..k+1), so the row for
        a given ``(pid, ncopies)`` is built once and shared by every
        run that places that many copies of the process.
        """
        memo_key = (pid, ncopies)
        row = self._keys_rows.get(memo_key)
        if row is None:
            row = tuple(self.copy_key(pid, copy)
                        for copy in range(ncopies))
            self._keys_rows[memo_key] = row
        return row


def _priority_key(priorities: Mapping[str, float] | None,
                  ) -> tuple | None:
    if priorities is None:
        return None
    return tuple(sorted(priorities.items()))


def compile_problem(app: Application, arch: Architecture, k: int,
                    priorities: Mapping[str, float] | None,
                    ) -> CompiledProblem:
    """The cached compiled tables of one estimation problem.

    ``priorities=None`` selects (and caches) the default
    partial-critical-path priorities, exactly as
    :meth:`~repro.schedule.estimation.EstimatorState.compute` does.
    """
    per_app = _CACHE.get(app)
    if per_app is None:
        per_app = OrderedDict()
        _CACHE[app] = per_app
    key = (id(arch), k, _priority_key(priorities))
    compiled = per_app.get(key)
    if compiled is None or compiled.arch is not arch:
        if priorities is None:
            resolved = dict(
                partial_critical_path_priorities(app, arch))
        else:
            resolved = dict(priorities)
        compiled = CompiledProblem(app, arch, k, resolved)
        from repro.kernels import counters
        counters.problems_compiled += 1
        per_app[key] = compiled
        if len(per_app) > _MAX_PER_APP:
            per_app.popitem(last=False)
    else:
        per_app.move_to_end(key)
    return compiled
