"""Batched scenario kernel: many fault plans through one schedule.

:class:`BatchedSimulator` compiles one design's conditional schedule
into integer-indexed tables once (attempt-id universe, per-entry
static fields, guard literals as a CSR index array, copy →
guarded-entry adjacency) and then advances many
:class:`~repro.ftcpg.scenarios.FaultPlan` scenarios through the table
replay in one pass per plan:

* *delta ground truth* — the fault-free base truth is derived once;
  a plan patches only the state of its ≤ k faulty copies;
* *batched guard evaluation* — with numpy, all guards evaluate in one
  vectorized gather/compare/segment-AND over the literal CSR (the
  oracle re-filters every entry with a per-literal dict walk for
  every plan — the dominant cost of
  :func:`repro.runtime.simulator.simulate`); without numpy, only the
  entries whose guards mention a faulty copy are re-evaluated against
  the cached fault-free fired mask;
* *index replay* — the per-scenario invariant checks run over flat
  arrays keyed by attempt/copy/node indices instead of composite
  tuple keys.

The kernel follows the happy path only: the moment any invariant
check would produce an error (guard undecidable, overlap, missing
input, bus collision, deadline miss, …) the plan is **re-simulated
through the pure-Python oracle**, which produces the exact error
strings. Clean scenarios are materialized into
:class:`~repro.runtime.simulator.SimulationResult` objects that match
the oracle's byte for byte: the same completed-process dict in
declaration order, the same makespan float, and the original
:class:`~repro.schedule.table.TableEntry` objects in the identical
replay order.

numpy (when importable) accelerates only the int8/bool guard-state
masks — all float values flow through plain Python floats, so no
``np.float64`` can leak into results or JSON payloads; without numpy
the masks fall back to ``bytearray``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.ftcpg.conditions import AttemptId
from repro.ftcpg.scenarios import FaultPlan
from repro.kernels import counters
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.runtime.simulator import SimulationResult, simulate
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import EntryKind, ScheduleSet
from repro.utils.mathutils import eps_cluster_ids, fgt, flt

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional speedup
    _np = None

CopyKey = tuple[str, int]

#: State encoding per attempt id: absent / executed-and-failed /
#: executed-and-succeeded (mirrors the oracle's ``executed`` dict
#: where presence maps to a ``failed`` bool).
_ABSENT, _FAILED, _OK = 0, 1, 2

#: Kind ranks matching :func:`repro.runtime.simulator._kind_rank`.
_KIND_RANK = {EntryKind.BROADCAST: 0, EntryKind.MESSAGE: 1,
              EntryKind.ATTEMPT: 2}


def _new_mask(size: int):
    if _np is not None:
        return _np.zeros(size, dtype=_np.int8)
    return bytearray(size)


def _copy_mask(mask):
    if _np is not None:
        return mask.copy()
    return bytearray(mask)


class BatchedSimulator:
    """Compiled batched scenario evaluation of one design."""

    def __init__(self, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 fault_model: FaultModel,
                 schedule: ScheduleSet) -> None:
        self._app = app
        self._arch = arch
        self._mapping = mapping
        self._policies = policies
        self._fault_model = fault_model
        self._schedule = schedule
        self._k = fault_model.k
        counters.schedules_compiled += 1

        node_names = tuple(arch.node_names)
        self._n_nodes = len(node_names)
        nid_of = {node: nid for nid, node in enumerate(node_names)}

        # -- copy registry ----------------------------------------------------
        copy_of: dict[CopyKey, int] = {}
        copy_segments: list[int] = []
        copy_recoveries: list[int] = []
        copy_nid: list[int] = []
        copy_pid: list[int] = []
        names = tuple(app.process_names)
        pid_of = {name: pid for pid, name in enumerate(names)}
        for process_name, policy in policies.items():
            for copy_index, copy_plan in enumerate(policy.copies):
                copy_of[(process_name, copy_index)] = len(copy_nid)
                copy_segments.append(copy_plan.segments)
                copy_recoveries.append(copy_plan.recoveries)
                copy_nid.append(
                    nid_of[mapping.node_of(process_name, copy_index)])
                copy_pid.append(pid_of[process_name])
        self._copy_of = copy_of
        self._copy_segments = copy_segments
        self._copy_recoveries = copy_recoveries
        self._copy_nid = copy_nid
        self._copy_pid_table = copy_pid
        # Stride packing (copy, segment) into one int key.
        self._seg_stride = max(copy_segments, default=1) + 2
        n_copies = len(copy_nid)

        # -- per-process tables -----------------------------------------------
        msg_of = {m: i for i, m in enumerate(app.message_names)}
        self._names = names
        self._releases = [app.process(n).release for n in names]
        self._deadlines = [app.process(n).deadline for n in names]
        self._proc_inputs = [
            [msg_of[m.name] for m in app.inputs_of(n)] for n in names]
        self._proc_outputs = [
            [msg_of[m.name] for m in app.outputs_of(n)] for n in names]
        self._proc_copies: list[list[int]] = [[] for _ in names]
        for key, cidx in copy_of.items():
            self._proc_copies[pid_of[key[0]]].append(cidx)

        # -- attempt-id universe ----------------------------------------------
        # Guard literal and attempt objects are massively shared across
        # entries (the synthesizer extends parent guards), so interning
        # memoizes on object identity first and only falls back to
        # (slow) dataclass hashing for the first sighting of each
        # object. Only objects reachable from the retained entries may
        # be id-memoized — a temporary's id would be recycled and
        # poison the memo.
        aid_of: dict[AttemptId, int] = {}
        att_memo: dict[int, int] = {}
        lit_memo: dict[int, tuple[int, int]] = {}

        def intern(attempt: AttemptId) -> int:
            aid = att_memo.get(id(attempt))
            if aid is None:
                aid = aid_of.get(attempt)
                if aid is None:
                    aid = len(aid_of)
                    aid_of[attempt] = aid
                att_memo[id(attempt)] = aid
            return aid

        # -- per-entry static tables (in global replay presort order) ---------
        entries = schedule.entries
        order = sorted(
            range(len(entries)),
            key=lambda i: (entries[i].start, _KIND_RANK[entries[i].kind]))
        self._entries = [entries[i] for i in order]
        n_entries = len(order)
        self._kind = [0] * n_entries
        self._start = [0.0] * n_entries
        self._end = [0.0] * n_entries
        self._lits: list[list[tuple[int, int]]] = [[] for _ in order]
        self._aid = [-1] * n_entries
        self._can_fail = [False] * n_entries
        self._loc_nid = [-1] * n_entries
        self._cidx = [-1] * n_entries
        self._segment = [0] * n_entries
        self._attempt_no = [0] * n_entries
        self._prev_aid = [-1] * n_entries
        self._is_last = [False] * n_entries
        self._msg = [-1] * n_entries
        self._frames: list[tuple[tuple[int, int], ...]] = \
            [()] * n_entries
        pending_prev: list[tuple[int, AttemptId]] = []
        for j, entry in enumerate(self._entries):
            self._kind[j] = _KIND_RANK[entry.kind]
            self._start[j] = entry.start
            self._end[j] = entry.end
            lits_j = self._lits[j]
            for literal in entry.guard.literals:
                pair = lit_memo.get(id(literal))
                if pair is None:
                    pair = (intern(literal.attempt),
                            _FAILED if literal.faulty else _OK)
                    lit_memo[id(literal)] = pair
                lits_j.append(pair)
            if entry.attempt is not None:
                self._aid[j] = intern(entry.attempt)
            if entry.kind is EntryKind.ATTEMPT:
                attempt = entry.attempt
                self._can_fail[j] = entry.can_fail
                self._loc_nid[j] = nid_of[entry.location]
                cidx = copy_of[(attempt.process, attempt.copy)]
                self._cidx[j] = cidx
                self._segment[j] = attempt.segment
                self._attempt_no[j] = attempt.attempt
                self._is_last[j] = (
                    attempt.segment == copy_segments[cidx])
                if attempt.attempt > 1:
                    pending_prev.append(
                        (j, AttemptId(attempt.process, attempt.copy,
                                      attempt.segment,
                                      attempt.attempt - 1)))
            else:
                self._frames[j] = tuple(
                    (frame.round_index, frame.slot_index)
                    for frame in entry.frames)
                if entry.kind is EntryKind.MESSAGE:
                    message = app.message(entry.message)
                    self._msg[j] = msg_of[entry.message]
                    self._cidx[j] = copy_of.get(
                        (message.src, entry.producer_copy), -1)
        # Resolve retry predecessors once the universe is complete; a
        # predecessor no entry or guard mentions stays -1 (such a retry
        # can only be an oracle-reported error anyway).
        for j, prev_attempt in pending_prev:
            self._prev_aid[j] = aid_of.get(prev_attempt, -1)
        self._n_aids = len(aid_of)

        # -- aid -> copy, copy -> aids / guarded entries ----------------------
        aid_cidx = [-1] * self._n_aids
        self._copy_aids: list[list[int]] = [[] for _ in range(n_copies)]
        self._copy_att_aid: list[dict[tuple[int, int], int]] = [
            {} for _ in range(n_copies)]
        for attempt, aid in aid_of.items():
            cidx = copy_of.get((attempt.process, attempt.copy))
            if cidx is None:
                continue
            aid_cidx[aid] = cidx
            self._copy_aids[cidx].append(aid)
            self._copy_att_aid[cidx][(attempt.segment,
                                      attempt.attempt)] = aid
        self._copy_entries: list[list[int]] = [
            [] for _ in range(n_copies)]
        for j in range(n_entries):
            seen: set[int] = set()
            for aid, _want in self._lits[j]:
                cidx = aid_cidx[aid]
                if cidx >= 0 and cidx not in seen:
                    seen.add(cidx)
                    self._copy_entries[cidx].append(j)

        # -- fault-free base state --------------------------------------------
        base_state = _new_mask(self._n_aids)
        for cidx in range(n_copies):
            att_aid = self._copy_att_aid[cidx]
            for segment in range(1, copy_segments[cidx] + 1):
                aid = att_aid.get((segment, 1))
                if aid is not None:
                    base_state[aid] = _OK
        self._base_state = base_state

        # -- guard evaluation backend -----------------------------------------
        if _np is not None:
            # Literal CSR: one flat (aid, wanted-state) array pair plus
            # per-entry offsets; a guard is satisfied iff the segment
            # minimum of (state[aid] == want) is 1 (AND of literals).
            counts = [len(lits) for lits in self._lits]
            self._lit_aids = _np.array(
                [aid for lits in self._lits for aid, _ in lits],
                dtype=_np.int64)
            self._lit_wants = _np.array(
                [want for lits in self._lits for _, want in lits],
                dtype=_np.int8)
            offsets = _np.cumsum([0] + counts, dtype=_np.int64)[:-1]
            self._nonempty = _np.array(counts, dtype=_np.int64) > 0
            self._ne_offsets = offsets[self._nonempty]
            self._base_fired = None
        else:
            # Pure-Python fallback: cache the fault-free fired mask and
            # re-evaluate only the guards mentioning a patched copy.
            base_fired = bytearray(n_entries)
            for j in range(n_entries):
                if self._guard_fires(j, base_state):
                    base_fired[j] = 1
            self._base_fired = base_fired

    # -- per-plan evaluation --------------------------------------------------

    def _guard_fires(self, j: int, state) -> bool:
        for aid, want in self._lits[j]:
            if state[aid] != want:
                return False
        return True

    def _fired_ids(self, state, patched: Iterable[int]) -> list[int]:
        """Indices of fired entries (presort order) for one state."""
        if _np is not None:
            fired = _np.ones(len(self._entries), dtype=bool)
            if self._ne_offsets.size:
                ok = state[self._lit_aids] == self._lit_wants
                minima = _np.minimum.reduceat(
                    ok.view(_np.int8), self._ne_offsets)
                fired[self._nonempty] = minima == 1
            return _np.nonzero(fired)[0].tolist()
        fired = _copy_mask(self._base_fired)
        stale: set[int] = set()
        for cidx in patched:
            stale.update(self._copy_entries[cidx])
        for j in stale:
            fired[j] = 1 if self._guard_fires(j, state) else 0
        return [j for j, flag in enumerate(fired) if flag]

    def _patch_copy(self, state, cidx: int,
                    counts: tuple[int, ...]) -> bool:
        """Apply one copy's fault distribution; return its success.

        Mirrors :func:`repro.runtime.simulator._copy_ground_truth`
        over the interned attempt universe (attempts no entry or guard
        references are unobservable and skipped).
        """
        for aid in self._copy_aids[cidx]:
            state[aid] = _ABSENT
        att_aid = self._copy_att_aid[cidx]
        segments = self._copy_segments[cidx]
        recoveries = self._copy_recoveries[cidx]
        local_faults = 0
        alive = True
        done = 0
        n_counts = len(counts)
        for segment in range(1, segments + 1):
            if not alive:
                break
            faults_here = counts[segment - 1] if segment <= n_counts \
                else 0
            for attempt in range(1, faults_here + 1):
                aid = att_aid.get((segment, attempt))
                if aid is not None:
                    state[aid] = _FAILED
                local_faults += 1
                if local_faults > recoveries:
                    alive = False
                    break
            if not alive:
                break
            aid = att_aid.get((segment, faults_here + 1))
            if aid is not None:
                state[aid] = _OK
            done = segment
        return alive and done == segments

    def results(self, plans: Iterable[FaultPlan],
                ) -> Iterator[SimulationResult]:
        """Simulate plans in order (kernel fast path, oracle escape)."""
        for plan in plans:
            yield self.simulate_plan(plan)

    def simulate_plan(self, plan: FaultPlan) -> SimulationResult:
        """One scenario: kernel replay, oracle fallback on violations."""
        result = None
        if type(plan) is FaultPlan \
                and plan.total_faults <= self._k:
            result = self._try_kernel(plan)
        if result is None:
            counters.oracle_fallbacks += 1
            return simulate(self._app, self._arch, self._mapping,
                            self._policies, self._fault_model,
                            self._schedule, plan)
        counters.batched_scenarios += 1
        return result

    def _try_kernel(self, plan: FaultPlan) -> SimulationResult | None:
        # -- delta ground truth + guard evaluation ----------------------------
        state = _copy_mask(self._base_state)
        success: dict[int, bool] = {}
        for key, counts in plan.faults.items():
            cidx = self._copy_of.get(key)
            if cidx is None:
                return None
            success[cidx] = self._patch_copy(state, cidx, counts)
        fired_ids = self._fired_ids(state, success)

        # -- per-plan replay order (subset eps-clustering) --------------------
        starts = self._start
        kinds = self._kind
        sub_starts = [starts[j] for j in fired_ids]
        groups = eps_cluster_ids(sub_starts)
        replay = sorted(
            range(len(fired_ids)),
            key=lambda i: (groups[i], kinds[fired_ids[i]],
                           sub_starts[i]))
        order = [fired_ids[i] for i in replay]

        # -- prime: condition-knowledge times ---------------------------------
        ends = self._end
        aids = self._aid
        n_nodes = self._n_nodes
        known: dict[int, float] = {}
        for j in order:
            kind = kinds[j]
            aid = aids[j]
            if kind == 2:
                if self._can_fail[j] and aid >= 0 \
                        and state[aid] != _ABSENT:
                    key = aid * n_nodes + self._loc_nid[j]
                    end = ends[j]
                    have = known.get(key)
                    if have is None or end < have:
                        known[key] = end
            elif kind == 0:
                if aid >= 0 and state[aid] != _ABSENT:
                    end = ends[j]
                    base = aid * n_nodes
                    for nid in range(n_nodes):
                        key = base + nid
                        have = known.get(key)
                        if have is None or end < have:
                            known[key] = end

        # -- replay -----------------------------------------------------------
        node_busy = [0.0] * n_nodes
        slot_owner: dict[tuple[int, int], int] = {}
        delivered: dict[int, float] = {}
        segment_finish: dict[int, float] = {}
        attempt_finish: dict[int, float] = {}
        completion: list[float | None] = [None] * len(self._copy_nid)
        copy_nid = self._copy_nid
        copy_pid = self._copy_pid_table
        seg_stride = self._seg_stride
        lits = self._lits
        for j in order:
            kind = kinds[j]
            start = starts[j]
            end = ends[j]
            if kind == 2:
                aid = aids[j]
                state_val = state[aid]
                if state_val == _ABSENT:
                    continue  # dead copy: the slot idles
                nid = self._loc_nid[j]
                for lit_aid, _want in lits[j]:
                    at = known.get(lit_aid * n_nodes + nid)
                    if at is None or fgt(at, start):
                        return None
                if flt(start, node_busy[nid]):
                    return None
                if end > node_busy[nid]:
                    node_busy[nid] = end
                cidx = self._cidx[j]
                segment = self._segment[j]
                attempt_no = self._attempt_no[j]
                pid = copy_pid[cidx]
                if segment == 1 and attempt_no == 1:
                    if flt(start, self._releases[pid]):
                        return None
                    for msg in self._proc_inputs[pid]:
                        at = delivered.get(msg * n_nodes + nid)
                        if at is None or fgt(at, start):
                            return None
                elif attempt_no == 1:
                    prev = segment_finish.get(
                        cidx * seg_stride + (segment - 1))
                    if prev is None or fgt(prev, start):
                        return None
                else:
                    prev_aid = self._prev_aid[j]
                    prev = (attempt_finish.get(prev_aid)
                            if prev_aid >= 0 else None)
                    if prev is None or fgt(prev, start):
                        return None
                attempt_finish[aid] = end
                if state_val == _FAILED:
                    if not self._can_fail[j]:
                        return None
                else:
                    segment_finish[cidx * seg_stride + segment] = end
                    if self._is_last[j] and success.get(cidx, True):
                        completion[cidx] = end
                        nd = copy_nid[cidx]
                        for msg in self._proc_outputs[pid]:
                            key = msg * n_nodes + nd
                            have = delivered.get(key)
                            if have is None or end < have:
                                delivered[key] = end
            else:
                for frame_key in self._frames[j]:
                    other = slot_owner.get(frame_key)
                    if other is not None and other != j:
                        return None
                    slot_owner[frame_key] = j
                if kind == 1:
                    cidx = self._cidx[j]
                    if cidx < 0 or not success.get(cidx, True):
                        continue  # dead copy: fail-silent
                    sent_at = completion[cidx]
                    if sent_at is None or fgt(sent_at, start):
                        return None
                    msg = self._msg[j]
                    for nid in range(n_nodes):
                        key = msg * n_nodes + nid
                        have = delivered.get(key)
                        if have is None or end < have:
                            delivered[key] = end

        # -- completion & deadline checks -------------------------------------
        completed: dict[str, float] = {}
        for pid, name in enumerate(self._names):
            best = None
            for cidx in self._proc_copies[pid]:
                finish = completion[cidx]
                if finish is not None and (best is None
                                           or finish < best):
                    best = finish
            if best is None:
                return None  # never completed: oracle reports it
            deadline = self._deadlines[pid]
            if deadline is not None and fgt(best, deadline):
                return None
            completed[name] = best
        makespan = max(completed.values()) if completed \
            else float("inf")
        if fgt(makespan, self._app.deadline):
            return None
        entries = self._entries
        return SimulationResult(
            plan=plan,
            completed=completed,
            makespan=makespan,
            errors=[],
            fired_entries=tuple(entries[j] for j in order),
        )
