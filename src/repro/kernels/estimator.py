"""Index-based estimator kernel over compiled problem tables.

:func:`kernel_compute` is the fast path behind
:meth:`repro.schedule.estimation.EstimatorState.compute`: the same
slack-sharing list scheduler, operating on the integer tables of a
:class:`~repro.kernels.tables.CompiledProblem` instead of per-run
dictionaries rebuilt from the model objects. It performs the identical
IEEE arithmetic in the identical order as
:class:`~repro.schedule.estimation._EstimationRun` — same float adds,
same pool folds over the same :class:`_CopyCost` objects, same
transmission scheduling — so the resulting
:class:`~repro.schedule.estimation.EstimatorState` (estimate, trace,
cache-key inputs) is bit-identical to the oracle's by construction.

The selection structures are order-isomorphic to the oracle's:

* priority heap — oracle entries ``(-priority, (name, copy))`` and
  kernel entries ``(-priority, rank, copy, pid)`` (``rank`` = position
  of ``name`` in sorted name order) are totally ordered the same way,
  and ``heapq`` pop order depends only on entry ordering, never on
  insertion history;
* non-delay scan — the ready pool is an insertion-ordered dict walked
  in the oracle's insertion order, with strict-``<`` candidate
  comparison on ``(start, -priority, rank, copy)``.

The incremental path (:meth:`EstimatorState.reevaluate`) stays the
oracle's pure-Python replay; states produced here share the compiled
problem's :class:`_AppStructure`, bus and send memo, so re-evaluation
chains off kernel states run unchanged.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from repro.comm.reservations import BusReservations
from repro.errors import SchedulingError
from repro.kernels import counters
from repro.kernels.tables import CompiledProblem, compile_problem
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.schedule.estimation import (
    CopyTiming,
    EstimatorState,
    FtEstimate,
    SendRecord,
    _BudgetedSlackPool,
    _CopyCost,
    _MaxSlackPool,
    _uncontended,
)
from repro.schedule.mapping import CopyMapping

CopyKey = tuple[str, int]


def kernel_compute(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    *,
    priorities: Mapping[str, float] | None,
    bus_contention: bool,
    slack_sharing: str,
) -> EstimatorState:
    """Full evaluation over compiled tables (bit-identical)."""
    compiled = compile_problem(app, arch, fault_model.k, priorities)
    counters.estimator_runs += 1
    return _KernelRun(compiled, mapping, policies, bus_contention,
                      slack_sharing).execute()


class _KernelRun:
    """One kernel execution of the slack-sharing list scheduler."""

    __slots__ = (
        "cp", "mapping", "policies", "bus_contention", "slack_sharing",
        "reservations", "ncopies", "nid", "costs", "plans",
        "node_free", "pools", "blockers", "remaining",
        "ff", "wc", "arrival", "timings", "pops", "post_slack",
        "sends", "first_pop", "completion", "heap", "ready_pool",
    )

    def __init__(self, cp: CompiledProblem, mapping: CopyMapping,
                 policies: PolicyAssignment, bus_contention: bool,
                 slack_sharing: str) -> None:
        self.cp = cp
        self.mapping = mapping
        self.policies = policies
        self.bus_contention = bus_contention
        self.slack_sharing = slack_sharing
        self.reservations = (BusReservations() if bus_contention
                             else None)

        names = cp.names
        nid_of = cp.nid_of
        ncopies: list[int] = []
        nid: list[list[int]] = []
        costs: list[list[_CopyCost]] = []
        plans: list[tuple] = []
        for pid, name in enumerate(names):
            copies = policies.of(name).copies
            ncopies.append(len(copies))
            row_nid: list[int] = []
            row_cost: list[_CopyCost] = []
            for copy_index, plan in enumerate(copies):
                node_id = nid_of[mapping.node_of(name, copy_index)]
                row_nid.append(node_id)
                row_cost.append(cp.copy_cost(pid, node_id, plan))
            nid.append(row_nid)
            costs.append(row_cost)
            plans.append(copies)
        self.ncopies = ncopies
        self.nid = nid
        self.costs = costs
        self.plans = plans

        n_nodes = len(cp.node_names)
        self.node_free = [0.0] * n_nodes
        pool_type = (_MaxSlackPool if slack_sharing == "max"
                     else _BudgetedSlackPool)
        self.pools = [pool_type(cp.k) for _ in range(n_nodes)]
        self.blockers = list(cp.base_blockers)
        self.remaining = list(ncopies)
        self.ff = [[0.0] * n for n in ncopies]
        self.wc = [[0.0] * n for n in ncopies]
        self.arrival: dict[tuple[int, int], float] = {}

        self.timings: dict[CopyKey, CopyTiming] = {}
        self.pops: list[CopyKey] = []
        self.post_slack: list[float] = []
        self.sends: dict[str, tuple[SendRecord, ...]] = {}
        self.first_pop: dict[str, int] = {}
        self.completion: dict[str, int] = {}

        self.heap: list[tuple[float, int, int, int]] = []
        self.ready_pool: dict[tuple[int, int], None] = {}

    # -- ready-set plumbing ---------------------------------------------------

    def _release(self, pid: int) -> None:
        if self.cp.non_delay:
            pool = self.ready_pool
            for copy_index in range(self.ncopies[pid]):
                pool[(pid, copy_index)] = None
        else:
            negpri = self.cp.negpri[pid]
            rank = self.cp.rank[pid]
            for copy_index in range(self.ncopies[pid]):
                heapq.heappush(self.heap,
                               (negpri, rank, copy_index, pid))

    def _pop_next(self) -> tuple[int, int]:
        if not self.cp.non_delay:
            if not self.heap:
                raise SchedulingError("estimation deadlock (cycle?)")
            entry = heapq.heappop(self.heap)
            return entry[3], entry[2]
        if not self.ready_pool:
            raise SchedulingError("estimation deadlock (cycle?)")
        cp = self.cp
        node_free = self.node_free
        best = None
        for pool_key in self.ready_pool:
            pid, copy_index = pool_key
            start = self._fixed_ready(pid, copy_index)
            free = node_free[self.nid[pid][copy_index]]
            if free > start:
                start = free
            candidate = (start, cp.negpri[pid], cp.rank[pid],
                         copy_index, pid)
            if best is None or candidate < best:
                best = candidate
        self.ready_pool.pop((best[4], best[3]))
        return best[4], best[3]

    def _fixed_ready(self, pid: int, copy_index: int) -> float:
        cp = self.cp
        node_id = self.nid[pid][copy_index]
        ready = cp.release[pid]
        arrival = self.arrival
        for msg_index, src_pid in cp.inputs[pid]:
            src_nid = self.nid[src_pid]
            src_ff = self.ff[src_pid]
            for src_copy in range(self.ncopies[src_pid]):
                if src_nid[src_copy] == node_id:
                    value = src_ff[src_copy]
                else:
                    value = arrival[(msg_index, src_copy)]
                if value > ready:
                    ready = value
        return ready

    # -- main loop ------------------------------------------------------------

    def execute(self) -> EstimatorState:
        cp = self.cp
        for pid in range(len(cp.names)):
            if self.blockers[pid] == 0:
                self._release(pid)

        names = cp.names
        node_names = cp.node_names
        release = cp.release
        inputs = cp.inputs
        nid = self.nid
        ncopies = self.ncopies
        node_free = self.node_free
        pools = self.pools
        arrival = self.arrival
        timings = self.timings
        pops = self.pops
        post_slack = self.post_slack
        ff_rows = self.ff
        wc_rows = self.wc
        first_pop = self.first_pop
        remaining = self.remaining

        scheduled = 0
        total = sum(ncopies)
        while scheduled < total:
            pid, copy_index = self._pop_next()
            name = names[pid]
            node_id = nid[pid][copy_index]
            cost = self.costs[pid][copy_index]
            position = len(pops)
            pops.append(cp.copy_key(pid, copy_index))
            if name not in first_pop:
                first_pop[name] = position

            earliest = release[pid]
            free = node_free[node_id]
            if free > earliest:
                earliest = free
            for msg_index, src_pid in inputs[pid]:
                src_nid = nid[src_pid]
                src_ff = ff_rows[src_pid]
                for src_copy in range(ncopies[src_pid]):
                    if src_nid[src_copy] == node_id:
                        value = src_ff[src_copy]
                    else:
                        value = arrival[(msg_index, src_copy)]
                    if value > earliest:
                        earliest = value

            ff_finish = earliest + cost.duration
            node_free[node_id] = ff_finish
            shared_slack = pools[node_id].add(cost)
            post_slack.append(shared_slack)
            wc_finish = ff_finish + shared_slack
            ff_rows[pid][copy_index] = ff_finish
            wc_rows[pid][copy_index] = wc_finish
            timings[cp.copy_key(pid, copy_index)] = CopyTiming(
                node=node_names[node_id], start=earliest,
                ff_finish=ff_finish, wc_finish=wc_finish)
            scheduled += 1
            remaining[pid] -= 1

            if remaining[pid] == 0:
                self.completion[name] = position
                self._transmit(pid)
                for succ_pid in cp.successors[pid]:
                    self.blockers[succ_pid] -= 1
                    if self.blockers[succ_pid] == 0:
                        self._release(succ_pid)

        return self._finish()

    def _transmit(self, pid: int) -> None:
        """Schedule every cross-node output of a completed process."""
        cp = self.cp
        nid = self.nid
        node_names = cp.node_names
        wc_row = self.wc[pid]
        src_nids = nid[pid]
        records: list[SendRecord] = []
        for msg_index, msg_name, dst_pid, size_bytes in cp.outputs[pid]:
            dst_nids = nid[dst_pid]
            first = dst_nids[0]
            common = first
            for dst_nid in dst_nids:
                if dst_nid != first:
                    common = -1
                    break
            for src_copy in range(self.ncopies[pid]):
                src_nid = src_nids[src_copy]
                if src_nid == common:
                    # All consumer copies share the producer's node:
                    # the message never touches the bus.
                    continue
                send_time = wc_row[src_copy]
                if self.reservations is not None:
                    transmission = cp.bus.schedule_transmission(
                        node_names[src_nid], send_time, size_bytes,
                        self.reservations)
                else:
                    transmission = self._uncontended_cached(
                        node_names[src_nid], send_time, size_bytes)
                self.arrival[(msg_index, src_copy)] = \
                    transmission.arrival
                records.append((msg_name, src_copy, transmission))
        self.sends[cp.names[pid]] = tuple(records)

    def _uncontended_cached(self, node: str, ready: float,
                            size_bytes: int):
        memo_key = (node, ready, size_bytes)
        memo = self.cp.send_memo
        transmission = memo.get(memo_key)
        if transmission is None:
            transmission = _uncontended(self.cp.bus, node, ready,
                                        size_bytes)
            if len(memo) >= 200_000:
                memo.clear()
            memo[memo_key] = transmission
        return transmission

    def _finish(self) -> EstimatorState:
        cp = self.cp
        timings = self.timings
        schedule_length = max(t.wc_finish for t in timings.values())
        ff_length = max(t.ff_finish for t in timings.values())
        violations = []
        wc_rows = self.wc
        for pid, process in enumerate(cp.app.processes):
            if process.deadline is None:
                continue
            bound = max(wc_rows[pid])
            if bound > process.deadline + 1e-9:
                violations.append(process.name)
        estimate = FtEstimate(
            schedule_length=schedule_length,
            ff_length=ff_length,
            timings=timings,
            deadline=cp.app.deadline,
            local_deadline_violations=tuple(violations),
        )
        copies = {}
        keys_of = {}
        for pid, name in enumerate(cp.names):
            cost_row = self.costs[pid]
            keys = tuple(cp.copy_key(pid, copy_index)
                         for copy_index in range(self.ncopies[pid]))
            keys_of[name] = keys
            for copy_index, key in enumerate(keys):
                copies[key] = cost_row[copy_index]
        return EstimatorState(
            app=cp.app, arch=cp.arch, mapping=self.mapping,
            policies=self.policies, k=cp.k,
            priorities=dict(cp.priorities),
            bus_contention=self.bus_contention,
            slack_sharing=self.slack_sharing,
            estimate=estimate,
            copies=copies, keys_of=keys_of,
            pops=tuple(self.pops),
            post_slack=tuple(self.post_slack),
            sends=self.sends,
            first_pop=self.first_pop,
            completion=self.completion,
            non_delay=cp.non_delay,
            structure=cp.structure,
            bus=cp.bus,
            send_memo=cp.send_memo,
        )
