"""Index-based estimator kernel over compiled problem tables.

:func:`kernel_compute` is the fast path behind
:meth:`repro.schedule.estimation.EstimatorState.compute`: the same
slack-sharing list scheduler, operating on the integer tables of a
:class:`~repro.kernels.tables.CompiledProblem` instead of per-run
dictionaries rebuilt from the model objects. It performs the identical
IEEE arithmetic in the identical order as
:class:`~repro.schedule.estimation._EstimationRun` — same float adds,
same pool folds over the same :class:`_CopyCost` objects, same
transmission scheduling — so the resulting
:class:`~repro.schedule.estimation.EstimatorState` (estimate, trace,
cache-key inputs) is bit-identical to the oracle's by construction.

Selection is order-isomorphic to the oracle's earliest-start-first
scan: the ready pool is an insertion-ordered dict walked in the
oracle's insertion order, with strict-``<`` candidate comparison on
``(start, -priority, rank, copy, pid)``. Oracle candidates
``(start, -priority, (name, copy))`` and kernel candidates order the
same way because ``rank`` is the position of ``name`` in sorted name
order, so the lexicographic comparison of ``(rank, copy, pid)``
matches ``(name, copy)`` exactly (``pid`` never decides — equal rank
implies equal pid). The pool value is the copy's fixed ready time
plus its node id and tie-break constants, computed once at release;
the ready time is constant from release onward because every producer
arrival and same-node finish is recorded before the consumer's
blockers reach zero, so each pop only folds in the current node-free
time.

The incremental path (:meth:`EstimatorState.reevaluate`) stays the
oracle's pure-Python replay — its per-call cost is dominated by the
adopted prefix, not the scheduling loop, so compiled tables buy it
nothing; states produced here share the compiled problem's
:class:`_AppStructure`, bus and send memo, so re-evaluation chains
off kernel states run unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.comm.reservations import BusReservations
from repro.errors import SchedulingError
from repro.kernels import counters
from repro.kernels.tables import CompiledProblem, compile_problem
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.schedule.estimation import (
    CopyTiming,
    EstimatorState,
    FtEstimate,
    SendRecord,
    _BudgetedSlackPool,
    _CopyCost,
    _MaxSlackPool,
    _uncontended,
)
from repro.schedule.mapping import CopyMapping

CopyKey = tuple[str, int]


def kernel_compute(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    *,
    priorities: Mapping[str, float] | None,
    bus_contention: bool,
    slack_sharing: str,
) -> EstimatorState:
    """Full evaluation over compiled tables (bit-identical)."""
    compiled = compile_problem(app, arch, fault_model.k, priorities)
    counters.estimator_runs += 1
    return _KernelRun(compiled, mapping, policies, bus_contention,
                      slack_sharing).execute()


class _KernelRun:
    """One kernel execution of the slack-sharing list scheduler."""

    __slots__ = (
        "cp", "mapping", "policies", "bus_contention", "slack_sharing",
        "reservations", "ncopies", "nid", "costs", "plans",
        "node_free", "pools", "blockers", "remaining",
        "ff", "wc", "arrival", "timings", "pops", "post_slack",
        "sends", "first_pop", "completion", "ready_pool",
        "max_wc", "max_ff",
    )

    def __init__(self, cp: CompiledProblem, mapping: CopyMapping,
                 policies: PolicyAssignment, bus_contention: bool,
                 slack_sharing: str) -> None:
        self.cp = cp
        self.mapping = mapping
        self.policies = policies
        self.bus_contention = bus_contention
        self.slack_sharing = slack_sharing
        self.reservations = (BusReservations() if bus_contention
                             else None)

        names = cp.names
        nid_of = cp.nid_of
        ncopies: list[int] = []
        nid: list[list[int]] = []
        costs: list[list[_CopyCost]] = []
        plans: list[tuple] = []
        for pid, name in enumerate(names):
            copies = policies.of(name).copies
            ncopies.append(len(copies))
            row_nid: list[int] = []
            row_cost: list[_CopyCost] = []
            for copy_index, plan in enumerate(copies):
                node_id = nid_of[mapping.node_of(name, copy_index)]
                row_nid.append(node_id)
                row_cost.append(cp.copy_cost(pid, node_id, plan))
            nid.append(row_nid)
            costs.append(row_cost)
            plans.append(copies)
        self.ncopies = ncopies
        self.nid = nid
        self.costs = costs
        self.plans = plans

        n_nodes = len(cp.node_names)
        self.node_free = [0.0] * n_nodes
        pool_type = (_MaxSlackPool if slack_sharing == "max"
                     else _BudgetedSlackPool)
        self.pools = [pool_type(cp.k) for _ in range(n_nodes)]
        self.blockers = list(cp.base_blockers)
        self.remaining = list(ncopies)
        self.ff = [[0.0] * n for n in ncopies]
        self.wc = [[0.0] * n for n in ncopies]
        self.arrival: dict[tuple[int, int], float] = {}

        self.timings: dict[CopyKey, CopyTiming] = {}
        self.pops: list[CopyKey] = []
        self.post_slack: list[float] = []
        self.sends: dict[str, tuple[SendRecord, ...]] = {}
        self.first_pop: dict[str, int] = {}
        self.completion: dict[str, int] = {}

        #: pool value: (fixed ready, node id, -priority, rank) — all
        #: constant from release to pop, mirroring the oracle's pool.
        self.ready_pool: dict[
            tuple[int, int], tuple[float, int, float, int]] = {}

        #: Running maxima folded in the main loop (max over floats is
        #: value-exact, so these match a full post-hoc scan bit for
        #: bit), mirroring the oracle.
        self.max_wc = 0.0
        self.max_ff = 0.0

    # -- ready-set plumbing ---------------------------------------------------

    def _release(self, pid: int) -> None:
        cp = self.cp
        pool = self.ready_pool
        nid_row = self.nid[pid]
        negpri = cp.negpri[pid]
        rank = cp.rank[pid]
        # The fixed-ready fold is inlined per copy: releases fire once
        # per process but touch every (input x producer copy) pair for
        # every copy, so the per-copy call and table lookups add up.
        release_time = cp.release[pid]
        inputs = cp.inputs[pid]
        nid = self.nid
        ncopies = self.ncopies
        ff = self.ff
        arrival = self.arrival
        for copy_index in range(ncopies[pid]):
            node_id = nid_row[copy_index]
            ready = release_time
            for msg_index, src_pid in inputs:
                src_nid = nid[src_pid]
                src_ff = ff[src_pid]
                for src_copy in range(ncopies[src_pid]):
                    if src_nid[src_copy] == node_id:
                        value = src_ff[src_copy]
                    else:
                        value = arrival[(msg_index, src_copy)]
                    if value > ready:
                        ready = value
            pool[(pid, copy_index)] = (ready, node_id, negpri, rank)

    def _pop_next(self) -> tuple[int, int, float, int]:
        """The next (pid, copy) to schedule, with start and node id.

        Strict lexicographic minimum over ``(start, -priority, rank,
        copy, pid)`` — spelled out field by field so the scan
        allocates no candidate tuples (mirrors the oracle's scan;
        ``pid`` never decides, equal rank implies equal pid).
        """
        if not self.ready_pool:
            raise SchedulingError("estimation deadlock (cycle?)")
        node_free = self.node_free
        best_key = None
        for pool_key, (ready, node_id, negpri, rank) \
                in self.ready_pool.items():
            start = node_free[node_id]
            if ready > start:
                start = ready
            if best_key is None or start < best_start or (
                    start == best_start
                    and (negpri, rank, pool_key[1]) <
                    (best_negpri, best_rank, best_key[1])):
                best_key = pool_key
                best_start = start
                best_negpri = negpri
                best_rank = rank
                best_node = node_id
        del self.ready_pool[best_key]
        return best_key[0], best_key[1], best_start, best_node

    # -- main loop ------------------------------------------------------------

    def execute(self) -> EstimatorState:
        cp = self.cp
        for pid in range(len(cp.names)):
            if self.blockers[pid] == 0:
                self._release(pid)

        names = cp.names
        node_names = cp.node_names
        ncopies = self.ncopies
        node_free = self.node_free
        pools = self.pools
        costs = self.costs
        timings = self.timings
        pops = self.pops
        post_slack = self.post_slack
        ff_rows = self.ff
        wc_rows = self.wc
        first_pop = self.first_pop
        completion = self.completion
        remaining = self.remaining
        blockers = self.blockers
        successors = cp.successors
        copy_key = cp.copy_key
        pop_next = self._pop_next
        transmit = self._transmit
        release = self._release
        max_wc = 0.0
        max_ff = 0.0

        scheduled = 0
        total = sum(ncopies)
        while scheduled < total:
            # As in the oracle: the popped start IS the fold of
            # release, inputs and node availability (max is
            # value-exact, so the fold order is immaterial).
            pid, copy_index, earliest, node_id = pop_next()
            name = names[pid]
            cost = costs[pid][copy_index]
            position = scheduled
            key = copy_key(pid, copy_index)
            pops.append(key)
            if name not in first_pop:
                first_pop[name] = position

            ff_finish = earliest + cost.duration
            node_free[node_id] = ff_finish
            shared_slack = pools[node_id].add(cost)
            post_slack.append(shared_slack)
            wc_finish = ff_finish + shared_slack
            ff_rows[pid][copy_index] = ff_finish
            wc_rows[pid][copy_index] = wc_finish
            timings[key] = CopyTiming(
                node_names[node_id], earliest, ff_finish, wc_finish)
            if wc_finish > max_wc:
                max_wc = wc_finish
            if ff_finish > max_ff:
                max_ff = ff_finish
            scheduled += 1
            remaining[pid] -= 1

            if remaining[pid] == 0:
                completion[name] = position
                transmit(pid)
                for succ_pid in successors[pid]:
                    blockers[succ_pid] -= 1
                    if blockers[succ_pid] == 0:
                        release(succ_pid)

        self.max_wc = max_wc
        self.max_ff = max_ff
        return self._finish()

    def _transmit(self, pid: int) -> None:
        """Schedule every cross-node output of a completed process."""
        cp = self.cp
        outputs = cp.outputs[pid]
        if not outputs:
            self.sends[cp.names[pid]] = ()
            return
        nid = self.nid
        node_names = cp.node_names
        wc_row = self.wc[pid]
        src_nids = nid[pid]
        n_src = self.ncopies[pid]
        arrival = self.arrival
        reservations = self.reservations
        schedule_on_bus = cp.bus.schedule_transmission
        send_memo = cp.send_memo
        uncontended = self._uncontended_cached
        records: list[SendRecord] = []
        for msg_index, msg_name, dst_pid, size_bytes in outputs:
            dst_nids = nid[dst_pid]
            first = dst_nids[0]
            common = first
            for dst_nid in dst_nids:
                if dst_nid != first:
                    common = -1
                    break
            for src_copy in range(n_src):
                src_nid = src_nids[src_copy]
                if src_nid == common:
                    # All consumer copies share the producer's node:
                    # the message never touches the bus.
                    continue
                send_time = wc_row[src_copy]
                src_name = node_names[src_nid]
                if reservations is not None:
                    transmission = schedule_on_bus(
                        src_name, send_time, size_bytes, reservations)
                else:
                    transmission = send_memo.get(
                        (src_name, send_time, size_bytes))
                    if transmission is None:
                        transmission = uncontended(
                            src_name, send_time, size_bytes)
                arrival[(msg_index, src_copy)] = transmission.arrival
                records.append((msg_name, src_copy, transmission))
        self.sends[cp.names[pid]] = tuple(records)

    def _uncontended_cached(self, node: str, ready: float,
                            size_bytes: int):
        memo_key = (node, ready, size_bytes)
        memo = self.cp.send_memo
        transmission = memo.get(memo_key)
        if transmission is None:
            transmission = _uncontended(self.cp.bus, node, ready,
                                        size_bytes)
            if len(memo) >= 200_000:
                memo.clear()
            memo[memo_key] = transmission
        return transmission

    def _finish(self) -> EstimatorState:
        cp = self.cp
        timings = self.timings
        violations = []
        wc_rows = self.wc
        pid_of = cp.pid_of
        for name, deadline in cp.structure.deadlined:
            bound = max(wc_rows[pid_of[name]])
            if bound > deadline + 1e-9:
                violations.append(name)
        estimate = FtEstimate(
            schedule_length=self.max_wc,
            ff_length=self.max_ff,
            timings=timings,
            deadline=cp.app.deadline,
            local_deadline_violations=tuple(violations),
        )
        copies = {}
        keys_of = {}
        keys_row = cp.keys_row
        ncopies = self.ncopies
        for pid, name in enumerate(cp.names):
            cost_row = self.costs[pid]
            keys = keys_row(pid, ncopies[pid])
            keys_of[name] = keys
            for copy_index, key in enumerate(keys):
                copies[key] = cost_row[copy_index]
        return EstimatorState(
            app=cp.app, arch=cp.arch, mapping=self.mapping,
            policies=self.policies, k=cp.k,
            priorities=dict(cp.priorities),
            bus_contention=self.bus_contention,
            slack_sharing=self.slack_sharing,
            estimate=estimate,
            copies=copies, keys_of=keys_of,
            pops=tuple(self.pops),
            post_slack=tuple(self.post_slack),
            sends=self.sends,
            first_pop=self.first_pop,
            completion=self.completion,
            structure=cp.structure,
            bus=cp.bus,
            send_memo=cp.send_memo,
        )
