"""The event-driven simulator facade.

:class:`DesSimulator` consumes the same ``(app, arch, mapping,
policies, fault_model, schedule)`` design as
:func:`repro.runtime.simulator.simulate` and executes fault scenarios
through the deterministic event queue. Two execution paths, picked per
plan:

* **Table-expressible plans** (a plain
  :class:`~repro.ftcpg.scenarios.FaultPlan`, or a
  :class:`~repro.ftcpg.scenarios.DesFaultPlan` without DES-only axes)
  replay through the queue: fired entries are pushed as events keyed
  ``(start, kind-rank, seq)`` and drained in anchored eps-clusters —
  provably the same order ``_replay_order`` computes — into the
  *shared* ``_ReplayState`` handlers of the table simulator. The
  result is **bit-identical** to :func:`repro.runtime.simulator.simulate`
  by construction, and the differential-oracle suite holds the two
  paths to full :class:`~repro.runtime.simulator.SimulationResult`
  equality.
* **DES-only plans** (intermittent windows, corrupted slots, jitter)
  run forward through :class:`repro.des.online.OnlineEngine`; table
  replay cannot express them, so there is no oracle — golden event
  traces pin their behavior instead.

``REPRO_DES=0`` (or ``false``/``off``/``no``) forces the oracle for
table-expressible plans — the same escape-hatch pattern as
``REPRO_VERIFY_INCREMENTAL``/``REPRO_EVAL_INCREMENTAL``: if the
queue-ordered path ever drifted, flipping the variable isolates it
without a code change. DES-only plans always use the event engine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.des.events import DesEvent, DesEventKind
from repro.des.online import OnlineEngine
from repro.des.queue import EventQueue
from repro.ftcpg.scenarios import DesFaultPlan, FaultPlan
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.runtime.simulator import (
    SimulationResult,
    _derive_ground_truth,
    _guard_fires,
    _kind_rank,
    _ReplayState,
)
from repro.runtime.simulator import simulate as replay_simulate
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import EntryKind, ScheduleSet


def des_default() -> bool:
    """Whether the event-queue path handles table-expressible plans.

    ``REPRO_DES=0`` (or ``false``/``off``/``no``) forces the
    table-replay oracle instead; anything else (including unset)
    enables the DES path. DES-only plans are unaffected — only the
    event engine can execute them.
    """
    value = os.environ.get("REPRO_DES", "1")
    return value.strip().lower() not in {"0", "false", "off", "no"}


@dataclass(frozen=True)
class DesRun:
    """One simulated scenario: the result plus the ordered event log."""

    result: SimulationResult
    events: tuple[DesEvent, ...]


class DesSimulator:
    """Event-driven simulator over one synthesized design.

    Construct once per design, then :meth:`simulate` any number of
    fault scenarios — plain :class:`~repro.ftcpg.scenarios.FaultPlan`
    instances or :class:`~repro.ftcpg.scenarios.DesFaultPlan`
    extensions.
    """

    def __init__(self, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 fault_model: FaultModel, schedule: ScheduleSet, *,
                 use_des: bool | None = None) -> None:
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.policies = policies
        self.fault_model = fault_model
        self.schedule = schedule
        #: ``None`` defers to :func:`des_default` at each call.
        self._use_des = use_des

    def simulate(self, plan: FaultPlan | DesFaultPlan) -> SimulationResult:
        """Execute one fault scenario; see :meth:`run` for the log."""
        return self.run(plan).result

    def run(self, plan: FaultPlan | DesFaultPlan) -> DesRun:
        """Execute one fault scenario and keep the ordered event log.

        Table-expressible plans report against their plain
        :class:`~repro.ftcpg.scenarios.FaultPlan` (a bare
        ``DesFaultPlan`` unwraps to its base), keeping the result
        bit-comparable with the oracle's.
        """
        if isinstance(plan, DesFaultPlan):
            if not plan.is_table_expressible:
                engine = OnlineEngine(self.app, self.arch, self.mapping,
                                      self.policies, self.fault_model,
                                      self.schedule)
                result, events = engine.run(plan)
                return DesRun(result=result, events=tuple(events))
            plan = plan.base
        use_des = self._use_des if self._use_des is not None \
            else des_default()
        if use_des:
            result = self._simulate_table(plan)
        else:
            result = replay_simulate(self.app, self.arch, self.mapping,
                                     self.policies, self.fault_model,
                                     self.schedule, plan)
        return DesRun(result=result, events=_table_events(result))

    def _simulate_table(self, plan: FaultPlan) -> SimulationResult:
        """Queue-ordered replay of a table-expressible plan.

        Fired entries are pushed in ``(start, kind-rank)`` order, so
        the queue's monotone ``seq`` encodes that order and each
        popped eps-cluster — sorted by ``(priority=kind-rank, seq)`` —
        reproduces exactly the ``(cluster, kind, start)`` law of
        ``_replay_order``. Feeding that stream through the shared
        ``_ReplayState`` makes this path bit-identical to the oracle.
        """
        truth = _derive_ground_truth(self.app, self.policies, plan)
        fired = [entry for entry in self.schedule.entries
                 if _guard_fires(entry, truth.executed)]
        queue = EventQueue()
        for entry in sorted(fired,
                            key=lambda e: (e.start, _kind_rank(e))):
            queue.push(entry.start, _kind_rank(entry), entry)
        ordered = [payload for _, _, _, payload in queue.drain()]
        state = _ReplayState(self.app, self.arch, self.mapping,
                             self.policies, self.fault_model, plan, truth)
        state.prime(ordered)
        for entry in ordered:
            state.step(entry)
        return state.finish(ordered)


def simulate_des(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    schedule: ScheduleSet,
    plan: FaultPlan | DesFaultPlan,
) -> SimulationResult:
    """Functional mirror of :func:`repro.runtime.simulator.simulate`
    running through the event-driven core."""
    simulator = DesSimulator(app, arch, mapping, policies, fault_model,
                             schedule)
    return simulator.simulate(plan)


def _table_events(result: SimulationResult) -> tuple[DesEvent, ...]:
    """Event log of a replayed (table-expressible) scenario.

    One event per fired entry, in replay order: attempts at their
    start, bus effects at their delivery time — the same execution
    order the replay handlers processed."""
    events: list[DesEvent] = []
    for entry in result.fired_entries:
        if entry.kind is EntryKind.ATTEMPT:
            events.append(DesEvent(
                time=entry.start, kind=DesEventKind.ATTEMPT_START,
                label=f"{entry.attempt.label()} on {entry.location}"))
        elif entry.kind is EntryKind.MESSAGE:
            events.append(DesEvent(
                time=entry.end, kind=DesEventKind.MESSAGE_DELIVERED,
                label=f"{entry.message} (copy {entry.producer_copy})"))
        else:
            events.append(DesEvent(
                time=entry.end, kind=DesEventKind.BROADCAST_DELIVERED,
                label=f"F[{entry.attempt.label()}]"))
    return tuple(events)


__all__ = [
    "DesRun",
    "DesSimulator",
    "des_default",
    "simulate_des",
]
