"""Online execution of schedule tables under DES-only fault axes.

The table-replay simulator (:mod:`repro.runtime.simulator`) derives
ground truth from the fault plan *up front* and checks the fired
entries against it — possible only because a per-segment fault count
fully determines every outcome in advance. The axes of
:class:`~repro.ftcpg.scenarios.DesFaultPlan` break that premise:

* an intermittent :class:`~repro.ftcpg.scenarios.FaultWindow` fails
  whatever happens to execute on its node while it is active,
  including the re-executions the counts would have declared
  successful;
* a corrupted TDMA slot (:class:`~repro.ftcpg.scenarios.SlotFault`)
  loses a frame, and the retransmission slots depend on what the bus
  already carries at that point;
* release jitter shifts a process start against an immovable
  time-triggered table.

So this engine runs *forward*: each table entry is a candidate event
at its nominal start; it activates iff its guard is satisfied by the
condition values **observed on its location so far** (the distributed
runtime's view, not the oracle's). Outcomes are decided at attempt
finish, knowledge spreads via broadcasts, lost frames are
retransmitted through :class:`~repro.comm.tdma.TdmaBus` slot
arithmetic, and violations (missed inputs, releases, deadlines,
fault-proof attempts hit by faults) are recorded as errors — those
findings are the reason the axes exist.

Activation stays strictly time-triggered: a TTP-style runtime cannot
slide table entries, so delays surface as errors rather than cascaded
slippage. Within one eps-cluster of the event queue, effects order as
fault toggles < deliveries < finishes < activations, mirroring the
replay rule that bus effects land before attempts start.
"""

from __future__ import annotations

from repro.comm.tdma import TdmaBus
from repro.des.events import DesEvent, DesEventKind
from repro.des.queue import EventQueue
from repro.ftcpg.conditions import AttemptId
from repro.ftcpg.scenarios import DesFaultPlan
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.runtime.simulator import SimulationResult
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import EntryKind, ScheduleSet, TableEntry
from repro.utils.mathutils import fgt, flt

CopyKey = tuple[str, int]

#: Cluster-internal event priorities (lower runs first).
P_FAULT = 0
P_DELIVER = 1
P_FINISH = 2
P_ACTIVATE = 3

_ENTRY_RANK = {EntryKind.BROADCAST: 0, EntryKind.MESSAGE: 1,
               EntryKind.ATTEMPT: 2}


class OnlineEngine:
    """Forward (event-driven) execution of one DES-only scenario.

    One instance runs one plan; :meth:`run` returns the
    :class:`~repro.runtime.simulator.SimulationResult` plus the full
    ordered event log.
    """

    def __init__(self, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 fault_model: FaultModel, schedule: ScheduleSet) -> None:
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.policies = policies
        self.fault_model = fault_model
        self.schedule = schedule
        self.bus = TdmaBus(arch.bus)

    def run(self, plan: DesFaultPlan,
            ) -> tuple[SimulationResult, list[DesEvent]]:
        """Execute the schedule tables forward under ``plan``."""
        self.plan = plan
        self.base = plan.base
        self.events: list[DesEvent] = []
        self.errors: list[str] = []
        if self.base.total_faults > self.fault_model.k:
            self.errors.append(
                f"plan injects {self.base.total_faults} faults, budget "
                f"is {self.fault_model.k}")
        #: (attempt, node) -> (known-at time, observed-faulty value)
        self.known: dict[tuple[AttemptId, str], tuple[float, bool]] = {}
        self.node_busy: dict[str, float] = {
            n: 0.0 for n in self.arch.node_names}
        self.delivered: dict[str, dict[str, float]] = {}
        self.segment_finish: dict[tuple[CopyKey, int], float] = {}
        self.attempt_finish: dict[AttemptId, float] = {}
        self.completion: dict[CopyKey, float] = {}
        self.copy_faults: dict[CopyKey, int] = {}
        self.copy_dead: set[CopyKey] = set()
        self.fired: list[TableEntry] = []
        #: Slot occurrences the nominal tables reserve — retransmitted
        #: frames must dodge them all (conservative: also entries that
        #: end up not activating; the runtime cannot know in advance).
        self.reserved: set[tuple[int, int]] = {
            (frame.round_index, frame.slot_index)
            for entry in self.schedule.entries
            for frame in entry.frames}
        self.corrupted: set[tuple[int, int]] = {
            (fault.round_index, fault.slot_index)
            for fault in plan.slot_faults}

        queue = EventQueue()
        self.queue = queue
        for window in plan.windows:
            queue.push(window.t_on, P_FAULT, ("fault-on", window))
            queue.push(window.t_off, P_FAULT, ("fault-off", window))
        for name in self.app.process_names:
            delay = plan.jitter.get(name, 0.0)
            if delay > 0:
                release = self.app.process(name).release + delay
                queue.push(release, P_FAULT, ("jitter", name, delay))
        for entry in sorted(self.schedule.entries,
                            key=lambda e: (e.start, _ENTRY_RANK[e.kind])):
            queue.push(entry.start, P_ACTIVATE, ("activate", entry))

        while queue:
            for _time, _prio, _seq, payload in queue.pop_cluster():
                self._dispatch(payload)
        return self._finish(), self.events

    # -- event dispatch -----------------------------------------------------

    def _dispatch(self, payload: tuple) -> None:
        handler = payload[0]
        if handler == "activate":
            self._activate(payload[1])
        elif handler == "finish":
            self._finish_attempt(payload[1])
        elif handler == "deliver-msg":
            self._deliver_message(payload[1], payload[2])
        elif handler == "deliver-bcast":
            self._deliver_broadcast(payload[1], payload[2], payload[3])
        elif handler == "fault-on":
            window = payload[1]
            self._log(window.t_on, DesEventKind.FAULT_ON,
                      window.describe())
        elif handler == "fault-off":
            window = payload[1]
            self._log(window.t_off, DesEventKind.FAULT_OFF,
                      window.describe())
        else:  # "jitter"
            _, name, delay = payload
            release = self.app.process(name).release + delay
            self._log(release, DesEventKind.JITTER,
                      f"{name} released +{delay:g}")

    def _log(self, time: float, kind: DesEventKind, label: str) -> None:
        self.events.append(DesEvent(time=time, kind=kind, label=label))

    def _guard_observed(self, entry: TableEntry, node: str) -> bool:
        """Whether the entry's guard is satisfied by the condition
        values known on ``node`` at the entry's nominal start.

        Unknown or later-arriving literals mean the runtime on that
        location cannot activate the entry — it simply does not fire
        (the quiet majority: tables carry entries for *all*
        scenarios)."""
        for literal in entry.guard.literals:
            observed = self.known.get((literal.attempt, node))
            if observed is None:
                return False
            known_at, faulty = observed
            if fgt(known_at, entry.start):
                return False
            if faulty != literal.faulty:
                return False
        return True

    def _learn(self, attempt: AttemptId, node: str, at: float,
               faulty: bool) -> None:
        key = (attempt, node)
        existing = self.known.get(key)
        if existing is None or at < existing[0]:
            self.known[key] = (at, faulty)

    # -- activation ---------------------------------------------------------

    def _activate(self, entry: TableEntry) -> None:
        if entry.kind is EntryKind.ATTEMPT:
            self._activate_attempt(entry)
        elif entry.kind is EntryKind.MESSAGE:
            self._activate_message(entry)
        else:
            self._activate_broadcast(entry)

    def _activate_attempt(self, entry: TableEntry) -> None:
        attempt = entry.attempt
        key = (attempt.process, attempt.copy)
        node = entry.location
        if key in self.copy_dead:
            return  # fail-silent: the slot idles
        if not self._guard_observed(entry, node):
            return
        self.fired.append(entry)
        self._log(entry.start, DesEventKind.ATTEMPT_START,
                  f"{attempt.label()} on {node}")

        # Processor exclusivity.
        if flt(entry.start, self.node_busy[node]):
            self.errors.append(
                f"{attempt.label()} overlaps on {node}: start "
                f"{entry.start} < busy-until {self.node_busy[node]}")
        self.node_busy[node] = max(self.node_busy[node], entry.end)

        # Release (with jitter) / inputs / continuity.
        if attempt.segment == 1 and attempt.attempt == 1:
            process = self.app.process(attempt.process)
            release = process.release + self.plan.jitter.get(
                attempt.process, 0.0)
            if flt(entry.start, release):
                self.errors.append(
                    f"{attempt.label()} starts before its release "
                    f"{release:g}")
            for message in self.app.inputs_of(attempt.process):
                at = self.delivered.get(message.name, {}).get(node)
                if at is None or fgt(at, entry.start):
                    self.errors.append(
                        f"{attempt.label()} on {node} starts at "
                        f"{entry.start} without input {message.name!r} "
                        f"(available: {at})")
        elif attempt.attempt == 1:
            prev = self.segment_finish.get((key, attempt.segment - 1))
            if prev is None or fgt(prev, entry.start):
                self.errors.append(
                    f"{attempt.label()} starts before segment "
                    f"{attempt.segment - 1} finished ({prev})")
        else:
            previous = AttemptId(attempt.process, attempt.copy,
                                 attempt.segment, attempt.attempt - 1)
            prev = self.attempt_finish.get(previous)
            if prev is None or fgt(prev, entry.start):
                self.errors.append(
                    f"retry {attempt.label()} starts before attempt "
                    f"{attempt.attempt - 1} was detected faulty ({prev})")

        self.attempt_finish[attempt] = entry.end
        self.queue.push(entry.end, P_FINISH, ("finish", entry))

    def _finish_attempt(self, entry: TableEntry) -> None:
        attempt = entry.attempt
        key = (attempt.process, attempt.copy)
        node = entry.location
        copy_plan = self.policies.of(attempt.process).copies[attempt.copy]

        base_fail = attempt.attempt <= self.base.faults_in(
            attempt.process, attempt.copy, attempt.segment)
        window_hit = any(
            window.node == node and window.hits(entry.start, entry.end)
            for window in self.plan.windows)
        failed = base_fail or window_hit
        if entry.can_fail:
            self._learn(attempt, node, entry.end, failed)

        outcome = "ok"
        if failed:
            outcome = "fault (window)" if window_hit and not base_fail \
                else "fault"
        self._log(entry.end, DesEventKind.ATTEMPT_FINISH,
                  f"{attempt.label()} {outcome}")

        if failed:
            if not entry.can_fail:
                self.errors.append(
                    f"{attempt.label()} was scheduled as fault-proof "
                    "(no detection) but a fault hit it")
            self.copy_faults[key] = self.copy_faults.get(key, 0) + 1
            if self.copy_faults[key] > copy_plan.recoveries:
                self.copy_dead.add(key)
                self._log(entry.end, DesEventKind.COPY_DEAD,
                          f"{attempt.label()} exhausted "
                          f"{copy_plan.recoveries} recoveries")
            return

        self.segment_finish[(key, attempt.segment)] = entry.end
        if copy_plan.uses_checkpointing \
                and attempt.segment < copy_plan.segments:
            self._log(entry.end, DesEventKind.CHECKPOINT,
                      f"{attempt.label()} segment {attempt.segment}")
        if attempt.segment == copy_plan.segments \
                and key not in self.completion:
            self.completion[key] = entry.end
            self._log(entry.end, DesEventKind.COMPLETE,
                      attempt.label())
            for message in self.app.outputs_of(attempt.process):
                slot = self.delivered.setdefault(message.name, {})
                if node not in slot or entry.end < slot[node]:
                    slot[node] = entry.end

    # -- bus ----------------------------------------------------------------

    def _activate_message(self, entry: TableEntry) -> None:
        message = self.app.message(entry.message)
        sender_node = self.mapping.node_of(message.src,
                                           entry.producer_copy)
        if not self._guard_observed(entry, sender_node):
            return
        if (message.src, entry.producer_copy) not in self.completion:
            return  # fail-silent producer: the reserved slots idle
        self.fired.append(entry)
        arrival = self._transmit(entry, sender_node,
                                 f"{entry.message}")
        self.queue.push(arrival, P_DELIVER,
                        ("deliver-msg", entry, arrival))

    def _activate_broadcast(self, entry: TableEntry) -> None:
        attempt = entry.attempt
        sender_node = self.mapping.node_of(attempt.process, attempt.copy)
        if not self._guard_observed(entry, sender_node):
            return
        observed = self.known.get((attempt, sender_node))
        if observed is None or fgt(observed[0], entry.start):
            return  # nothing detected yet: nothing to broadcast
        self.fired.append(entry)
        arrival = self._transmit(entry, sender_node,
                                 f"F[{attempt.label()}]")
        self.queue.push(arrival, P_DELIVER,
                        ("deliver-bcast", entry, arrival, observed[1]))

    def _transmit(self, entry: TableEntry, sender_node: str,
                  what: str) -> float:
        """Send the entry's frames; lost ones are retransmitted in the
        sender's next free, uncorrupted slot occurrences. Returns the
        arrival time of the complete payload."""
        if not entry.frames:
            return entry.end
        lost = 0
        arrival = entry.frames[-1].end
        for frame in entry.frames:
            key = (frame.round_index, frame.slot_index)
            coords = f"r{frame.round_index}s{frame.slot_index}"
            if key in self.corrupted:
                lost += 1
                self._log(frame.start, DesEventKind.FRAME_LOST,
                          f"{what} {coords}")
            else:
                self._log(frame.start, DesEventKind.FRAME_SENT,
                          f"{what} {coords}")
        if lost == 0:
            # Undisturbed transmission: arrive exactly when the table
            # says (``entry.end``), bit-compatible with replay.
            return entry.end
        for window in self.bus.owner_slot_occurrences(
                sender_node, entry.frames[-1].end):
            key = (window.round_index, window.slot_index)
            if key in self.reserved:
                continue
            self.reserved.add(key)
            coords = f"r{window.round_index}s{window.slot_index}"
            if key in self.corrupted:
                self._log(window.start, DesEventKind.FRAME_LOST,
                          f"{what} {coords} (retransmit)")
                continue
            self._log(window.start, DesEventKind.FRAME_SENT,
                      f"{what} {coords} (retransmit)")
            lost -= 1
            arrival = window.end
            if lost == 0:
                break
        return arrival

    def _deliver_message(self, entry: TableEntry, arrival: float) -> None:
        self._log(arrival, DesEventKind.MESSAGE_DELIVERED,
                  f"{entry.message} (copy {entry.producer_copy})")
        slot = self.delivered.setdefault(entry.message, {})
        for node in self.arch.node_names:
            if node not in slot or arrival < slot[node]:
                slot[node] = arrival

    def _deliver_broadcast(self, entry: TableEntry, arrival: float,
                           faulty: bool) -> None:
        attempt = entry.attempt
        value = "fault" if faulty else "ok"
        self._log(arrival, DesEventKind.BROADCAST_DELIVERED,
                  f"F[{attempt.label()}]={value}")
        for node in self.arch.node_names:
            self._learn(attempt, node, arrival, faulty)

    # -- completion ---------------------------------------------------------

    def _finish(self) -> SimulationResult:
        errors = self.errors
        completed: dict[str, float] = {}
        for process in self.app.processes:
            finishes = [
                self.completion[(process.name, c)]
                for c in range(len(self.policies.of(process.name).copies))
                if (process.name, c) in self.completion
            ]
            if not finishes:
                errors.append(f"process {process.name!r} never completed "
                              f"(plan: {self.plan.describe()})")
                continue
            completed[process.name] = min(finishes)
            if process.deadline is not None and \
                    fgt(completed[process.name], process.deadline):
                errors.append(
                    f"process {process.name!r} missed local deadline "
                    f"{process.deadline} (finished "
                    f"{completed[process.name]})")
        makespan = max(completed.values()) if completed else float("inf")
        if fgt(makespan, self.app.deadline):
            errors.append(
                f"global deadline {self.app.deadline} missed (makespan "
                f"{makespan}, plan {self.plan.describe()})")
        return SimulationResult(
            plan=self.plan,
            completed=completed,
            makespan=makespan,
            errors=errors,
            fired_entries=tuple(self.fired),
        )
