"""The deterministic event queue at the heart of the DES.

A Nessi-style scheduler: a binary heap over ``(time, priority, seq,
payload)`` tuples. ``seq`` is a monotone insertion counter, so the
heap order is total and insertion order is the *last-resort*
tie-break — two events at the same time and priority pop in the order
they were pushed, never in an order the heap's internal layout happens
to produce.

Tie-breaking law (the part that makes the DES replay-compatible):
events are popped in *eps-clusters*. Starts that differ only by float
rounding must execute in the same order on every platform, so the
queue groups pending times with the anchored-run clustering of
:func:`repro.utils.mathutils.eps_cluster_ids` — the exact rule the
table-replay simulator uses for its start ordering — and re-sorts each
cluster by ``(priority, seq)``. Within one cluster, priority therefore
beats raw time; across clusters, time wins.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator

from repro.utils.mathutils import TIME_EPS, eps_cluster_ids

#: One scheduled event: ``(time, priority, seq, payload)``.
QueuedEvent = tuple[float, int, int, Any]


class EventQueue:
    """Deterministic priority queue of timed events.

    ``push`` is O(log n); ``pop_cluster`` removes and returns the next
    anchored eps-cluster of events, ordered by ``(priority, seq)``.
    The clustering is *anchored*: a cluster holds the run of pending
    times within ``eps`` of its earliest member, so no cluster is ever
    wider than ``eps`` (chained clustering could merge arbitrarily
    long runs of eps-spaced events).
    """

    def __init__(self, eps: float = TIME_EPS) -> None:
        self._eps = eps
        self._heap: list[QueuedEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def eps(self) -> float:
        """The clustering tolerance."""
        return self._eps

    def push(self, time: float, priority: int, payload: Any) -> int:
        """Schedule one event; returns its monotone sequence number."""
        seq = next(self._seq)
        heapq.heappush(self._heap, (time, priority, seq, payload))
        return seq

    def peek_time(self) -> float:
        """Earliest pending time (the next cluster's anchor)."""
        if not self._heap:
            raise IndexError("peek_time() on an empty EventQueue")
        return self._heap[0][0]

    def pop_cluster(self) -> list[QueuedEvent]:
        """Remove and return the next anchored eps-cluster.

        The heap yields events in nondecreasing time, so repeatedly
        draining "everything within ``eps`` of the earliest pending
        time" visits exactly the anchored runs
        :func:`~repro.utils.mathutils.eps_cluster_ids` would assign —
        the batch below is always that function's group 0. Within the
        cluster, events are ordered by ``(priority, seq)``: priority
        beats sub-eps time jitter, and insertion order breaks the
        remaining ties.
        """
        if not self._heap:
            raise IndexError("pop_cluster() on an empty EventQueue")
        batch = [heapq.heappop(self._heap)]
        while self._heap and self._heap[0][0] - batch[0][0] <= self._eps:
            batch.append(heapq.heappop(self._heap))
        groups = eps_cluster_ids([event[0] for event in batch], self._eps)
        cluster = [event for event, group in zip(batch, groups)
                   if group == 0]
        for event, group in zip(batch, groups):
            if group != 0:  # pragma: no cover - batch stops at eps
                heapq.heappush(self._heap, event)
        cluster.sort(key=lambda event: (event[1], event[2]))
        return cluster

    def drain(self) -> Iterator[QueuedEvent]:
        """Yield every pending event in cluster-resolved order.

        Equivalent to repeated :meth:`pop_cluster`; with no pushes
        in between, the visited clusters are exactly the anchored runs
        of the full sorted time sequence — i.e. the same grouping the
        table-replay simulator's ``_replay_order`` computes with
        :func:`~repro.utils.mathutils.eps_cluster_ids` over all starts
        at once.
        """
        while self._heap:
            yield from self.pop_cluster()
