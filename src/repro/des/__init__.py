"""Event-driven simulator core (DES) — see docs/des.md.

A Nessi-style discrete-event engine over the conditional schedule
tables. On every scenario the table-replay simulator
(:mod:`repro.runtime.simulator`) can express, :class:`DesSimulator`
is **bit-identical** to it — the queue-ordered replay drives the same
shared handlers, and the differential-oracle suite enforces full
result equality. On top of that shared core, the DES executes the
scenario axes table replay cannot: intermittent fault windows,
corrupted TDMA slot occurrences (with dynamic retransmission), and
per-process release jitter
(:class:`~repro.ftcpg.scenarios.DesFaultPlan`).

* :mod:`repro.des.queue` — the deterministic event queue
  (``(time, priority, seq)`` heap with anchored eps-clustering);
* :mod:`repro.des.events` — the logged event vocabulary and the
  golden-trace rendering;
* :mod:`repro.des.core` — :class:`DesSimulator`, the table-expressible
  path and the ``REPRO_DES`` escape hatch;
* :mod:`repro.des.online` — forward execution of DES-only scenarios.
"""

from repro.des.core import DesRun, DesSimulator, des_default, simulate_des
from repro.des.events import DesEvent, DesEventKind, render_trace
from repro.des.online import OnlineEngine
from repro.des.queue import EventQueue

__all__ = [
    "DesEvent",
    "DesEventKind",
    "DesRun",
    "DesSimulator",
    "EventQueue",
    "OnlineEngine",
    "des_default",
    "render_trace",
    "simulate_des",
]
