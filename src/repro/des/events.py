"""Event vocabulary of the DES and its rendered trace format.

Every observable action of a simulated run — process attempts
starting and finishing, checkpoint saves, bus frames, message and
condition deliveries, fault windows switching on and off — is recorded
as a :class:`DesEvent`. The ordered event log is the artifact the
golden-trace tests pin: it must be byte-stable across runs, platforms
and Python versions, so the rendering below uses fixed-width fields
and :func:`format_time`'s grid-snapped numbers only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.mathutils import feq


class DesEventKind(enum.Enum):
    """What a logged DES event records."""

    #: An execution attempt starts on its node.
    ATTEMPT_START = "start"
    #: An execution attempt finishes; the label carries the outcome.
    ATTEMPT_FINISH = "finish"
    #: A checkpoint is saved at a successful segment end.
    CHECKPOINT = "checkpoint"
    #: A copy exhausted its recoveries and goes fail-silent.
    COPY_DEAD = "dead"
    #: A copy completed its last segment successfully.
    COMPLETE = "complete"
    #: One frame goes out in a TDMA slot occurrence.
    FRAME_SENT = "frame"
    #: One frame hit a corrupted slot occurrence and is lost.
    FRAME_LOST = "lost"
    #: A message's last frame arrived; data visible on all nodes.
    MESSAGE_DELIVERED = "deliver"
    #: A condition broadcast arrived; value known on all nodes.
    BROADCAST_DELIVERED = "broadcast"
    #: An intermittent fault window becomes active on a node.
    FAULT_ON = "fault-on"
    #: An intermittent fault window clears.
    FAULT_OFF = "fault-off"
    #: A process release is delayed by jitter.
    JITTER = "jitter"


@dataclass(frozen=True)
class DesEvent:
    """One logged simulation event.

    ``time`` is the simulated time the event took effect, ``label``
    a stable human-readable detail string (attempt labels, slot
    coordinates, outcomes). Events compare by field equality, so
    golden tests can also diff structured logs, not just text.
    """

    time: float
    kind: DesEventKind
    label: str

    def render(self) -> str:
        """One fixed-width trace line, e.g. ``@  44 start  P2/1.1``."""
        return f"@{format_time(self.time):>10} {self.kind.value:<10} " \
               f"{self.label}"


def format_time(value: float) -> str:
    """Stable rendering of a schedule time.

    Integers render bare, everything else with three decimals — enough
    to distinguish any two times farther apart than the clustering
    tolerance never splits, while absorbing sub-eps float jitter that
    would otherwise churn golden traces.
    """
    if feq(value, round(value)):
        return str(int(round(value)))
    return f"{value:.3f}"


def render_trace(events: tuple[DesEvent, ...] | list[DesEvent]) -> str:
    """Render an ordered event log as the golden-trace text block."""
    return "\n".join(event.render() for event in events) + "\n"
