"""Interned, fingerprinted problem contexts.

Every evaluation-layer cache answers questions about one *problem*:
a fixed application graph, architecture, fault model and priority
assignment. The legacy :class:`~repro.schedule.estimation_cache.
EstimationCache` expressed that binding ad hoc — it latched the first
``(app, arch, priorities)`` it saw and raised on object-identity
mismatches. :class:`ScheduleProblem` replaces that with a canonical,
hashable **fingerprint** of the problem content: two structurally
identical workloads produce the same fingerprint regardless of object
identity or construction order, and :meth:`ScheduleProblem.for_workload`
interns instances so equal problems share one object (and therefore
one :class:`~repro.eval.core.Evaluator` per pool).
"""

from __future__ import annotations

import weakref
from collections.abc import Mapping

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.schedule.priorities import partial_critical_path_priorities

Fingerprint = tuple


def problem_fingerprint(app: Application, arch: Architecture,
                        fault_model: FaultModel,
                        priorities: Mapping[str, float]) -> Fingerprint:
    """Canonical, hashable identity of one evaluation problem.

    Captures everything the estimator and the exact conditional
    scheduler read from the fixed context: the full process table
    (WCETs, overheads, releases, deadlines, mapping restrictions), the
    message graph, the global deadline, the TDMA bus parameters, the
    fault model and the priority values. Insertion order of the
    priority mapping is normalized away.
    """
    processes = tuple(
        (p.name, tuple(sorted(p.wcet.items())), p.alpha, p.mu, p.chi,
         p.release, p.deadline, p.fixed_node)
        for p in app.processes)
    messages = tuple((m.name, m.src, m.dst, m.size_bytes)
                     for m in app.messages)
    bus = arch.bus
    return (
        ("app", app.name, app.deadline, app.period, processes,
         messages),
        ("arch", arch.name, arch.node_names, bus.slot_order,
         bus.slot_length, bus.slot_payload_bytes),
        ("faults", fault_model.k, fault_model.condition_size_bytes),
        ("priorities", tuple(sorted(priorities.items()))),
    )


def workload_fingerprint(app: Application,
                         arch: Architecture) -> Fingerprint:
    """The (application, architecture) part of the problem identity.

    Used by the deprecated cache shim to reproduce its historical
    one-workload binding errors without relying on object identity.
    """
    return problem_fingerprint(app, arch, FaultModel(k=0), {})[:2]


#: Interning table: fingerprint -> live ScheduleProblem. Weak values,
#: so finished sweeps do not pin their workloads in memory.
_INTERNED: "weakref.WeakValueDictionary[Fingerprint, ScheduleProblem]"
_INTERNED = weakref.WeakValueDictionary()


class ScheduleProblem:
    """One immutable evaluation context.

    Instances are normally obtained through :meth:`for_workload`,
    which computes default PCP priorities, fingerprints the content
    and interns the result — equal problems compare (and hash) equal
    and usually *are* the same object.

    >>> from repro.model import FaultModel
    >>> from repro.workloads import fig3_example
    >>> app, arch = fig3_example()
    >>> problem = ScheduleProblem.for_workload(app, arch,
    ...                                        FaultModel(k=2))
    >>> problem is ScheduleProblem.for_workload(app, arch,
    ...                                         FaultModel(k=2))
    True
    >>> problem == ScheduleProblem.for_workload(app, arch,
    ...                                         FaultModel(k=1))
    False
    """

    __slots__ = ("app", "arch", "fault_model", "priorities",
                 "fingerprint", "__weakref__")

    def __init__(self, app: Application, arch: Architecture,
                 fault_model: FaultModel,
                 priorities: dict[str, float],
                 fingerprint: Fingerprint) -> None:
        self.app = app
        self.arch = arch
        self.fault_model = fault_model
        self.priorities = priorities
        self.fingerprint = fingerprint

    @classmethod
    def for_workload(cls, app: Application, arch: Architecture,
                     fault_model: FaultModel, *,
                     priorities: Mapping[str, float] | None = None,
                     intern: bool = True) -> "ScheduleProblem":
        """Build (or fetch the interned) problem for a workload.

        ``priorities=None`` selects the default partial-critical-path
        priorities — the same values every search and scheduler
        computes, so explicitly-passed PCP maps and the default land
        on the same fingerprint.
        """
        if priorities is None:
            priorities = partial_critical_path_priorities(app, arch)
        else:
            priorities = dict(priorities)
        fingerprint = problem_fingerprint(app, arch, fault_model,
                                          priorities)
        if intern:
            existing = _INTERNED.get(fingerprint)
            if existing is not None:
                return existing
        problem = cls(app, arch, fault_model, priorities, fingerprint)
        if intern:
            _INTERNED[fingerprint] = problem
        return problem

    @property
    def k(self) -> int:
        """The fault budget of this problem."""
        return self.fault_model.k

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleProblem):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleProblem({self.app.name!r}, "
                f"{self.arch.name!r}, k={self.k}, "
                f"{len(self.app)} processes)")
