"""repro.eval — the unified incremental evaluation core.

One layer answers every "how good is this candidate?" question in the
synthesis flow:

* :class:`ScheduleProblem` interns the fixed context (application,
  architecture, fault model, PCP priorities) behind a canonical
  fingerprint;
* :class:`Evaluator` is the per-problem facade with a tiered cache —
  slack-sharing estimates (with **incremental** single-move
  re-evaluation via
  :class:`~repro.schedule.estimation.EstimatorState`), exact
  conditional schedules, and derived design metrics;
* :class:`EvaluatorPool` hands out evaluators per problem and is what
  sweep cells share across strategies and fault budgets.

The tabu engine (:mod:`repro.synthesis.tabu`), the policy-refinement
sweep and checkpoint descent (:mod:`repro.synthesis`), the Pareto
explorer (:mod:`repro.dse`) and the fault-injection campaigns
(:mod:`repro.campaigns`) are all wired through this layer; the legacy
:class:`~repro.schedule.estimation_cache.EstimationCache` survives
only as a deprecated shim over it.
"""

from repro.eval.core import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_MAX_SCHEDULES,
    CacheStats,
    DesignEvaluation,
    Evaluator,
    EvaluatorPool,
    EvaluatorStats,
    incremental_default,
)
from repro.eval.diskcache import (
    CACHE_DIR_ENV,
    DiskCache,
    DiskCacheStats,
    cache_dir_default,
)
from repro.eval.problem import (
    ScheduleProblem,
    problem_fingerprint,
    workload_fingerprint,
)
from repro.schedule.estimation import EstimatorState, solution_fingerprint

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_SCHEDULES",
    "CacheStats",
    "DesignEvaluation",
    "DiskCache",
    "DiskCacheStats",
    "EstimatorState",
    "Evaluator",
    "EvaluatorPool",
    "EvaluatorStats",
    "ScheduleProblem",
    "cache_dir_default",
    "incremental_default",
    "problem_fingerprint",
    "solution_fingerprint",
    "workload_fingerprint",
]
