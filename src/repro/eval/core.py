"""The unified evaluation core: one tiered cache per problem.

:class:`Evaluator` is the single facade every consumer of candidate
evaluation goes through — the tabu engine, the policy-refinement
sweep, the global checkpoint-count descent, the Pareto explorer and
the fault-injection campaigns. It is bound to one
:class:`~repro.eval.problem.ScheduleProblem` and stacks three caches,
cheapest to most expensive:

1. **estimates** — the slack-sharing schedule-length estimate, keyed
   by solution fingerprint; cached entries are full
   :class:`~repro.schedule.estimation.EstimatorState` objects, so a
   cached parent can seed *incremental* re-evaluation of its one-move
   neighbors (:meth:`Evaluator.estimate_move`);
2. **schedules** — the exact conditional schedule tables
   (:func:`~repro.schedule.conditional.synthesize_schedule`), keyed by
   solution + transparency;
3. **designs** — the derived design metrics bundle
   (:class:`DesignEvaluation`) on top of an exact schedule.

Caching never changes results: every tier memoizes a pure function of
its key, and the incremental estimate path is bit-identical to the
full recompute (enforced by tests and
``benchmarks/bench_incremental_eval.py``). Setting
``incremental=False`` (or the ``REPRO_EVAL_INCREMENTAL=0``
environment variable) forces full recomputes — the oracle mode the
identity tests compare against.

:class:`EvaluatorPool` hands out one :class:`Evaluator` per problem
fingerprint — the object a sweep cell shares across the NFT baseline
(``k = 0``) and all strategies (``k > 0``) of one workload.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.eval.diskcache import DiskCache, cache_dir_default
from repro.eval.problem import Fingerprint, ScheduleProblem
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.model.transparency import Transparency
from repro.policies.types import PolicyAssignment
from repro.schedule.conditional import (
    DEFAULT_MAX_CONTEXTS,
    synthesize_schedule,
)
from repro.schedule.estimation import (
    EstimatorState,
    FtEstimate,
    solution_fingerprint,
)
from repro.schedule.estimation_cache import CacheStats
from repro.schedule.metrics import (
    FtMemoryOverhead,
    ScheduleMetrics,
    ft_memory_overhead,
    schedule_metrics,
    transparency_degree,
)
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import ScheduleSet

#: Default bound on retained estimator states (LRU beyond this).
#: Entries carry the full replay trace (a few KB each at paper
#: scale), not just an estimate, so the bound is sized to the working
#: set of the largest paper-profile sweep cell rather than the old
#: estimate-only cache's 100k.
DEFAULT_MAX_ENTRIES = 50_000

#: Exact schedules and design bundles are orders of magnitude larger
#: than estimates; their tiers get a correspondingly smaller bound.
DEFAULT_MAX_SCHEDULES = 512


def incremental_default() -> bool:
    """Process-wide default for the incremental estimate path.

    ``REPRO_EVAL_INCREMENTAL=0`` (or ``false``/``off``/``no``) forces
    full re-evaluation everywhere — the oracle mode used by the
    identity tests and the benchmark baseline. The variable is read
    per :class:`Evaluator` construction, so worker processes inherit
    the choice through their environment.
    """
    value = os.environ.get("REPRO_EVAL_INCREMENTAL", "1")
    return value.strip().lower() not in ("0", "false", "off", "no")


_EMPTY_STATS = CacheStats(hits=0, misses=0, entries=0)


@dataclass(frozen=True)
class EvaluatorStats:
    """Per-tier cache statistics of one evaluator (or one pool)."""

    estimates: CacheStats
    schedules: CacheStats
    designs: CacheStats

    @classmethod
    def merged(cls, parts: Iterable["EvaluatorStats"],
               ) -> "EvaluatorStats":
        """Counter-wise sum over evaluators."""
        estimates = schedules = designs = _EMPTY_STATS
        for part in parts:
            estimates = estimates.merged(part.estimates)
            schedules = schedules.merged(part.schedules)
            designs = designs.merged(part.designs)
        return cls(estimates=estimates, schedules=schedules,
                   designs=designs)


@dataclass(frozen=True)
class DesignEvaluation:
    """Tier-3 bundle: one design evaluated exactly, with metrics."""

    schedule: ScheduleSet
    metrics: ScheduleMetrics
    memory: FtMemoryOverhead
    transparency_degree: float

    @property
    def worst_case_length(self) -> float:
        """Certified worst case over all fault scenarios."""
        return self.schedule.worst_case_length

    @property
    def fault_free_length(self) -> float:
        """Length of the no-fault trace."""
        return self.schedule.fault_free_length

    @property
    def meets_deadline(self) -> bool:
        """True when the certified worst case fits the deadline."""
        return bool(self.schedule.meets_deadline)


class _LruTier:
    """One bounded LRU cache tier with hit/miss counters."""

    __slots__ = ("_entries", "_max_entries", "hits", "misses")

    def __init__(self, max_entries: int | None) -> None:
        self._entries: OrderedDict = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, key):
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            self._entries.move_to_end(key)
        else:
            self.misses += 1
        return value

    def put(self, key, value) -> None:
        self._entries[key] = value
        if (self._max_entries is not None
                and len(self._entries) > self._max_entries):
            self._entries.popitem(last=False)

    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses,
                          entries=len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


def _transparency_key(transparency: Transparency | None) -> tuple:
    if transparency is None:
        return ()
    return (tuple(sorted(transparency.frozen_processes)),
            tuple(sorted(transparency.frozen_messages)))


class Evaluator:
    """Tiered, incremental candidate evaluation for one problem.

    All methods are pure lookups/computations over the bound
    :class:`ScheduleProblem`; repeated keys return the *same* result
    objects (identity reuse is what keeps cached searches
    bit-identical to uncached ones).
    """

    def __init__(self, problem: ScheduleProblem, *,
                 max_entries: int | None = DEFAULT_MAX_ENTRIES,
                 max_schedules: int | None = DEFAULT_MAX_SCHEDULES,
                 incremental: bool | None = None,
                 disk: DiskCache | None = None) -> None:
        self._problem = problem
        self._estimates = _LruTier(max_entries)
        self._schedules = _LruTier(max_schedules)
        self._designs = _LruTier(max_schedules)
        if incremental is None:
            incremental = incremental_default()
        self._incremental = incremental
        self._disk = disk
        self._disk_problem = (disk.problem_key(problem.fingerprint)
                              if disk is not None else None)

    # The disk tier sits strictly *behind* the in-memory tiers: a
    # probe happens only after a memory miss was counted, and a hit
    # stores exactly what the compute path would have produced — so
    # enabling it changes no result and no in-memory counter.

    def _disk_get(self, tier: str, key):
        if self._disk is None:
            return None
        return self._disk.get(self._disk_problem, tier, key)

    def _disk_put(self, tier: str, key, value) -> None:
        if self._disk is not None:
            self._disk.put(self._disk_problem, tier, key, value)

    @property
    def problem(self) -> ScheduleProblem:
        """The bound problem context."""
        return self._problem

    @property
    def incremental(self) -> bool:
        """Whether estimate_move uses delta re-evaluation."""
        return self._incremental

    # -- tier 1: slack-sharing estimates --------------------------------------

    def estimate_state(self, policies: PolicyAssignment,
                       mapping: CopyMapping, *,
                       bus_contention: bool = True,
                       slack_sharing: str = "max") -> EstimatorState:
        """Cached full evaluation of one solution."""
        key = (bus_contention, slack_sharing,
               solution_fingerprint(policies, mapping))
        state = self._estimates.get(key)
        if state is None:
            state = self._disk_get("estimates", key)
            if state is None:
                state = EstimatorState.compute(
                    self._problem.app, self._problem.arch, mapping,
                    policies, self._problem.fault_model,
                    priorities=self._problem.priorities,
                    bus_contention=bus_contention,
                    slack_sharing=slack_sharing)
                self._disk_put("estimates", key, state)
            self._estimates.put(key, state)
        return state

    def estimate(self, policies: PolicyAssignment,
                 mapping: CopyMapping, *,
                 bus_contention: bool = True,
                 slack_sharing: str = "max") -> FtEstimate:
        """Cached drop-in for :func:`~repro.schedule.estimation.
        estimate_ft_schedule` on this problem."""
        return self.estimate_state(
            policies, mapping, bus_contention=bus_contention,
            slack_sharing=slack_sharing).estimate

    def estimate_move(self, parent: EstimatorState,
                      policies: PolicyAssignment,
                      mapping: CopyMapping,
                      changed: str) -> EstimatorState:
        """Evaluate a one-move neighbor of an evaluated solution.

        ``changed`` names the single process the move touched. Cache
        hit or not, the returned state is bit-identical to a full
        evaluation of the new solution; on a miss the incremental path
        replays the parent's trace prefix (unless disabled, in which
        case the oracle full recompute runs).
        """
        key = (parent.bus_contention, parent.slack_sharing,
               solution_fingerprint(policies, mapping))
        state = self._estimates.get(key)
        if state is None:
            state = self._disk_get("estimates", key)
            if state is None:
                if self._incremental:
                    state = parent.reevaluate(policies, mapping,
                                              changed)
                else:
                    state = EstimatorState.compute(
                        self._problem.app, self._problem.arch,
                        mapping, policies,
                        self._problem.fault_model,
                        priorities=self._problem.priorities,
                        bus_contention=parent.bus_contention,
                        slack_sharing=parent.slack_sharing)
                self._disk_put("estimates", key, state)
            self._estimates.put(key, state)
        return state

    # -- tier 2: exact conditional schedules ----------------------------------

    def exact_schedule(self, policies: PolicyAssignment,
                       mapping: CopyMapping,
                       transparency: Transparency | None = None, *,
                       max_contexts: int = DEFAULT_MAX_CONTEXTS,
                       ) -> ScheduleSet:
        """Cached exact conditional schedule tables of one design.

        Failures (context explosion, divergence) propagate and are
        never cached, so a retry with a larger budget recomputes.
        """
        key = (solution_fingerprint(policies, mapping),
               _transparency_key(transparency), max_contexts)
        schedule = self._schedules.get(key)
        if schedule is None:
            schedule = self._disk_get("schedules", key)
            if schedule is None:
                schedule = synthesize_schedule(
                    self._problem.app, self._problem.arch, mapping,
                    policies, self._problem.fault_model, transparency,
                    priorities=self._problem.priorities,
                    max_contexts=max_contexts)
                self._disk_put("schedules", key, schedule)
            self._schedules.put(key, schedule)
        return schedule

    # -- tier 3: design metrics -----------------------------------------------

    def evaluate_design(self, policies: PolicyAssignment,
                        mapping: CopyMapping,
                        transparency: Transparency | None = None, *,
                        max_contexts: int = DEFAULT_MAX_CONTEXTS,
                        ) -> DesignEvaluation:
        """Cached exact evaluation plus derived design metrics."""
        key = (solution_fingerprint(policies, mapping),
               _transparency_key(transparency), max_contexts)
        design = self._designs.get(key)
        if design is None:
            # No disk tier here: a disk hit would skip the nested
            # exact_schedule() lookup and its miss counter, making a
            # warm run observably different from a cold one. The
            # expensive part (the conditional tables) is disk-cached
            # one tier down; the derived metrics are cheap.
            schedule = self.exact_schedule(
                policies, mapping, transparency,
                max_contexts=max_contexts)
            app = self._problem.app
            design = DesignEvaluation(
                schedule=schedule,
                metrics=schedule_metrics(schedule),
                memory=ft_memory_overhead(app, policies),
                transparency_degree=transparency_degree(
                    app, transparency if transparency is not None
                    else Transparency.none()),
            )
            self._designs.put(key, design)
        return design

    # -- bookkeeping ----------------------------------------------------------

    def stats(self) -> EvaluatorStats:
        """Snapshot of all tier counters."""
        return EvaluatorStats(estimates=self._estimates.stats(),
                              schedules=self._schedules.stats(),
                              designs=self._designs.stats())

    def clear(self) -> None:
        """Drop all entries and counters of every tier."""
        self._estimates.clear()
        self._schedules.clear()
        self._designs.clear()

    def __len__(self) -> int:
        return (len(self._estimates) + len(self._schedules)
                + len(self._designs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (f"Evaluator({self._problem!r}, "
                f"estimates {stats.estimates.hits}/"
                f"{stats.estimates.lookups}, "
                f"schedules {stats.schedules.hits}/"
                f"{stats.schedules.lookups})")


class EvaluatorPool:
    """A family of evaluators, one per problem fingerprint.

    The pool is the unit a sweep cell shares: one workload evaluated
    under several fault budgets (the ``k = 0`` NFT baseline plus the
    strategy's ``k``) or several strategies lands on the same handful
    of evaluators. Unlike the deprecated
    :class:`~repro.schedule.estimation_cache.EstimationCache` it never
    binds to a first workload — problems are told apart by content,
    so mixing workloads through one pool is safe by construction.

    ``cache_dir`` attaches a persistent :class:`~repro.eval.diskcache.
    DiskCache` shared by all evaluators, so sweeps warm-start across
    runs. The default comes from the ``REPRO_EVAL_CACHE_DIR``
    environment variable (read at construction, so worker processes
    inherit it); pass ``cache_dir=None`` to force it off.
    """

    #: Sentinel: "use the environment-configured default".
    _ENV_DEFAULT = object()

    def __init__(self, *,
                 max_entries: int | None = DEFAULT_MAX_ENTRIES,
                 max_schedules: int | None = DEFAULT_MAX_SCHEDULES,
                 incremental: bool | None = None,
                 cache_dir: object = _ENV_DEFAULT) -> None:
        self._max_entries = max_entries
        self._max_schedules = max_schedules
        self._incremental = incremental
        if cache_dir is EvaluatorPool._ENV_DEFAULT:
            cache_dir = cache_dir_default()
        self._disk = (DiskCache(cache_dir)  # type: ignore[arg-type]
                      if cache_dir is not None else None)
        self._evaluators: dict[Fingerprint, Evaluator] = {}

    @property
    def disk_cache(self) -> DiskCache | None:
        """The attached persistent cache, when enabled."""
        return self._disk

    def evaluator_for(self, app: Application, arch: Architecture,
                      fault_model: FaultModel, *,
                      priorities: Mapping[str, float] | None = None,
                      ) -> Evaluator:
        """The pool's evaluator for one problem (created on demand)."""
        problem = ScheduleProblem.for_workload(
            app, arch, fault_model, priorities=priorities)
        evaluator = self._evaluators.get(problem.fingerprint)
        if evaluator is None:
            evaluator = Evaluator(
                problem, max_entries=self._max_entries,
                max_schedules=self._max_schedules,
                incremental=self._incremental,
                disk=self._disk)
            self._evaluators[problem.fingerprint] = evaluator
        return evaluator

    @property
    def evaluators(self) -> tuple[Evaluator, ...]:
        """All evaluators handed out so far."""
        return tuple(self._evaluators.values())

    def stats(self) -> EvaluatorStats:
        """Counter-wise sum over all evaluators."""
        return EvaluatorStats.merged(
            e.stats() for e in self._evaluators.values())

    def clear(self) -> None:
        """Drop every evaluator (and its entries)."""
        self._evaluators.clear()

    def __len__(self) -> int:
        return sum(len(e) for e in self._evaluators.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EvaluatorPool({len(self._evaluators)} evaluator(s), "
                f"{len(self)} entries)")
