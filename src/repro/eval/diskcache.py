"""Disk-backed persistent evaluation cache.

The in-memory tiers of :class:`~repro.eval.core.Evaluator` die with
the process; this cache lets an :class:`~repro.eval.core.
EvaluatorPool` spill evaluated entries to disk and warm-start from
them, so repeated dse/campaign/verify sweeps over shared workloads
skip already-evaluated cells across runs (and across worker
processes sharing one filesystem).

Layout — content-addressed, one file per entry::

    <cache-dir>/
        v<format>-<package version>/       # invalidation namespace
            <problem key>/                 # sha256 of the problem
                                           # fingerprint (workload,
                                           # fault model, priorities)
                estimates/<aa>/<sha256 of the tier key>.pkl
                schedules/<aa>/<...>.pkl

The tier key is the exact in-memory cache key (solution fingerprint
plus evaluation config such as bus contention and slack sharing), so
a disk hit is keyed by precisely what determines the result. Entries
are pickled evaluation objects; loads are verified bit-identical to
recomputes by the tests. Only the *leaf* tiers (estimates, exact
schedules) spill to disk: caching a composite like
:class:`~repro.eval.core.DesignEvaluation` would let a disk hit skip
the nested schedule lookup and skew its miss counters, which sweep
cells report.

Invalidation is by namespace: the top-level directory embeds the
on-disk format *and* the package version, so upgrading the package
(or bumping :data:`CACHE_FORMAT` on semantic changes) simply stops
reading old entries — stale directories can be deleted at leisure.

Robustness over cleverness: writes go through a unique temp file and
``os.replace`` (concurrent writers of the same key both produce valid
entries, last one wins); unreadable or corrupt entries count as
misses and are recomputed and overwritten; I/O errors never fail an
evaluation — the cache degrades to a no-op and counts the error.

Because the disk lookup happens *after* an in-memory miss is counted
and stores exactly what the compute path would have produced, enabling
the cache changes no result and no in-memory counter — reports stay
byte-identical with and without it. Wiring is therefore out-of-band:
the ``REPRO_EVAL_CACHE_DIR`` environment variable (or the
``cache_dir`` pool argument) rather than job parameters.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro._version import __version__

#: Environment variable naming the cache directory; read per
#: :class:`~repro.eval.core.EvaluatorPool` construction, so worker
#: processes inherit the choice through their environment.
CACHE_DIR_ENV = "REPRO_EVAL_CACHE_DIR"

#: On-disk format version; bump when entry semantics change.
CACHE_FORMAT = 1


def cache_dir_default() -> str | None:
    """The environment-configured cache directory (None: disabled)."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return value or None


@dataclass
class DiskCacheStats:
    """Lookup/store counters of one :class:`DiskCache`."""

    hits: int = 0
    misses: int = 0
    stored: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        """Total disk probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from disk."""
        return self.hits / self.lookups if self.lookups else 0.0


class DiskCache:
    """One cache directory (see the module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.namespace = self.root / f"v{CACHE_FORMAT}-{__version__}"
        self.stats = DiskCacheStats()

    @staticmethod
    def _digest(value: object) -> str:
        return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()

    def problem_key(self, fingerprint: object) -> str:
        """Stable directory name for one problem fingerprint."""
        return self._digest(fingerprint)

    def _entry_path(self, problem_key: str, tier: str,
                    key: object) -> Path:
        digest = self._digest((CACHE_FORMAT, tier, key))
        return (self.namespace / problem_key / tier / digest[:2]
                / f"{digest}.pkl")

    def get(self, problem_key: str, tier: str, key: object):
        """The stored entry, or None (miss, corrupt, unreadable)."""
        path = self._entry_path(problem_key, tier, key)
        try:
            payload = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        # repro: allow[REP005] pickle raises arbitrary exception types
        # on corrupt bytes; degrading to a counted miss is the contract
        except Exception:
            # Corrupt entry (killed writer on a filesystem without
            # atomic replace, bit rot): a miss that will be recomputed
            # and overwritten.
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, problem_key: str, tier: str, key: object,
            value: object) -> None:
        """Store one entry atomically; I/O problems are swallowed."""
        try:
            payload = pickle.dumps(value,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        # repro: allow[REP005] pickle raises arbitrary exception types
        # on unpicklable values; the cache degrades to a counted error
        except Exception:
            self.stats.errors += 1
            return
        path = self._entry_path(problem_key, tier, key)
        tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError:
            self.stats.errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass  # a path component is not even a directory
            return
        self.stats.stored += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (f"DiskCache({str(self.root)!r}, {s.hits} hit(s), "
                f"{s.misses} miss(es), {s.stored} stored)")
