"""Copy-level mapping ``M`` (paper §4 and §6).

The paper's mapping function assigns processes *and their replicas* to
computation nodes; here every placed copy ``(process, copy_index)`` is
mapped individually. Copy 0 is the original process; the replicas of
``VR`` are copies ``1..Q``.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import MappingError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.policies.types import PolicyAssignment

CopyKey = tuple[str, int]


class CopyMapping:
    """An immutable mapping of process copies to node names."""

    __slots__ = ("_assignments",)

    def __init__(self, assignments: Mapping[CopyKey, str]) -> None:
        self._assignments = dict(assignments)

    @classmethod
    def from_process_map(cls, process_to_node: Mapping[str, str],
                         policies: PolicyAssignment) -> "CopyMapping":
        """All copies of each process on one node (useful for tests and
        for policies without replication)."""
        assignments: dict[CopyKey, str] = {}
        for process, policy in policies.items():
            try:
                node = process_to_node[process]
            except KeyError:
                raise MappingError(
                    f"no node given for process {process!r}") from None
            for copy_index in range(len(policy.copies)):
                assignments[(process, copy_index)] = node
        return cls(assignments)

    def node_of(self, process: str, copy: int = 0) -> str:
        """Node a copy is mapped on."""
        try:
            return self._assignments[(process, copy)]
        except KeyError:
            raise MappingError(
                f"copy {copy} of process {process!r} is unmapped"
            ) from None

    def replaced(self, process: str, copy: int, node: str) -> "CopyMapping":
        """A new mapping with one copy moved."""
        if (process, copy) not in self._assignments:
            raise MappingError(
                f"copy {copy} of process {process!r} is unmapped")
        updated = dict(self._assignments)
        updated[(process, copy)] = node
        return CopyMapping(updated)

    def items(self) -> Iterator[tuple[CopyKey, str]]:
        """All (copy key, node) pairs."""
        return iter(self._assignments.items())

    def nodes_used(self) -> frozenset[str]:
        """Distinct nodes holding at least one copy."""
        return frozenset(self._assignments.values())

    def __contains__(self, key: CopyKey) -> bool:
        return key in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CopyMapping):
            return NotImplemented
        return self._assignments == other._assignments

    def __hash__(self) -> int:
        return hash(frozenset(self._assignments.items()))

    def validate(self, app: Application, arch: Architecture,
                 policies: PolicyAssignment) -> None:
        """Check completeness and per-copy mapping legality."""
        for process, policy in policies.items():
            proc = app.process(process)
            for copy_index in range(len(policy.copies)):
                key = (process, copy_index)
                if key not in self._assignments:
                    raise MappingError(
                        f"copy {copy_index} of {process!r} is unmapped")
                node = self._assignments[key]
                if node not in arch.node_names:
                    raise MappingError(
                        f"{process!r} copy {copy_index} mapped on unknown "
                        f"node {node!r}")
                if node not in proc.wcet:
                    raise MappingError(
                        f"{process!r} cannot execute on node {node!r} "
                        "(mapping restriction)")
                if proc.fixed_node is not None and copy_index == 0 \
                        and node != proc.fixed_node:
                    raise MappingError(
                        f"{process!r} is fixed on {proc.fixed_node!r} but "
                        f"mapped on {node!r}")
        extra = set(self._assignments) - {
            (p, c)
            for p, policy in policies.items()
            for c in range(len(policy.copies))
        }
        if extra:
            raise MappingError(f"mapping has stale entries: {sorted(extra)}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CopyMapping({len(self._assignments)} copies)"
