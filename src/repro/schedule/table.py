"""Conditional schedule tables (paper §5.2).

The output of the conditional scheduler is a set of entries, each
guarded by a conjunction of condition values. Grouped per node (plus
the bus) they form the schedule tables of paper Fig. 6: one row per
process/message/condition, one column per guard, activation times in
the cells. A distributed run-time scheduler stores its node's part and
activates entries whose guard matches the observed conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from collections.abc import Iterable

from repro.comm.tdma import FrameWindow
from repro.ftcpg.conditions import AttemptId, Guard
from repro.utils.mathutils import feq

#: Pseudo-location of bus entries.
BUS = "bus"


class EntryKind(enum.Enum):
    """What a table entry activates."""

    ATTEMPT = "attempt"
    MESSAGE = "message"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class TableEntry:
    """One activation in a schedule table.

    * ``ATTEMPT``: execution attempt ``attempt`` on node ``location``;
      ``duration`` includes the applicable χ/μ/α overheads and
      ``can_fail`` records whether error detection is part of it.
    * ``MESSAGE``: transmission of ``message`` produced by copy
      ``producer_copy``; ``frames`` are the reserved bus slots.
    * ``BROADCAST``: condition-value broadcast of ``attempt``.
    """

    kind: EntryKind
    location: str
    guard: Guard
    start: float
    duration: float
    attempt: AttemptId | None = None
    message: str | None = None
    producer_copy: int | None = None
    frames: tuple[FrameWindow, ...] = ()
    can_fail: bool = False

    @property
    def end(self) -> float:
        """End of the activation."""
        return self.start + self.duration

    def row_key(self) -> tuple:
        """Grouping key: all attempts of one copy share a process row,
        message instances share a message row, broadcasts have a row
        per condition (as in paper Fig. 6)."""
        if self.kind is EntryKind.ATTEMPT:
            return ("P", self.attempt.process, self.attempt.copy)
        if self.kind is EntryKind.MESSAGE:
            return ("M", self.message, self.producer_copy)
        return ("C", self.attempt)

    def cell_label(self) -> str:
        """Cell text, paper style: ``start (attempt-label)``."""
        if self.kind is EntryKind.ATTEMPT:
            return f"{_fmt(self.start)} ({self.attempt.label()})"
        return _fmt(self.start)


def _fmt(value: float) -> str:
    if feq(value, round(value)):
        return str(int(round(value)))
    return f"{value:.2f}"


@dataclass
class LeafScenario:
    """One fully-resolved fault scenario explored by the scheduler."""

    guard: Guard
    makespan: float

    @property
    def fault_count(self) -> int:
        """Observable faults in this scenario."""
        return self.guard.fault_count()


@dataclass
class ScheduleSet:
    """The complete set ``S`` of schedule tables (paper §6, step 4)."""

    entries: tuple[TableEntry, ...]
    leaves: tuple[LeafScenario, ...]
    worst_case_length: float
    fault_free_length: float
    deadline: float

    @property
    def meets_deadline(self) -> bool:
        """Worst case within the global deadline."""
        return self.worst_case_length <= self.deadline + 1e-9

    @property
    def scenario_count(self) -> int:
        """Number of distinct observable fault scenarios."""
        return len(self.leaves)

    def entries_on(self, location: str) -> tuple[TableEntry, ...]:
        """Entries of one node's table (or the bus), by start time."""
        selected = [e for e in self.entries if e.location == location]
        selected.sort(key=lambda e: (e.start, len(e.guard)))
        return tuple(selected)

    @property
    def locations(self) -> tuple[str, ...]:
        """All locations with entries (nodes first, then the bus)."""
        names = {e.location for e in self.entries}
        ordered = sorted(names - {BUS})
        if BUS in names:
            ordered.append(BUS)
        return tuple(ordered)

    def attempts_of(self, process: str) -> tuple[TableEntry, ...]:
        """All attempt entries of one process, by start time."""
        selected = [
            e for e in self.entries
            if e.kind is EntryKind.ATTEMPT and e.attempt.process == process
        ]
        selected.sort(key=lambda e: (e.start, len(e.guard)))
        return tuple(selected)

    def compressed(self) -> "ScheduleSet":
        """Merge sibling entries that do not depend on a condition.

        If two entries are identical except that one guard contains a
        literal and the other its negation, the condition does not
        influence the activation: both collapse into one entry without
        the literal (repeatedly, until a fixpoint). This yields the
        compact tables of paper Fig. 6.
        """
        entries = list(self.entries)
        changed = True
        while changed:
            changed = False
            by_shape: dict[tuple, list[int]] = {}
            for index, entry in enumerate(entries):
                shape = (entry.kind, entry.location, entry.attempt,
                         entry.message, entry.producer_copy,
                         round(entry.start, 6), round(entry.duration, 6),
                         entry.frames, entry.can_fail)
                by_shape.setdefault(shape, []).append(index)
            merged_out: set[int] = set()
            additions: list[TableEntry] = []
            for indices in by_shape.values():
                if len(indices) < 2:
                    continue
                result = _merge_guards(
                    [entries[i].guard for i in indices])
                if result is not None:
                    merged_out.update(indices)
                    for guard in result:
                        additions.append(
                            replace(entries[indices[0]], guard=guard))
                    changed = True
            if changed:
                entries = [e for i, e in enumerate(entries)
                           if i not in merged_out] + additions
        return ScheduleSet(
            entries=tuple(entries),
            leaves=self.leaves,
            worst_case_length=self.worst_case_length,
            fault_free_length=self.fault_free_length,
            deadline=self.deadline,
        )


def _merge_guards(guards: list[Guard]) -> list[Guard] | None:
    """One merging pass over a set of guards; returns the reduced set
    or ``None`` when nothing merges."""
    remaining = list(guards)
    merged_any = False
    changed = True
    while changed:
        changed = False
        for i in range(len(remaining)):
            for j in range(i + 1, len(remaining)):
                union = _complementary_pair(remaining[i], remaining[j])
                if union is not None:
                    rest = [g for idx, g in enumerate(remaining)
                            if idx not in (i, j)]
                    remaining = rest + [union]
                    merged_any = True
                    changed = True
                    break
            if changed:
                break
    return remaining if merged_any else None


def _complementary_pair(a: Guard, b: Guard) -> Guard | None:
    """If ``a`` and ``b`` differ in exactly one attempt with opposite
    values (all other literals equal), return the common guard."""
    lits_a = {lit.attempt: lit.faulty for lit in a.literals}
    lits_b = {lit.attempt: lit.faulty for lit in b.literals}
    if set(lits_a) != set(lits_b):
        return None
    differing = [att for att, val in lits_a.items() if lits_b[att] != val]
    if len(differing) != 1:
        return None
    target = differing[0]
    return Guard([lit for lit in a.literals if lit.attempt != target])


def merge_entries(groups: Iterable[Iterable[TableEntry]],
                  ) -> tuple[TableEntry, ...]:
    """Flatten entry groups into a deterministic tuple."""
    flat = [entry for group in groups for entry in group]
    flat.sort(key=lambda e: (e.location, e.start, len(e.guard),
                             str(e.guard)))
    return tuple(flat)
