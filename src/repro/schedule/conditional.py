"""Exact quasi-static conditional scheduling (paper §5).

The scheduler explores a **context tree**. A context is one partially
resolved fault scenario: the conjunction of condition values observed
so far (its guard), the per-copy progress, the processor and bus state.
Scheduling inside a context is deterministic (PCP priorities); when a
fault-prone attempt's detection point is reached, the context forks on
the condition value — the detection time is identical in both children
(the attempt runs to its error check either way), so the timeline
prefix is shared, exactly like the FT-CPG's conditional edges.

Every activation is recorded with the guard of the context that placed
it; because contexts fork lazily (nothing is placed at or after the
earliest pending detection time), each entry's guard is the set of
conditions actually known before its start — the compact columns of
paper Fig. 6.

**Runtime decidability.** An activation on node ``N`` guarded by ``G``
never starts before every condition in ``G`` is known on ``N``: a
condition is known at its detection time on the producing node and at
the arrival of its broadcast elsewhere. Broadcasts are scheduled on the
bus at the fork point, *before* any outcome-dependent traffic, so both
children inherit identical broadcast timing (a condition's value is
unknown in advance — its broadcast slot cannot depend on it).

**Transparency.** Frozen processes/messages must start at one single
time across all contexts. The scheduler runs a fixpoint: a collection
pass observes the latest start needed anywhere, pins every frozen item
there, and re-runs until no pin has to grow (§5.1's synchronization
nodes, operationally).

**Replication.** Replica faults are fail-silent and do not fork the
context: consumers are scheduled after *all* producer copies have
delivered, so whichever copies the faults kill, the inputs are present
(see DESIGN.md §2.5). Only recoverable attempts produce conditions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, replace
from collections.abc import Mapping

from repro.comm.reservations import BusReservations
from repro.comm.tdma import TdmaBus, Transmission
from repro.errors import ContextExplosionError, SchedulingError
from repro.ftcpg.conditions import AttemptId, ConditionLiteral, Guard
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.model.transparency import Transparency
from repro.policies.recovery import CopyExecution
from repro.policies.types import PolicyAssignment
from repro.schedule.mapping import CopyMapping
from repro.schedule.priorities import partial_critical_path_priorities
from repro.schedule.table import (
    BUS,
    EntryKind,
    LeafScenario,
    ScheduleSet,
    TableEntry,
)
from repro.utils.mathutils import TIME_EPS

CopyKey = tuple[str, int]

#: Default limit on explored contexts before giving up.
DEFAULT_MAX_CONTEXTS = 50_000
#: Maximum iterations of the frozen-pin fixpoint.
_MAX_FROZEN_PASSES = 30


@dataclass(frozen=True)
class _CopyState:
    """Progress of one copy inside a context (immutable: forks share)."""

    segment: int = 1
    attempt: int = 1
    local_faults: int = 0
    ready: float = 0.0
    status: str = "waiting"  # waiting | ready | running | done
    finish: float | None = None


@dataclass(frozen=True)
class _Knowledge:
    """Where and when a condition value becomes known."""

    node: str
    local_time: float
    remote_time: float


@dataclass(frozen=True)
class _Send:
    """A message instance waiting for a bus slot."""

    message: str
    producer_copy: int
    node: str
    ready: float
    size_bytes: int
    frozen: bool


class _Context:
    """Mutable scheduling state of one branch of the context tree."""

    __slots__ = ("guard", "budget_used", "states", "node_free", "bus",
                 "sends", "branches", "avail", "known", "done_count")

    def __init__(self, guard: Guard, budget_used: int,
                 states: dict[CopyKey, _CopyState],
                 node_free: dict[str, float], bus: BusReservations,
                 sends: list[_Send], branches: list, avail: dict,
                 known: dict[AttemptId, _Knowledge], done_count: int) -> None:
        self.guard = guard
        self.budget_used = budget_used
        self.states = states
        self.node_free = node_free
        self.bus = bus
        self.sends = sends
        self.branches = branches
        self.avail = avail
        self.known = known
        self.done_count = done_count

    def fork(self) -> "_Context":
        return _Context(
            guard=self.guard,
            budget_used=self.budget_used,
            states=dict(self.states),
            node_free=dict(self.node_free),
            bus=self.bus.fork(),
            sends=list(self.sends),
            branches=list(self.branches),
            avail=dict(self.avail),
            known=dict(self.known),
            done_count=self.done_count,
        )


class ConditionalScheduler:
    """Builds the conditional schedule tables for a fixed mapping and
    policy assignment."""

    def __init__(
        self,
        app: Application,
        arch: Architecture,
        mapping: CopyMapping,
        policies: PolicyAssignment,
        fault_model: FaultModel,
        transparency: Transparency | None = None,
        *,
        priorities: Mapping[str, float] | None = None,
        max_contexts: int = DEFAULT_MAX_CONTEXTS,
    ) -> None:
        self._app = app
        self._arch = arch
        self._mapping = mapping
        self._policies = policies
        self._k = fault_model.k
        self._cond_size = fault_model.condition_size_bytes
        self._transparency = transparency or Transparency.none()
        self._transparency.validate(app)
        mapping.validate(app, arch, policies)
        policies.validate(app, fault_model.k)
        self._priorities = dict(
            priorities if priorities is not None
            else partial_critical_path_priorities(app, arch))
        self._max_contexts = max_contexts
        self._bus = TdmaBus(arch.bus)
        self._multi_node = len(arch.node_names) > 1

        # Static copy info.
        self._copies: dict[CopyKey, CopyExecution] = {}
        self._copy_node: dict[CopyKey, str] = {}
        for process_name, policy in policies.items():
            process = app.process(process_name)
            for copy_index, plan in enumerate(policy.copies):
                key = (process_name, copy_index)
                node = mapping.node_of(process_name, copy_index)
                self._copy_node[key] = node
                self._copies[key] = CopyExecution(
                    wcet=process.wcet_on(node), plan=plan,
                    alpha=process.alpha, mu=process.mu, chi=process.chi)
        #: message name -> True if some consumer copy is on another node
        #: than some producer copy (then the bus carries it).
        self._needs_bus: dict[str, bool] = {}
        for message in app.messages:
            consumer_nodes = {
                self._copy_node[(message.dst, c)]
                for c in range(len(policies.of(message.dst).copies))
            }
            self._needs_bus[message.name] = any(
                consumer_nodes - {self._copy_node[(message.src, c)]}
                for c in range(len(policies.of(message.src).copies))
            )

        # Frozen pins, updated by the fixpoint driver.
        self._process_pins: dict[CopyKey, float] = {}
        self._message_pins: dict[tuple[str, int], float] = {}
        self._pinned_transmissions: dict[tuple[str, int], Transmission] = {}

        # Per-pass accumulators.
        self._entries: list[TableEntry] = []
        self._leaves: list[LeafScenario] = []
        self._contexts_explored = 0
        self._needed_process_pins: dict[CopyKey, float] = {}
        self._needed_message_pins: dict[tuple[str, int], float] = {}

    # -- public --------------------------------------------------------------

    def run(self) -> ScheduleSet:
        """Run the frozen fixpoint and return the schedule tables."""
        for _ in range(_MAX_FROZEN_PASSES):
            self._run_pass()
            if not self._grow_pins():
                break
        else:
            raise SchedulingError(
                "frozen start times did not stabilize within "
                f"{_MAX_FROZEN_PASSES} passes")
        ff_leaves = [leaf for leaf in self._leaves
                     if leaf.guard.fault_count() == 0]
        if len(ff_leaves) != 1:
            raise SchedulingError(
                f"expected exactly one fault-free scenario, got "
                f"{len(ff_leaves)}")
        return ScheduleSet(
            entries=tuple(sorted(
                self._entries,
                key=lambda e: (e.location, e.start, len(e.guard),
                               str(e.guard)))),
            leaves=tuple(self._leaves),
            worst_case_length=max(l.makespan for l in self._leaves),
            fault_free_length=ff_leaves[0].makespan,
            deadline=self._app.deadline,
        )

    # -- fixpoint driver -------------------------------------------------------

    def _grow_pins(self) -> bool:
        """Raise pins to the latest start observed; True if any grew."""
        grew = False
        for key, needed in self._needed_process_pins.items():
            if needed > self._process_pins.get(key, -1.0) + TIME_EPS:
                self._process_pins[key] = needed
                grew = True
        for key, needed in self._needed_message_pins.items():
            if needed > self._message_pins.get(key, -1.0) + TIME_EPS:
                self._message_pins[key] = needed
                grew = True
        return grew

    def _run_pass(self) -> None:
        self._entries = []
        self._leaves = []
        self._contexts_explored = 0
        self._needed_process_pins = {}
        self._needed_message_pins = {}
        root_bus = BusReservations()
        self._reserve_pinned_transmissions(root_bus)

        states: dict[CopyKey, _CopyState] = {}
        for key in self._copies:
            process = self._app.process(key[0])
            if not self._app.predecessors(key[0]):
                states[key] = _CopyState(status="ready",
                                         ready=process.release)
            else:
                states[key] = _CopyState(status="waiting")
        root = _Context(
            guard=Guard.TRUE,
            budget_used=0,
            states=states,
            node_free={n: 0.0 for n in self._arch.node_names},
            bus=root_bus,
            sends=[],
            branches=[],
            avail={},
            known={},
            done_count=0,
        )
        self._explore(root)

    def _reserve_pinned_transmissions(self, root_bus: BusReservations,
                                      ) -> None:
        """Pre-reserve the frames of frozen messages so every context
        transmits them in identical slots."""
        self._pinned_transmissions = {}
        pinned = sorted(self._message_pins.items(), key=lambda kv: kv[1])
        for (message_name, producer_copy), ready in pinned:
            if not self._needs_bus[message_name]:
                continue
            message = self._app.message(message_name)
            node = self._copy_node[(message.src, producer_copy)]
            transmission = self._bus.schedule_transmission(
                node, ready, message.size_bytes, root_bus)
            self._pinned_transmissions[(message_name, producer_copy)] = \
                transmission

    # -- context exploration ---------------------------------------------------

    def _explore(self, ctx: _Context) -> None:
        self._contexts_explored += 1
        if self._contexts_explored > self._max_contexts:
            raise ContextExplosionError(
                f"conditional scheduling exceeded {self._max_contexts} "
                "contexts; reduce k or use the estimation scheduler")
        while True:
            self._refresh_ready(ctx)
            branch_time = ctx.branches[0][0] if ctx.branches else None

            attempt_choice = self._best_attempt(ctx)
            send_choice = self._best_send(ctx)

            times = []
            if attempt_choice is not None:
                times.append(attempt_choice[0])
            if send_choice is not None:
                times.append(send_choice[0])
            action_time = min(times) if times else None

            if branch_time is not None and (
                    action_time is None
                    or branch_time <= action_time + TIME_EPS):
                if self._process_branch(ctx):
                    return
                continue  # branch degenerated (budget exhausted)
            if action_time is None:
                break
            if send_choice is not None and send_choice[0] <= action_time \
                    + TIME_EPS:
                self._place_send(ctx, send_choice)
            else:
                self._place_attempt(ctx, attempt_choice)

        self._record_leaf(ctx)

    def _record_leaf(self, ctx: _Context) -> None:
        unfinished = [key for key, st in ctx.states.items()
                      if st.status != "done"]
        if unfinished:
            raise SchedulingError(
                f"context ended with unfinished copies: {unfinished}")
        makespan = max(st.finish for st in ctx.states.values())
        self._leaves.append(LeafScenario(guard=ctx.guard, makespan=makespan))

    # -- readiness --------------------------------------------------------------

    def _refresh_ready(self, ctx: _Context) -> None:
        for key, state in list(ctx.states.items()):
            if state.status != "waiting":
                continue
            node = self._copy_node[key]
            ready = self._app.process(key[0]).release
            satisfied = True
            for message in self._app.inputs_of(key[0]):
                producer_policy = self._policies.of(message.src)
                for producer_copy in range(len(producer_policy.copies)):
                    delivery = self._delivery_time(
                        ctx, message.name, producer_copy, node)
                    if delivery is None:
                        satisfied = False
                        break
                    ready = max(ready, delivery)
                if not satisfied:
                    break
            if satisfied:
                ctx.states[key] = replace(state, status="ready", ready=ready)

    def _delivery_time(self, ctx: _Context, message_name: str,
                       producer_copy: int, node: str) -> float | None:
        """When (message, producer copy) is available on ``node``;
        ``None`` when not yet scheduled."""
        record = ctx.avail.get((message_name, producer_copy))
        if record is None:
            return None
        src_node, local_time, bus_arrival = record
        if self._transparency.is_frozen_message(message_name):
            # Frozen: one visible time everywhere (the pinned send /
            # its arrival); before pinning, fall back to the natural
            # times so the collection pass can observe the need.
            if src_node == node:
                return local_time
            return bus_arrival
        if src_node == node:
            return local_time
        return bus_arrival

    # -- action selection ---------------------------------------------------------

    def _best_attempt(self, ctx: _Context):
        best = None
        for key, state in ctx.states.items():
            if state.status != "ready":
                continue
            start = self._attempt_start(ctx, key, state)
            priority = self._priorities[key[0]]
            candidate = (start, -priority, key)
            if best is None or candidate < best:
                best = candidate
        return best

    def _attempt_start(self, ctx: _Context, key: CopyKey,
                       state: _CopyState) -> float:
        node = self._copy_node[key]
        is_frozen_first = (
            state.segment == 1 and state.attempt == 1
            and self._transparency.is_frozen_process(key[0]))
        pin = self._process_pins.get(key) if is_frozen_first else None
        if pin is not None:
            # A pinned frozen start is scenario-independent: the node
            # fires it unconditionally, so no condition knowledge is
            # required (its guard collapses under compression).
            return max(state.ready, ctx.node_free[node], pin)
        return max(state.ready, ctx.node_free[node],
                   self._guard_wait(ctx, node))

    def _guard_wait(self, ctx: _Context, node: str) -> float:
        wait = 0.0
        for literal in ctx.guard.literals:
            knowledge = ctx.known[literal.attempt]
            known_at = (knowledge.local_time if knowledge.node == node
                        else knowledge.remote_time)
            wait = max(wait, known_at)
        return wait

    def _best_send(self, ctx: _Context):
        best = None
        for index, send in enumerate(ctx.sends):
            pinned = (self._pinned_transmissions.get(
                (send.message, send.producer_copy))
                if send.frozen else None)
            if pinned is not None:
                # Pinned frozen transmissions are scenario-independent
                # and pre-reserved — no condition knowledge needed.
                if send.ready <= pinned.start + TIME_EPS:
                    start = pinned.start
                else:
                    # Pin deficiency: remember it and schedule at the
                    # natural time for now; the driver re-runs.
                    self._need_message_pin(
                        send.message, send.producer_copy, send.ready)
                    start = self._probe_send_start(ctx, send, send.ready)
            else:
                ready = max(send.ready, self._guard_wait(ctx, send.node))
                start = self._probe_send_start(ctx, send, ready)
            candidate = (start, index)
            if best is None or candidate < best:
                best = candidate
        return best

    def _probe_send_start(self, ctx: _Context, send: _Send,
                          ready: float) -> float:
        for window in self._bus.owner_slot_occurrences(send.node, ready):
            if not ctx.bus.is_reserved((window.round_index,
                                        window.slot_index)):
                return window.start
        raise SchedulingError("no bus slot found")  # pragma: no cover

    def _need_message_pin(self, message: str, copy: int,
                          needed: float) -> None:
        key = (message, copy)
        current = self._needed_message_pins.get(key, -1.0)
        self._needed_message_pins[key] = max(current, needed)

    # -- placements ------------------------------------------------------------

    def _place_attempt(self, ctx: _Context, choice) -> None:
        start, _neg_priority, key = choice
        state = ctx.states[key]
        execution = self._copies[key]
        node = self._copy_node[key]

        is_frozen_first = (
            state.segment == 1 and state.attempt == 1
            and self._transparency.is_frozen_process(key[0]))
        if is_frozen_first:
            needed = self._needed_process_pins.get(key, -1.0)
            self._needed_process_pins[key] = max(needed, start)

        can_fail = ctx.budget_used < self._k
        plan = execution.plan
        can_recover = can_fail and state.local_faults < plan.recoveries
        # A frozen activation must behave identically in every
        # scenario: its node cannot know the remaining fault budget at
        # the pinned start, so error detection always runs (the Fig. 1c
        # α-skip needs budget knowledge the frozen table forgoes).
        detection = can_fail or (is_frozen_first and self._k > 0)
        duration = execution.attempt_duration(state.attempt,
                                              can_fail=detection)
        attempt_id = AttemptId(key[0], key[1], state.segment, state.attempt)
        self._entries.append(TableEntry(
            kind=EntryKind.ATTEMPT,
            location=node,
            guard=ctx.guard,
            start=start,
            duration=duration,
            attempt=attempt_id,
            can_fail=detection,
        ))
        finish = start + duration
        ctx.node_free[node] = finish
        ctx.states[key] = replace(state, status="running")

        if can_recover:
            heapq.heappush(
                ctx.branches,
                (finish, next(_branch_counter), key, attempt_id))
        else:
            # Success (or silent death — same timing) is structural.
            self._complete_segment(ctx, key, finish)

    def _complete_segment(self, ctx: _Context, key: CopyKey,
                          finish: float) -> None:
        state = ctx.states[key]
        execution = self._copies[key]
        if state.segment < execution.segments:
            ctx.states[key] = replace(
                state, segment=state.segment + 1, attempt=1,
                status="ready", ready=finish)
            return
        ctx.states[key] = replace(state, status="done", finish=finish)
        ctx.done_count += 1
        process_name, copy_index = key
        node = self._copy_node[key]
        for message in self._app.outputs_of(process_name):
            frozen = self._transparency.is_frozen_message(message.name)
            local_time = finish
            if frozen:
                pin = self._message_pins.get((message.name, copy_index))
                if pin is not None:
                    if finish > pin + TIME_EPS:
                        self._need_message_pin(
                            message.name, copy_index, finish)
                    local_time = max(pin, finish)
                self._need_message_pin(message.name, copy_index, finish)
            ctx.avail[(message.name, copy_index)] = (node, local_time, None)
            if self._needs_bus[message.name]:
                ctx.sends.append(_Send(
                    message=message.name,
                    producer_copy=copy_index,
                    node=node,
                    ready=local_time,
                    size_bytes=message.size_bytes,
                    frozen=frozen,
                ))

    def _place_send(self, ctx: _Context, choice) -> None:
        _start, index = choice
        send = ctx.sends.pop(index)
        pinned = (self._pinned_transmissions.get(
            (send.message, send.producer_copy)) if send.frozen else None)
        if pinned is not None and send.ready <= pinned.start + TIME_EPS:
            transmission = pinned
        else:
            ready = (send.ready if pinned is not None
                     else max(send.ready, self._guard_wait(ctx, send.node)))
            message = self._app.message(send.message)
            transmission = self._bus.schedule_transmission(
                send.node, ready, message.size_bytes, ctx.bus)
        self._entries.append(TableEntry(
            kind=EntryKind.MESSAGE,
            location=BUS,
            guard=ctx.guard,
            start=transmission.start,
            duration=transmission.arrival - transmission.start,
            message=send.message,
            producer_copy=send.producer_copy,
            frames=transmission.frames,
        ))
        src_node, local_time, __ = ctx.avail[(send.message,
                                              send.producer_copy)]
        ctx.avail[(send.message, send.producer_copy)] = (
            src_node, local_time, transmission.arrival)

    # -- branching ---------------------------------------------------------------

    def _process_branch(self, ctx: _Context) -> bool:
        """Fork the context at the next detection point.

        Returns False without forking when the fault budget was
        exhausted by branches that detected earlier: the attempt was
        placed (with detection) while faults were still possible, but
        by its detection point no fault can occur anymore, so its
        outcome is certain and the context continues linearly.
        """
        detect, __, key, attempt_id = heapq.heappop(ctx.branches)
        node = self._copy_node[key]

        if ctx.budget_used >= self._k:
            self._complete_segment(ctx, key, detect)
            return False

        if self._multi_node:
            transmission = self._bus.schedule_transmission(
                node, detect, self._cond_size, ctx.bus)
            self._entries.append(TableEntry(
                kind=EntryKind.BROADCAST,
                location=BUS,
                guard=ctx.guard,
                start=transmission.start,
                duration=transmission.arrival - transmission.start,
                attempt=attempt_id,
                frames=transmission.frames,
            ))
            remote = transmission.arrival
        else:
            remote = detect
        ctx.known[attempt_id] = _Knowledge(
            node=node, local_time=detect, remote_time=remote)

        ok_ctx = ctx.fork()
        ok_ctx.guard = ctx.guard.extended(
            ConditionLiteral(attempt_id, faulty=False))
        self._complete_segment(ok_ctx, key, detect)

        fault_ctx = ctx.fork()
        fault_ctx.guard = ctx.guard.extended(
            ConditionLiteral(attempt_id, faulty=True))
        fault_ctx.budget_used += 1
        state = fault_ctx.states[key]
        fault_ctx.states[key] = replace(
            state, attempt=state.attempt + 1,
            local_faults=state.local_faults + 1,
            status="ready", ready=detect)

        self._explore(ok_ctx)
        self._explore(fault_ctx)
        return True


_branch_counter = itertools.count()


def synthesize_schedule(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    transparency: Transparency | None = None,
    *,
    priorities: Mapping[str, float] | None = None,
    max_contexts: int = DEFAULT_MAX_CONTEXTS,
    compress: bool = True,
) -> ScheduleSet:
    """Build the conditional schedule tables (the set ``S`` of §6).

    Convenience wrapper around :class:`ConditionalScheduler`; with
    ``compress`` the resulting tables merge activations that turned out
    not to depend on a condition.
    """
    scheduler = ConditionalScheduler(
        app, arch, mapping, policies, fault_model, transparency,
        priorities=priorities, max_contexts=max_contexts)
    schedule = scheduler.run()
    return schedule.compressed() if compress else schedule
