"""Fault-tolerant schedule length estimation (paper §6, as in [13]).

The exact conditional scheduler is exponential in ``k``; design-space
exploration needs a cost function that is cheap, deterministic and a
*sound upper bound* of the worst-case schedule length. Like the
authors' optimization loop, we list-schedule the fault-free timeline
and account for faults with **recovery-slack sharing**:

* every copy carries its own recovery slack — the extra time it needs
  if it absorbs as many of the ``k`` faults as it can recover from
  (:meth:`repro.policies.recovery.CopyExecution.recovery_slack`);
* copies on one node share a slack window: because the ``k`` faults
  are a single global budget, splitting them between two co-located
  copies is always dominated by concentrating them on the one with the
  larger per-fault cost, so the shared slack is the *max*, not the
  sum, of the individual slacks (running max over the node timeline);
* a cross-node consumer sees the producer's worst-case finish — the
  message is budgeted at its latest time, i.e. node-level transparent
  recovery as in Kandasamy et al. [19] and [13];
* a consumer of a replicated producer waits for **all** copies: with
  ``k >= 1`` faults the adversary can silently kill every copy but the
  slowest, so only the max over copies is guaranteed (and replicas
  therefore add no recovery slack of their own — their failure costs
  no time, only redundancy).

The estimate captures exactly the trade-off the paper's Fig. 7 lives
on: re-execution pays shared recovery slack on the local node, while
replication pays duplicated load and worst-copy waiting but no slack.

**Ordering contract.** The list scheduler selects the next copy to
place exactly like the exact conditional scheduler's context
exploration does (:meth:`repro.schedule.conditional.
ConditionalScheduler._best_attempt`): among the ready copies, the one
with the earliest start — ``max(ready, node free)`` — wins, ties
broken by descending priority, then by ``(process name, copy index)``.
Matching the exact scheduler's serialization matters for soundness,
not just fidelity: an earlier priority-first selection could place
two co-located copies in the *opposite* order from the exact tables,
delaying one of them — and every cross-node consumer downstream — by
whole WCETs beyond the estimate, which no bus-round allowance covers
(the ``4p-3n-s283`` regression pinned in
``tests/test_campaigns.py::TestSoundnessSeam``).

Like the authors' estimator it is an *estimate*, not a certified
bound: the exact conditional scheduler additionally pays
condition-broadcast frames and knowledge waits on the bus (at most one
TDMA round per observed fault and per cross-node dependency), which
the estimate does not model — the campaign/verify bound of
:func:`repro.campaigns.stats.estimate_bound` adds that allowance on
top. Final designs should be validated with
:func:`repro.schedule.conditional.synthesize_schedule` plus
:func:`repro.runtime.verify.verify_tolerance` where feasible.

Incremental re-evaluation
-------------------------

Design optimization evaluates thousands of candidates that differ
from their parent by a *single* move (one copy remapped, one policy
replaced). :class:`EstimatorState` therefore keeps, alongside the
:class:`FtEstimate`, a replayable trace of the run — the pop order of
the list scheduler, the shared-slack value after every pop, and the
bus transmissions issued at every process completion. Re-evaluating a
moved solution (:meth:`EstimatorState.reevaluate`) replays the trace
prefix that provably cannot have changed and re-runs the scheduler
only from the first position the move can influence. Because
selection is earliest-start-first, the moved process's copies
influence every selection from the moment they join the ready pool
(they compete on start time, not just on a static priority), so the
prefix ends where the process's last predecessor completes — not at
its own first pop. The replay is **exact**: prefix timings and bus
frames are reused verbatim (no float is recomputed), and the suffix
runs the identical algorithm from identical intermediate state, so
the incremental estimate is bit-identical to a full
:func:`estimate_ft_schedule` — the full recompute stays available as
the oracle the tests and benchmarks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from itertools import islice
from typing import NamedTuple

from repro.comm.reservations import BusReservations
from repro.comm.tdma import TdmaBus, Transmission
from repro.errors import SchedulingError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.recovery import CopyExecution
from repro.policies.types import PolicyAssignment
from repro.schedule.mapping import CopyMapping
from repro.schedule.priorities import partial_critical_path_priorities

CopyKey = tuple[str, int]

#: One recorded transmission: (message name, producer copy index,
#: scheduled frames). Replay re-reserves the frames verbatim.
SendRecord = tuple[str, int, Transmission]

Fingerprint = tuple


def solution_fingerprint(policies: PolicyAssignment,
                         mapping: CopyMapping) -> Fingerprint:
    """Canonical, hashable identity of one (policies, mapping) solution.

    Sorted by process name so two solutions built in different orders
    fingerprint identically; per process it captures every copy's
    recovery plan and placement — exactly the inputs the estimator
    reads from the solution.
    """
    parts = []
    for name, policy in sorted(policies.items()):
        plans = tuple((plan.recoveries, plan.checkpoints)
                      for plan in policy.copies)
        nodes = tuple(mapping.node_of(name, copy)
                      for copy in range(len(policy.copies)))
        parts.append((name, plans, nodes))
    return tuple(parts)


class CopyTiming(NamedTuple):
    """Estimated timing of one copy.

    A ``NamedTuple`` rather than a frozen dataclass: the scheduler
    constructs one per pop in its hottest loop, and tuple construction
    is C-level while a frozen dataclass pays ``object.__setattr__``
    per field.
    """

    node: str
    start: float
    ff_finish: float
    wc_finish: float


@dataclass
class FtEstimate:
    """Result of the slack-sharing estimation."""

    schedule_length: float
    ff_length: float
    timings: dict[CopyKey, CopyTiming]
    deadline: float
    local_deadline_violations: tuple[str, ...]

    @property
    def meets_deadline(self) -> bool:
        """True when the worst case fits the global deadline."""
        return self.schedule_length <= self.deadline + 1e-9

    @property
    def feasible(self) -> bool:
        """Global and local deadlines all met."""
        return self.meets_deadline and not self.local_deadline_violations

    def completion_bound(self, process: str) -> float:
        """Worst-case completion of one process (max over copies)."""
        return max(t.wc_finish for key, t in self.timings.items()
                   if key[0] == process)


#: Slack-sharing modes of :func:`estimate_ft_schedule`.
SLACK_SHARING_MODES = ("max", "budgeted")


class _CopyCost:
    """Per-copy constants of one run chain, computed once per copy.

    The estimator reads only three numbers per scheduled copy: its
    execution calculator (for the budgeted DP), its fault-free
    duration, and its recovery slack at the run's fault budget. All
    three are pure functions of the immutable
    :class:`~repro.policies.recovery.CopyExecution`, so they are
    precomputed at copy expansion and shared across incremental
    re-evaluations instead of being recomputed at every pop.
    """

    __slots__ = ("execution", "duration", "slack")

    def __init__(self, execution: CopyExecution, k: int) -> None:
        self.execution = execution
        self.duration = (execution.fault_free_duration() if k > 0
                         else execution.worst_case_duration(0))
        self.slack = execution.recovery_slack(k)


#: (wcet, plan, alpha, mu, chi, k) -> shared :class:`_CopyCost`. Each
#: value is a pure function of its key, so cross-run sharing cannot
#: change any output; bounded defensively like the send memos.
_COST_MEMO: dict[tuple, _CopyCost] = {}


class _MaxSlackPool:
    """The paper's shared-slack rule: running max of per-copy slacks."""

    __slots__ = ("_slack",)

    def __init__(self, k: int) -> None:
        self._slack = 0.0

    def add(self, cost: _CopyCost) -> float:
        """Fold one scheduled copy; return the shared slack so far."""
        if cost.slack > self._slack:
            self._slack = cost.slack
        return self._slack

    def resume(self, slack: float) -> None:
        """Restore the pool to a recorded running-max value.

        Used by trace replay: the value returned by :meth:`add` *is*
        the complete pool state for this rule, so replay restores it
        directly instead of re-folding the prefix copies.
        """
        self._slack = slack


class _BudgetedSlackPool:
    """Sound shared slack for heterogeneous recovery budgets.

    A fault distribution gives copy ``j`` some ``f_j <= R_j`` of the
    ``k`` faults; each costs ``f_j`` retries (``C/n + mu + alpha``
    each), and when the distribution exhausts the whole budget the
    final retry skips detection (``- alpha`` of the copy absorbing it,
    as in :meth:`~repro.policies.recovery.CopyExecution.
    worst_case_duration`). The shared slack is the *worst distribution
    total*, computed by a DP over the budget — which equals the
    running max whenever some copy can absorb all ``k`` faults at the
    per-fault cost of the maximum, and exceeds it exactly when copies
    saturate (``R_j < k``) and the adversary splits.
    """

    _NEG = float("-inf")

    def __init__(self, k: int) -> None:
        self._k = k
        #: best[b]: worst total slack of exactly ``b`` faults, no
        #: detection discount (used while the budget is not exhausted).
        self._best = [0.0] + [self._NEG] * k
        #: discounted[b]: ditto with the one ``- alpha`` discount of
        #: the copy taking the final, budget-exhausting fault.
        self._discounted = [self._NEG] * (k + 1)

    def add(self, cost: _CopyCost) -> float:
        """Fold one scheduled copy; return the shared slack so far."""
        k = self._k
        if k == 0:
            return 0.0
        execution = cost.execution
        cap = min(execution.plan.recoveries, k)
        if cap > 0:
            per_fault = (execution.segment_time + execution.mu
                         + execution.alpha)
            best, discounted = self._best, self._discounted
            new_best = list(best)
            new_discounted = list(discounted)
            for b in range(1, k + 1):
                for f in range(1, min(cap, b) + 1):
                    gain = f * per_fault
                    if best[b - f] > self._NEG:
                        new_best[b] = max(new_best[b],
                                          best[b - f] + gain)
                        new_discounted[b] = max(
                            new_discounted[b],
                            best[b - f] + gain - execution.alpha)
                    if discounted[b - f] > self._NEG:
                        new_discounted[b] = max(
                            new_discounted[b],
                            discounted[b - f] + gain)
            self._best, self._discounted = new_best, new_discounted
        # Distributions short of the full budget keep detection on
        # every retry (no discount); a full distribution discounts one.
        return max(0.0, max(self._best[:k]), self._discounted[k])


class _AppStructure:
    """Static per-application lookup tables shared across runs.

    The application accessors (``predecessors``, ``successors``,
    ``inputs_of``, ``outputs_of``) rebuild tuples on every call; one
    estimation chain asks for them thousands of times with identical
    answers, so they are materialized once and shared by every run of
    the chain.
    """

    __slots__ = ("blockers", "successors", "inputs", "outputs",
                 "deadlined")

    def __init__(self, app: Application) -> None:
        names = app.process_names
        self.blockers = {name: len(app.predecessors(name))
                         for name in names}
        self.successors = {name: app.successors(name) for name in names}
        self.inputs = {name: app.inputs_of(name) for name in names}
        self.outputs = {name: app.outputs_of(name) for name in names}
        #: Processes with a local deadline, in application order.
        self.deadlined = tuple(
            (process.name, process.deadline)
            for process in app.processes
            if process.deadline is not None)


class EstimatorState:
    """One completed estimation run plus its replayable trace.

    The state binds the evaluated solution and settings to the
    resulting :class:`FtEstimate` and keeps what the incremental path
    needs: the scheduler's pop order, the per-pop shared-slack value,
    the recorded bus transmissions, and each process's first-pop and
    completion positions. :meth:`reevaluate` produces the state of a
    single-process move in (empirically) a fraction of a full run —
    bit-identically, with the full run kept as the oracle.

    States are immutable in practice (nothing mutates them after
    construction) and safely shareable between cache entries: prefix
    traces of child states alias the parent's records.
    """

    __slots__ = (
        "app", "arch", "mapping", "policies", "k", "priorities",
        "bus_contention", "slack_sharing", "estimate",
        "_copies", "_keys_of", "_pops", "_post_slack", "_sends",
        "_first_pop", "_completion",
        "_structure", "_bus", "_send_memo",
    )

    def __init__(self, *, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 k: int, priorities: dict[str, float],
                 bus_contention: bool, slack_sharing: str,
                 estimate: FtEstimate,
                 copies: dict[CopyKey, _CopyCost],
                 keys_of: dict[str, tuple[CopyKey, ...]],
                 pops: tuple[CopyKey, ...],
                 post_slack: tuple[float, ...],
                 sends: dict[str, tuple[SendRecord, ...]],
                 first_pop: dict[str, int],
                 completion: dict[str, int],
                 structure: "_AppStructure",
                 bus: TdmaBus,
                 send_memo: dict) -> None:
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.policies = policies
        self.k = k
        self.priorities = priorities
        self.bus_contention = bus_contention
        self.slack_sharing = slack_sharing
        self.estimate = estimate
        self._copies = copies
        self._keys_of = keys_of
        self._pops = pops
        self._post_slack = post_slack
        self._sends = sends
        self._first_pop = first_pop
        self._completion = completion
        self._structure = structure
        self._bus = bus
        self._send_memo = send_memo

    # -- construction ---------------------------------------------------------

    @classmethod
    def compute(
        cls,
        app: Application,
        arch: Architecture,
        mapping: CopyMapping,
        policies: PolicyAssignment,
        fault_model: FaultModel,
        *,
        priorities: Mapping[str, float] | None = None,
        bus_contention: bool = True,
        slack_sharing: str = "max",
    ) -> "EstimatorState":
        """Full evaluation — the oracle the incremental path must match."""
        if slack_sharing not in SLACK_SHARING_MODES:
            raise ValueError(
                f"unknown slack_sharing {slack_sharing!r}, expected one "
                f"of {SLACK_SHARING_MODES}")
        # The array-compiled kernel performs the identical arithmetic
        # in the identical order over precompiled tables;
        # REPRO_KERNELS=0 forces this pure-Python oracle.
        from repro.kernels import kernels_enabled
        if kernels_enabled():
            from repro.kernels.estimator import kernel_compute
            return kernel_compute(
                app, arch, mapping, policies, fault_model,
                priorities=priorities, bus_contention=bus_contention,
                slack_sharing=slack_sharing)
        if priorities is None:
            priorities = partial_critical_path_priorities(app, arch)
        run = _EstimationRun(app, arch, mapping, policies,
                             fault_model.k, dict(priorities),
                             bus_contention, slack_sharing)
        return run.execute()

    # -- incremental path -----------------------------------------------------

    def reevaluate(self, policies: PolicyAssignment,
                   mapping: CopyMapping,
                   changed: str) -> "EstimatorState":
        """Evaluate a solution differing from this one only at ``changed``.

        ``changed`` names the single process whose policy and/or copy
        placement differs (the ``process`` of a
        :class:`~repro.synthesis.moves.RemapMove` /
        :class:`~repro.synthesis.moves.PolicyMove`); every other
        process must be untouched. Returns a fresh state whose
        estimate is bit-identical to
        :meth:`compute` on the new solution: the scheduler trace is
        replayed up to the first position the change can influence and
        re-run from there.
        """
        divergence = self._divergence_position(policies, mapping, changed)
        if divergence <= 0:
            return self._full(policies, mapping)
        run = _EstimationRun(self.app, self.arch, mapping, policies,
                             self.k, self.priorities,
                             self.bus_contention, self.slack_sharing,
                             reuse_from=self, changed=changed)
        return run.execute(parent=self, divergence=divergence)

    def _full(self, policies: PolicyAssignment,
              mapping: CopyMapping) -> "EstimatorState":
        run = _EstimationRun(self.app, self.arch, mapping, policies,
                             self.k, self.priorities,
                             self.bus_contention, self.slack_sharing,
                             reuse_from=self)
        return run.execute()

    def _divergence_position(self, policies: PolicyAssignment,
                             mapping: CopyMapping, changed: str) -> int:
        """First trace position the move can influence.

        Selection is earliest-start-first, so ``changed``'s copies
        compete in every selection from the moment they join the
        ready pool — the pop right after its last predecessor
        completes (position zero for a source process). Replay stays
        valid past that point as long as the prefix's recorded pops
        keep winning: a recorded pop was the strict minimum over the
        parent's pool, the new pool differs from it only by swapping
        ``changed``'s copies (which had not popped yet), so the pop
        stands unless one of ``changed``'s *new* copies beats its
        recorded candidate ``(start, -priority, key)``. The scan below
        checks exactly that, per prefix position, using the recorded
        start times and a running node-free vector; divergence is the
        first preemption — or the first recorded pop of a ``changed``
        copy the move actually *touched* (different plan or node). An
        untouched copy's recorded pop is value-identical under the
        move (same fixed ready time, duration and slack on the same
        node), so the scan walks straight through it and retires its
        pool candidate; a remap of one replica therefore replays past
        the other replicas' pops.

        Under bus contention one case rewinds *earlier* than the
        pool-entry position: a message *into* ``changed`` changing
        its on-bus decision (a producer skips the bus when all
        consumer copies share its node, so moving the consumer can
        add or remove a prefix transmission — which shifts contended
        frames of unrelated messages too); then divergence falls back
        to that producer's completion. Without contention a
        transmission is a pure function of (sender, finish, size), so
        a flipped input perturbs nothing else in the prefix: the scan
        computes the flipped-on arrival directly from the recorded
        producer finish, and replay re-derives that producer's send
        records instead of adopting them (see
        :meth:`_EstimationRun._replay`).
        """
        if changed not in self._keys_of:
            raise SchedulingError(
                f"unknown process {changed!r} in delta "
                "re-evaluation")
        predecessors = self.app.predecessors(changed)
        entry = (0 if not predecessors
                 else 1 + max(self._completion[name]
                              for name in predecessors))
        old_policy = self.policies.of(changed)
        new_policy = policies.of(changed)
        old_nodes = {self.mapping.node_of(changed, c)
                     for c in range(len(old_policy.copies))}
        new_nodes = {mapping.node_of(changed, c)
                     for c in range(len(new_policy.copies))}
        if self.bus_contention and old_nodes != new_nodes:
            rewind = entry
            for message in self.app.inputs_of(changed):
                producer = message.src
                done_at = self._completion.get(producer)
                if done_at is None or done_at >= rewind:
                    continue
                for src_key in self._keys_of[producer]:
                    src_node = self.mapping.node_of(*src_key)
                    if ((old_nodes <= {src_node})
                            != (new_nodes <= {src_node})):
                        rewind = min(rewind, done_at)
                        break
            if rewind < entry:
                return rewind

        # Preemption scan over the prefix. The fixed ready time of
        # every new copy (constant from pool entry, see _fixed_ready)
        # comes from recorded prefix data: with the on-bus decisions
        # unchanged, every cross-node input arrival the new placement
        # needs was recorded by the parent.
        priorities = self.priorities
        negpri = -priorities[changed]
        inputs = self.app.inputs_of(changed)
        arrival: dict[tuple[str, int], float] = {}
        for message in inputs:
            for m_name, copy_index, transmission in \
                    self._sends.get(message.src, ()):
                if m_name == message.name:
                    arrival[(m_name, copy_index)] = \
                        transmission.arrival
        timings = self.estimate.timings
        release = self.app.process(changed).release
        pool: dict[CopyKey, tuple[float, str]] = {}
        for c in range(len(new_policy.copies)):
            node = mapping.node_of(changed, c)
            ready = release
            for message in inputs:
                for idx, src_key in \
                        enumerate(self._keys_of[message.src]):
                    if self.mapping.node_of(*src_key) == node:
                        value = timings[src_key].ff_finish
                    else:
                        value = arrival.get((message.name, idx))
                        if value is None:
                            # The move flipped this input onto the
                            # bus (no recorded transmission). Only
                            # reachable without contention — the
                            # rewind above handles the contended
                            # case — so the arrival is a pure
                            # function of the recorded finish.
                            value = self._uncontended_arrival(
                                src_key, message.size_bytes)
                    if value > ready:
                        ready = value
            pool[(changed, c)] = (ready, node)

        # A recorded pop of one of ``changed``'s own copies replays
        # too when the move left that copy untouched (same recovery
        # plan on the same node — hence the same fixed ready time,
        # duration and slack): the pop and its whole timing are
        # value-identical, so the scan walks straight through it and
        # retires its pool candidate. A touched copy's pop (or a copy
        # the new policy dropped) is the divergence.
        old_copies = old_policy.copies
        new_copies = new_policy.copies
        untouched = [
            c < len(new_copies)
            and new_copies[c] == old_copies[c]
            and mapping.node_of(changed, c)
            == self.mapping.node_of(changed, c)
            for c in range(len(old_copies))
        ]

        node_free: dict[str, float] = {}
        for position, (key, timing) in enumerate(timings.items()):
            if position >= entry:
                rec_start = timing.start
                rec_negpri = -priorities[key[0]]
                for copy_key, (ready, node) in pool.items():
                    start = node_free.get(node, 0.0)
                    if ready > start:
                        start = ready
                    if start < rec_start or (
                            start == rec_start
                            and (negpri, copy_key)
                            < (rec_negpri, key)):
                        return position
                if key[0] == changed:
                    if not untouched[key[1]]:
                        return position
                    del pool[key]
            node_free[timing.node] = timing.ff_finish
        return len(timings)

    def _uncontended_arrival(self, src_key: CopyKey,
                             size_bytes: int) -> float:
        """Arrival of an uncontended send off a recorded finish.

        Shares the run chain's send memo (same key layout as
        :meth:`_EstimationRun._uncontended_cached`), so the value —
        and the cached transmission a replay will reuse — is
        bit-identical to the one a full run computes.
        """
        node = self.mapping.node_of(*src_key)
        ready = self.estimate.timings[src_key].wc_finish
        memo_key = (node, ready, size_bytes)
        transmission = self._send_memo.get(memo_key)
        if transmission is None:
            transmission = _uncontended(self._bus, node, ready,
                                        size_bytes)
            if len(self._send_memo) >= 200_000:
                self._send_memo.clear()
            self._send_memo[memo_key] = transmission
        return transmission.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EstimatorState({len(self._pops)} copies, "
                f"k={self.k}, {self.slack_sharing!r}, "
                f"length={self.estimate.schedule_length})")


class _EstimationRun:
    """One execution of the slack-sharing list scheduler.

    Covers both entry points: a full run records the trace from
    position zero; an incremental run first replays a parent trace
    prefix (reusing its timings, slack values and bus frames verbatim)
    and then falls into the identical main loop.
    """

    def __init__(self, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 k: int, priorities: dict[str, float],
                 bus_contention: bool, slack_sharing: str, *,
                 reuse_from: EstimatorState | None = None,
                 changed: str | None = None) -> None:
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.policies = policies
        self.k = k
        self.priorities = priorities
        self.bus_contention = bus_contention
        self.slack_sharing = slack_sharing
        self.reservations = BusReservations() if bus_contention else None
        self.changed = changed
        # Flat copy-key -> node table for the hot loops (the
        # per-lookup cost of CopyMapping.node_of adds up over the
        # thousands of pool scans of one run).
        self.node_map: dict[CopyKey, str] = dict(mapping.items())

        # -- shared run-chain context -----------------------------------------
        if reuse_from is not None:
            self.structure = reuse_from._structure
            self.bus = reuse_from._bus
            self.send_memo = reuse_from._send_memo
        else:
            self.structure = _AppStructure(app)
            self.bus = TdmaBus(arch.bus)
            self.send_memo = {}

        # -- expand copies ----------------------------------------------------
        if reuse_from is not None and changed is not None:
            # Only the changed process's executions can differ; every
            # other copy cost is immutable and shared verbatim.
            self.copies = dict(reuse_from._copies)
            self.keys_of = dict(reuse_from._keys_of)
            for copy_index in range(
                    len(reuse_from.policies.of(changed).copies)):
                del self.copies[(changed, copy_index)]
            self._expand_process(changed)
        else:
            self.copies = {}
            self.keys_of = {}
            for process_name, _policy in policies.items():
                self._expand_process(process_name)

        # -- scheduler state --------------------------------------------------
        self.node_free: dict[str, float] = {
            n: 0.0 for n in arch.node_names}
        pool_type = (_MaxSlackPool if slack_sharing == "max"
                     else _BudgetedSlackPool)
        self.node_slack: dict[str, _MaxSlackPool | _BudgetedSlackPool]
        self.node_slack = {n: pool_type(k) for n in arch.node_names}
        self.timings: dict[CopyKey, CopyTiming] = {}
        #: (message name, producer copy index) -> bus arrival time
        self.arrival: dict[tuple[str, int], float] = {}
        self.remaining: dict[str, int] = {
            name: len(keys) for name, keys in self.keys_of.items()}
        self.blockers: dict[str, int] = dict(self.structure.blockers)

        # -- trace ------------------------------------------------------------
        self.pops: list[CopyKey] = []
        self.post_slack: list[float] = []
        self.sends: dict[str, tuple[SendRecord, ...]] = {}
        self.first_pop: dict[str, int] = {}
        self.completion: dict[str, int] = {}

        # Earliest-start-first selection (priority tie-break) — the
        # exact conditional scheduler's serialization order (see the
        # module docstring's ordering contract). The pool maps each
        # ready copy to (fixed ready time, node, -priority): every
        # input of a released process is already timed, so all three
        # are constant from release to pop.
        self.ready_pool: dict[CopyKey, tuple[float, str, float]] = {}

        # Running maxima over all recorded timings (value-exact, so
        # folding during the loops matches a final full scan bit for
        # bit).
        self.max_wc = 0.0
        self.max_ff = 0.0

    def _expand_process(self, process_name: str) -> None:
        process = self.app.process(process_name)
        keys: list[CopyKey] = []
        for copy_index, plan in enumerate(
                self.policies.of(process_name).copies):
            key = (process_name, copy_index)
            node = self.node_map[key]
            # A copy cost is a pure function of this memo key;
            # incremental walks re-expand the changed process with the
            # same few (node, plan) combinations over and over, so the
            # recovery arithmetic is shared across the run chain.
            memo_key = (process.wcet_on(node), plan, process.alpha,
                        process.mu, process.chi, self.k)
            cost = _COST_MEMO.get(memo_key)
            if cost is None:
                execution = CopyExecution(
                    wcet=memo_key[0], plan=plan, alpha=process.alpha,
                    mu=process.mu, chi=process.chi,
                )
                if len(_COST_MEMO) >= 100_000:
                    _COST_MEMO.clear()
                cost = _CopyCost(execution, self.k)
                _COST_MEMO[memo_key] = cost
            self.copies[key] = cost
            keys.append(key)
        self.keys_of[process_name] = tuple(keys)

    # -- ready-set plumbing ---------------------------------------------------

    def _release_copies(self, name: str) -> None:
        negpri = -self.priorities[name]
        node_map = self.node_map
        for key in self.keys_of[name]:
            self.ready_pool[key] = (self._fixed_ready(key),
                                    node_map[key], negpri)

    def _pop_next(self) -> tuple[CopyKey, float, str]:
        """The next copy to schedule, with its start time and node.

        Strict lexicographic minimum over ``(start, -priority, key)``
        — spelled out field by field so the scan allocates no
        candidate tuples.
        """
        if not self.ready_pool:
            raise SchedulingError("estimation deadlock (cycle?)")
        node_free = self.node_free
        best_key = None
        for key, (ready, node, negpri) in self.ready_pool.items():
            start = node_free[node]
            if ready > start:
                start = ready
            if best_key is None or start < best_start or (
                    start == best_start
                    and (negpri, key) < (best_negpri, best_key)):
                best_key = key
                best_start = start
                best_negpri = negpri
                best_node = node
        del self.ready_pool[best_key]
        return best_key, best_start, best_node

    def _fixed_ready(self, key: CopyKey) -> float:
        ready = self.app.process(key[0]).release
        node = self.node_map[key]
        node_map = self.node_map
        timings = self.timings
        arrival = self.arrival
        keys_of = self.keys_of
        for message in self.structure.inputs[key[0]]:
            message_name = message.name
            for src_key in keys_of[message.src]:
                if node_map[src_key] == node:
                    value = timings[src_key].ff_finish
                else:
                    value = arrival[(message_name, src_key[1])]
                if value > ready:
                    ready = value
        return ready

    # -- replay ---------------------------------------------------------------

    def _replay(self, parent: EstimatorState, divergence: int) -> None:
        """Restore the scheduler state at trace position ``divergence``.

        Everything strictly before the divergence position is
        position-for-position identical between the parent run and a
        full run of the moved solution (see
        :meth:`EstimatorState._divergence_position`). Timings, bus
        transmissions and (in ``"max"`` mode) slack-pool values are
        adopted verbatim; the ``"budgeted"`` DP pool has internal
        state beyond its returned value, so it is re-folded over the
        same executions in the same order — deterministic identical
        arithmetic, hence still bit-identical to the oracle.

        One class of records is *re-derived* rather than adopted: on
        an uncontended bus, a prefix producer of the changed process
        may have had an on-bus decision flipped by the move (a send
        is skipped when every consumer copy shares the sender's
        node). Its timings still replay — uncontended transmissions
        perturb nothing else — but its send records are recomputed
        from the adopted finishes under the *new* mapping/policies,
        so unflipped messages come back value-identical through the
        send memo while flipped ones appear or vanish exactly as a
        full run would record them. Under contention the divergence
        scan already rewinds to before such a producer completes, so
        adoption there is always safe.
        """
        refold = self.slack_sharing != "max"
        # Producers of the changed process whose on-bus decision the
        # move may have flipped. The skip test in :meth:`_transmit`
        # compares the consumer node set against the sender's node, so
        # only a changed node set can flip it, and only for senders it
        # brackets — everything else adopts the parent's records.
        resend: set[str] = set()
        if self.reservations is None and self.changed is not None:
            changed = self.changed
            node_map = self.node_map
            old_nodes = {
                parent.mapping.node_of(changed, c)
                for c in range(len(parent.policies.of(changed).copies))}
            new_nodes = {
                node_map[(changed, c)]
                for c in range(len(self.policies.of(changed).copies))}
            if old_nodes != new_nodes:
                for message in self.structure.inputs[changed]:
                    for src_key in self.keys_of[message.src]:
                        src_node = node_map[src_key]
                        if ((old_nodes <= {src_node})
                                != (new_nodes <= {src_node})):
                            resend.add(message.src)
                            break
        prefix_pops = parent._pops[:divergence]
        prefix_slack = parent._post_slack[:divergence]
        self.pops.extend(prefix_pops)
        self.post_slack.extend(prefix_slack)
        # The timings dict of any state is insertion-ordered by pop
        # position, so the prefix items come straight off the front —
        # adopted wholesale, then swept once to restore the running
        # per-node state (last fault-free finish and slack value).
        # Per-name bookkeeping comes from the parent's own
        # first-pop/completion tables, whose sub-``divergence``
        # entries are exactly the prefix's: a position-identical
        # prefix first-pops and completes the same names at the same
        # positions.
        timings = self.timings
        timings.update(islice(parent.estimate.timings.items(),
                              divergence))
        node_free = self.node_free
        node_slack = self.node_slack
        max_wc = 0.0
        max_ff = 0.0
        if refold:
            copies = self.copies
            for key, timing in zip(prefix_pops, timings.values()):
                ff = timing.ff_finish
                wc = timing.wc_finish
                node_free[timing.node] = ff
                node_slack[timing.node].add(copies[key])
                if wc > max_wc:
                    max_wc = wc
                if ff > max_ff:
                    max_ff = ff
        else:
            # Only the last recorded value per node matters: resume
            # overwrites the pool's whole state for this rule.
            last_slack: dict[str, float] = {}
            for timing, slack in zip(timings.values(), prefix_slack):
                ff = timing.ff_finish
                wc = timing.wc_finish
                node_free[timing.node] = ff
                last_slack[timing.node] = slack
                if wc > max_wc:
                    max_wc = wc
                if ff > max_ff:
                    max_ff = ff
            for node, slack in last_slack.items():
                node_slack[node].resume(slack)
        self.max_wc = max_wc
        self.max_ff = max_ff
        remaining = self.remaining
        for key in prefix_pops:
            remaining[key[0]] -= 1
        first_pop = self.first_pop
        for name, position in parent._first_pop.items():
            if position < divergence:
                first_pop[name] = position
        completion = self.completion
        arrival = self.arrival
        sends = self.sends
        reservations = self.reservations
        blockers = self.blockers
        successors_of = self.structure.successors
        parent_sends = parent._sends
        for name, position in parent._completion.items():
            if position >= divergence:
                continue
            completion[name] = position
            if name in resend:
                self._transmit(name)
            else:
                records = parent_sends[name]
                sends[name] = records
                for message_name, copy_index, transmission in records:
                    arrival[(message_name, copy_index)] = \
                        transmission.arrival
                    if reservations is not None:
                        for frame in transmission.frames:
                            reservations.reserve(
                                (frame.round_index, frame.slot_index))
            for successor in successors_of[name]:
                blockers[successor] -= 1
        # Rebuild the ready pool: every copy of a released process
        # that was not popped in the prefix. Earliest-start selection
        # can pop a process's copies out of index order, so the
        # popped set is taken from the prefix itself, not assumed to
        # be a leading slice. Selection is a strict minimum over the
        # full candidate tuple, so pool insertion order never matters.
        popped = set(prefix_pops)
        node_map = self.node_map
        for name, keys in self.keys_of.items():
            if self.blockers[name] != 0:
                continue
            negpri = -self.priorities[name]
            for key in keys:
                if key not in popped:
                    self.ready_pool[key] = (self._fixed_ready(key),
                                            node_map[key], negpri)

    # -- main loop ------------------------------------------------------------

    def execute(self, *, parent: EstimatorState | None = None,
                divergence: int = 0) -> EstimatorState:
        if parent is not None:
            self._replay(parent, divergence)
        else:
            for name in self.app.process_names:
                if self.blockers[name] == 0:
                    self._release_copies(name)

        structure = self.structure
        copies = self.copies
        pops = self.pops
        first_pop = self.first_pop
        node_free = self.node_free
        node_slack = self.node_slack
        post_slack = self.post_slack
        timings = self.timings
        remaining = self.remaining
        completion = self.completion
        blockers = self.blockers
        successors_of = structure.successors
        pop_next = self._pop_next
        transmit = self._transmit
        release_copies = self._release_copies
        scheduled = len(pops)
        total_copies = len(copies)
        max_wc = self.max_wc
        max_ff = self.max_ff
        while scheduled < total_copies:
            # The popped entry's start is max(fixed ready, node free) —
            # exactly the fold of release, same-node fault-free
            # finishes, cross-node arrivals and node availability that
            # a from-scratch scan would compute (max is value-exact on
            # floats, so the fold order is immaterial).
            key, earliest, node = pop_next()
            process_name = key[0]
            cost = copies[key]
            position = scheduled
            pops.append(key)
            if process_name not in first_pop:
                first_pop[process_name] = position

            ff_finish = earliest + cost.duration
            node_free[node] = ff_finish
            shared_slack = node_slack[node].add(cost)
            post_slack.append(shared_slack)
            wc_finish = ff_finish + shared_slack
            timings[key] = CopyTiming(node, earliest,
                                      ff_finish, wc_finish)
            if wc_finish > max_wc:
                max_wc = wc_finish
            if ff_finish > max_ff:
                max_ff = ff_finish
            scheduled += 1
            remaining[process_name] -= 1

            if remaining[process_name] == 0:
                completion[process_name] = position
                transmit(process_name)
                # Release successors whose predecessors are all
                # complete.
                for successor in successors_of[process_name]:
                    blockers[successor] -= 1
                    if blockers[successor] == 0:
                        release_copies(successor)

        self.max_wc = max_wc
        self.max_ff = max_ff
        return self._finish()

    def _transmit(self, process_name: str) -> None:
        """Record every cross-node output of a completed process.

        The message is budgeted at the producer's worst-case finish
        (node-level transparency). Called from the main loop at every
        completion — and from :meth:`_replay` to *re-derive* a prefix
        producer's records when the move may have flipped an on-bus
        decision (same recorded finishes in, so unflipped messages
        come back value-identical through the send memo).
        """
        outputs = self.structure.outputs[process_name]
        if not outputs:
            self.sends[process_name] = ()
            return
        records: list[SendRecord] = []
        node_map = self.node_map
        timings = self.timings
        arrival = self.arrival
        keys = self.keys_of[process_name]
        policies_of = self.policies.of
        reservations = self.reservations
        send_memo = self.send_memo
        uncontended = self._uncontended_cached
        for message in outputs:
            consumer_nodes = {
                node_map[(message.dst, c)]
                for c in range(len(policies_of(message.dst).copies))
            }
            local_only = len(consumer_nodes) == 1
            for src_key in keys:
                src_node = node_map[src_key]
                # Skip iff every consumer copy shares the sender's
                # node (consumer_nodes is never empty).
                if local_only and src_node in consumer_nodes:
                    continue
                send_time = timings[src_key].wc_finish
                if reservations is not None:
                    transmission = \
                        self.bus.schedule_transmission(
                            src_node, send_time,
                            message.size_bytes,
                            reservations)
                else:
                    # Memo hit inline; the method handles the miss.
                    transmission = send_memo.get(
                        (src_node, send_time, message.size_bytes))
                    if transmission is None:
                        transmission = uncontended(
                            src_node, send_time,
                            message.size_bytes)
                arrival[(message.name, src_key[1])] = \
                    transmission.arrival
                records.append(
                    (message.name, src_key[1], transmission))
        self.sends[process_name] = tuple(records)

    def _uncontended_cached(self, node: str, ready: float,
                            size_bytes: int) -> Transmission:
        """Uncontended transmissions memoized across the run chain.

        Without reservations a transmission is a pure function of
        (sender, ready time, payload size); incremental walks re-issue
        the same sends constantly, so the slot search is shared via
        the chain's memo. Bounded defensively — one chain sees a few
        thousand distinct sends in practice.
        """
        memo_key = (node, ready, size_bytes)
        transmission = self.send_memo.get(memo_key)
        if transmission is None:
            transmission = _uncontended(self.bus, node, ready,
                                        size_bytes)
            if len(self.send_memo) >= 200_000:
                self.send_memo.clear()
            self.send_memo[memo_key] = transmission
        return transmission

    def _finish(self) -> EstimatorState:
        violations = []
        timings = self.timings
        for name, deadline in self.structure.deadlined:
            bound = max(timings[key].wc_finish
                        for key in self.keys_of[name])
            if bound > deadline + 1e-9:
                violations.append(name)
        estimate = FtEstimate(
            schedule_length=self.max_wc,
            ff_length=self.max_ff,
            timings=self.timings,
            deadline=self.app.deadline,
            local_deadline_violations=tuple(violations),
        )
        return EstimatorState(
            app=self.app, arch=self.arch, mapping=self.mapping,
            policies=self.policies, k=self.k,
            priorities=self.priorities,
            bus_contention=self.bus_contention,
            slack_sharing=self.slack_sharing,
            estimate=estimate,
            copies=self.copies, keys_of=self.keys_of,
            pops=tuple(self.pops),
            post_slack=tuple(self.post_slack),
            sends=self.sends,
            first_pop=self.first_pop,
            completion=self.completion,
            structure=self.structure,
            bus=self.bus,
            send_memo=self.send_memo,
        )


def estimate_ft_schedule(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    *,
    priorities: Mapping[str, float] | None = None,
    bus_contention: bool = True,
    slack_sharing: str = "max",
) -> FtEstimate:
    """Estimate the worst-case fault-tolerant schedule length.

    See the module docstring for the model. Raises
    :class:`SchedulingError` only on structural problems; deadline
    misses are reported in the result, not raised, because the design
    optimizer treats them as penalized costs.

    The estimate is what the tabu search minimizes — thousands of
    calls per synthesis, which is why the
    :class:`~repro.eval.Evaluator` core memoizes it behind a solution
    fingerprint and re-evaluates single-move neighbors incrementally
    (:class:`EstimatorState`):

    >>> from repro.model import FaultModel
    >>> from repro.policies import PolicyAssignment, ProcessPolicy
    >>> from repro.schedule import estimate_ft_schedule
    >>> from repro.synthesis import initial_mapping
    >>> from repro.workloads import fig3_example
    >>> app, arch = fig3_example()
    >>> policies = PolicyAssignment.uniform(
    ...     app, ProcessPolicy.re_execution(1))
    >>> mapping = initial_mapping(app, arch, policies)
    >>> estimate = estimate_ft_schedule(app, arch, mapping, policies,
    ...                                 FaultModel(k=1))
    >>> print(f"worst case {estimate.schedule_length:.1f}, "
    ...       f"fault-free {estimate.ff_length:.1f}")
    worst case 322.0, fault-free 262.0
    >>> estimate.feasible
    True

    ``slack_sharing`` picks the shared-slack rule per node:

    * ``"max"`` (default) — the paper's rule: the running max of the
      per-copy slacks, justified by "concentrating all ``k`` faults on
      the costliest copy dominates any split". That argument silently
      assumes every copy can absorb all ``k`` faults; when a copy's
      recovery count is *below* ``k`` (replication hybrids), the
      adversary splits faults across saturated copies and the max is
      optimistic. Kept as the default because it is the estimator the
      paper's optimization loop uses — every published comparison
      (Fig. 7/8) is defined in its terms.
    * ``"budgeted"`` — sound for heterogeneous recovery budgets: a
      small DP distributes the ``k`` faults among the copies of the
      node (each capped at its own recovery count) and charges the
      worst total. Identical to ``"max"`` whenever every copy can
      absorb ``k`` faults and detection overheads are uniform; used by
      the fault-injection campaigns
      (:mod:`repro.campaigns`) as their certified bound, where this
      optimism was first observed empirically.
    """
    return EstimatorState.compute(
        app, arch, mapping, policies, fault_model,
        priorities=priorities, bus_contention=bus_contention,
        slack_sharing=slack_sharing).estimate


def _uncontended(bus: TdmaBus, node: str, ready: float, size_bytes: int):
    frames = []
    needed = bus.frames_needed(size_bytes)
    for window in bus.owner_slot_occurrences(node, ready):
        frames.append(window)
        if len(frames) == needed:
            break
    return Transmission(sender=node, frames=tuple(frames))
