"""Fault-tolerant schedule length estimation (paper §6, as in [13]).

The exact conditional scheduler is exponential in ``k``; design-space
exploration needs a cost function that is cheap, deterministic and a
*sound upper bound* of the worst-case schedule length. Like the
authors' optimization loop, we list-schedule the fault-free timeline
and account for faults with **recovery-slack sharing**:

* every copy carries its own recovery slack — the extra time it needs
  if it absorbs as many of the ``k`` faults as it can recover from
  (:meth:`repro.policies.recovery.CopyExecution.recovery_slack`);
* copies on one node share a slack window: because the ``k`` faults
  are a single global budget, splitting them between two co-located
  copies is always dominated by concentrating them on the one with the
  larger per-fault cost, so the shared slack is the *max*, not the
  sum, of the individual slacks (running max over the node timeline);
* a cross-node consumer sees the producer's worst-case finish — the
  message is budgeted at its latest time, i.e. node-level transparent
  recovery as in Kandasamy et al. [19] and [13];
* a consumer of a replicated producer waits for **all** copies: with
  ``k >= 1`` faults the adversary can silently kill every copy but the
  slowest, so only the max over copies is guaranteed (and replicas
  therefore add no recovery slack of their own — their failure costs
  no time, only redundancy).

The estimate captures exactly the trade-off the paper's Fig. 7 lives
on: re-execution pays shared recovery slack on the local node, while
replication pays duplicated load and worst-copy waiting but no slack.

Like the authors' estimator it is an *estimate*, not a certified
bound: the exact conditional scheduler additionally pays
condition-broadcast frames and knowledge waits on the bus (at most one
TDMA round per observed fault and per cross-node dependency), which
the estimate does not model. Final designs should be validated with
:func:`repro.schedule.conditional.synthesize_schedule` plus
:func:`repro.runtime.verify.verify_tolerance` where feasible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Mapping

from repro.comm.reservations import BusReservations
from repro.comm.tdma import TdmaBus
from repro.errors import SchedulingError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.recovery import CopyExecution
from repro.policies.types import PolicyAssignment
from repro.schedule.mapping import CopyMapping
from repro.schedule.priorities import partial_critical_path_priorities

CopyKey = tuple[str, int]


@dataclass(frozen=True)
class CopyTiming:
    """Estimated timing of one copy."""

    node: str
    start: float
    ff_finish: float
    wc_finish: float


@dataclass
class FtEstimate:
    """Result of the slack-sharing estimation."""

    schedule_length: float
    ff_length: float
    timings: dict[CopyKey, CopyTiming]
    deadline: float
    local_deadline_violations: tuple[str, ...]

    @property
    def meets_deadline(self) -> bool:
        """True when the worst case fits the global deadline."""
        return self.schedule_length <= self.deadline + 1e-9

    @property
    def feasible(self) -> bool:
        """Global and local deadlines all met."""
        return self.meets_deadline and not self.local_deadline_violations

    def completion_bound(self, process: str) -> float:
        """Worst-case completion of one process (max over copies)."""
        return max(t.wc_finish for key, t in self.timings.items()
                   if key[0] == process)


#: Slack-sharing modes of :func:`estimate_ft_schedule`.
SLACK_SHARING_MODES = ("max", "budgeted")


class _MaxSlackPool:
    """The paper's shared-slack rule: running max of per-copy slacks."""

    def __init__(self, k: int) -> None:
        self._k = k
        self._slack = 0.0

    def add(self, execution: CopyExecution) -> float:
        """Fold one scheduled copy; return the shared slack so far."""
        self._slack = max(self._slack, execution.recovery_slack(self._k))
        return self._slack


class _BudgetedSlackPool:
    """Sound shared slack for heterogeneous recovery budgets.

    A fault distribution gives copy ``j`` some ``f_j <= R_j`` of the
    ``k`` faults; each costs ``f_j`` retries (``C/n + mu + alpha``
    each), and when the distribution exhausts the whole budget the
    final retry skips detection (``- alpha`` of the copy absorbing it,
    as in :meth:`~repro.policies.recovery.CopyExecution.
    worst_case_duration`). The shared slack is the *worst distribution
    total*, computed by a DP over the budget — which equals the
    running max whenever some copy can absorb all ``k`` faults at the
    per-fault cost of the maximum, and exceeds it exactly when copies
    saturate (``R_j < k``) and the adversary splits.
    """

    _NEG = float("-inf")

    def __init__(self, k: int) -> None:
        self._k = k
        #: best[b]: worst total slack of exactly ``b`` faults, no
        #: detection discount (used while the budget is not exhausted).
        self._best = [0.0] + [self._NEG] * k
        #: discounted[b]: ditto with the one ``- alpha`` discount of
        #: the copy taking the final, budget-exhausting fault.
        self._discounted = [self._NEG] * (k + 1)

    def add(self, execution: CopyExecution) -> float:
        """Fold one scheduled copy; return the shared slack so far."""
        k = self._k
        if k == 0:
            return 0.0
        cap = min(execution.plan.recoveries, k)
        if cap > 0:
            cost = (execution.segment_time + execution.mu
                    + execution.alpha)
            best, discounted = self._best, self._discounted
            new_best = list(best)
            new_discounted = list(discounted)
            for b in range(1, k + 1):
                for f in range(1, min(cap, b) + 1):
                    gain = f * cost
                    if best[b - f] > self._NEG:
                        new_best[b] = max(new_best[b],
                                          best[b - f] + gain)
                        new_discounted[b] = max(
                            new_discounted[b],
                            best[b - f] + gain - execution.alpha)
                    if discounted[b - f] > self._NEG:
                        new_discounted[b] = max(
                            new_discounted[b],
                            discounted[b - f] + gain)
            self._best, self._discounted = new_best, new_discounted
        # Distributions short of the full budget keep detection on
        # every retry (no discount); a full distribution discounts one.
        return max(0.0, max(self._best[:k]), self._discounted[k])


def estimate_ft_schedule(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    *,
    priorities: Mapping[str, float] | None = None,
    bus_contention: bool = True,
    slack_sharing: str = "max",
) -> FtEstimate:
    """Estimate the worst-case fault-tolerant schedule length.

    See the module docstring for the model. Raises
    :class:`SchedulingError` only on structural problems; deadline
    misses are reported in the result, not raised, because the design
    optimizer treats them as penalized costs.

    The estimate is what the tabu search minimizes — thousands of
    calls per synthesis, which is why :class:`~repro.schedule.
    estimation_cache.EstimationCache` memoizes it behind a solution
    fingerprint:

    >>> from repro.model import FaultModel
    >>> from repro.policies import PolicyAssignment, ProcessPolicy
    >>> from repro.schedule import estimate_ft_schedule
    >>> from repro.synthesis import initial_mapping
    >>> from repro.workloads import fig3_example
    >>> app, arch = fig3_example()
    >>> policies = PolicyAssignment.uniform(
    ...     app, ProcessPolicy.re_execution(1))
    >>> mapping = initial_mapping(app, arch, policies)
    >>> estimate = estimate_ft_schedule(app, arch, mapping, policies,
    ...                                 FaultModel(k=1))
    >>> print(f"worst case {estimate.schedule_length:.1f}, "
    ...       f"fault-free {estimate.ff_length:.1f}")
    worst case 362.0, fault-free 302.0
    >>> estimate.feasible
    True

    ``slack_sharing`` picks the shared-slack rule per node:

    * ``"max"`` (default) — the paper's rule: the running max of the
      per-copy slacks, justified by "concentrating all ``k`` faults on
      the costliest copy dominates any split". That argument silently
      assumes every copy can absorb all ``k`` faults; when a copy's
      recovery count is *below* ``k`` (replication hybrids), the
      adversary splits faults across saturated copies and the max is
      optimistic. Kept as the default because it is the estimator the
      paper's optimization loop uses — every published comparison
      (Fig. 7/8) is defined in its terms.
    * ``"budgeted"`` — sound for heterogeneous recovery budgets: a
      small DP distributes the ``k`` faults among the copies of the
      node (each capped at its own recovery count) and charges the
      worst total. Identical to ``"max"`` whenever every copy can
      absorb ``k`` faults and detection overheads are uniform; used by
      the fault-injection campaigns
      (:mod:`repro.campaigns`) as their certified bound, where this
      optimism was first observed empirically.
    """
    k = fault_model.k
    if slack_sharing not in SLACK_SHARING_MODES:
        raise ValueError(
            f"unknown slack_sharing {slack_sharing!r}, expected one "
            f"of {SLACK_SHARING_MODES}")
    if priorities is None:
        priorities = partial_critical_path_priorities(app, arch)
    bus = TdmaBus(arch.bus)
    reservations = BusReservations() if bus_contention else None

    # -- expand copies -------------------------------------------------------
    copies: dict[CopyKey, CopyExecution] = {}
    nodes_of_process: dict[str, list[CopyKey]] = {}
    for process_name, policy in policies.items():
        process = app.process(process_name)
        keys: list[CopyKey] = []
        for copy_index, plan in enumerate(policy.copies):
            key = (process_name, copy_index)
            node = mapping.node_of(process_name, copy_index)
            copies[key] = CopyExecution(
                wcet=process.wcet_on(node), plan=plan,
                alpha=process.alpha, mu=process.mu, chi=process.chi,
            )
            keys.append(key)
        nodes_of_process[process_name] = keys

    # -- list schedule -------------------------------------------------------
    node_free: dict[str, float] = {n: 0.0 for n in arch.node_names}
    pool_type = (_MaxSlackPool if slack_sharing == "max"
                 else _BudgetedSlackPool)
    node_slack: dict[str, _MaxSlackPool | _BudgetedSlackPool] = {
        n: pool_type(k) for n in arch.node_names
    }
    timings: dict[CopyKey, CopyTiming] = {}
    #: (message name, producer copy index) -> bus arrival time
    arrival: dict[tuple[str, int], float] = {}

    done_processes: set[str] = set()
    remaining_copies: dict[str, int] = {
        name: len(keys) for name, keys in nodes_of_process.items()
    }
    blockers: dict[str, int] = {
        name: len(app.predecessors(name)) for name in app.process_names
    }
    # Priority-first selection is cheap and fine when all releases are
    # zero; with release times it can idle a processor on a future job
    # while a ready one waits, so a non-delay (earliest-start-first,
    # priority tie-break) selection is used instead.
    non_delay = any(p.release > 0 for p in app.processes)
    ready_heap: list[tuple[float, CopyKey]] = []
    ready_pool: dict[CopyKey, None] = {}

    def release_copies(name: str) -> None:
        for key in nodes_of_process[name]:
            if non_delay:
                ready_pool[key] = None
            else:
                heapq.heappush(ready_heap, (-priorities[name], key))

    for name in app.process_names:
        if blockers[name] == 0:
            release_copies(name)

    def pop_next() -> CopyKey:
        if not non_delay:
            if not ready_heap:
                raise SchedulingError("estimation deadlock (cycle?)")
            return heapq.heappop(ready_heap)[1]
        if not ready_pool:
            raise SchedulingError("estimation deadlock (cycle?)")
        best = None
        for key in ready_pool:
            start = max(_fixed_ready(key), node_free[mapping.node_of(*key)])
            candidate = (start, -priorities[key[0]], key)
            if best is None or candidate < best:
                best = candidate
        ready_pool.pop(best[2])
        return best[2]

    def _fixed_ready(key: CopyKey) -> float:
        process = app.process(key[0])
        node = mapping.node_of(*key)
        ready = process.release
        for message in app.inputs_of(key[0]):
            for src_key in nodes_of_process[message.src]:
                if mapping.node_of(*src_key) == node:
                    ready = max(ready, timings[src_key].ff_finish)
                else:
                    ready = max(ready,
                                arrival[(message.name, src_key[1])])
        return ready

    scheduled = 0
    total_copies = len(copies)
    while scheduled < total_copies:
        key = pop_next()
        process_name, copy_index = key
        process = app.process(process_name)
        node = mapping.node_of(process_name, copy_index)
        execution = copies[key]

        earliest = max(process.release, node_free[node])
        for message in app.inputs_of(process_name):
            for src_key in nodes_of_process[message.src]:
                src_node = mapping.node_of(*src_key)
                if src_node == node:
                    # Same node: slack is shared, the fault-free finish
                    # is the dependency.
                    earliest = max(earliest, timings[src_key].ff_finish)
                else:
                    earliest = max(
                        earliest, arrival[(message.name, src_key[1])])

        duration = (execution.fault_free_duration() if k > 0
                    else execution.worst_case_duration(0))
        ff_finish = earliest + duration
        node_free[node] = ff_finish
        wc_finish = ff_finish + node_slack[node].add(execution)
        timings[key] = CopyTiming(node=node, start=earliest,
                                  ff_finish=ff_finish, wc_finish=wc_finish)
        scheduled += 1
        remaining_copies[process_name] -= 1

        if remaining_copies[process_name] == 0:
            done_processes.add(process_name)
            # Transmit every cross-node output of every copy; the
            # message is budgeted at the producer's worst-case finish
            # (node-level transparency).
            for message in app.outputs_of(process_name):
                consumer_nodes = {
                    mapping.node_of(message.dst, c)
                    for c in range(len(policies.of(message.dst).copies))
                }
                for src_key in nodes_of_process[process_name]:
                    src_node = mapping.node_of(*src_key)
                    if consumer_nodes <= {src_node}:
                        continue
                    send_time = timings[src_key].wc_finish
                    if reservations is not None:
                        transmission = bus.schedule_transmission(
                            src_node, send_time, message.size_bytes,
                            reservations)
                    else:
                        transmission = _uncontended(
                            bus, src_node, send_time, message.size_bytes)
                    arrival[(message.name, src_key[1])] = \
                        transmission.arrival
            # Release successors whose predecessors are all complete.
            for successor in app.successors(process_name):
                blockers[successor] -= 1
                if blockers[successor] == 0:
                    release_copies(successor)

    # -- results -------------------------------------------------------------
    schedule_length = max(t.wc_finish for t in timings.values())
    ff_length = max(t.ff_finish for t in timings.values())
    violations = []
    for process in app.processes:
        if process.deadline is None:
            continue
        bound = max(timings[key].wc_finish
                    for key in nodes_of_process[process.name])
        if bound > process.deadline + 1e-9:
            violations.append(process.name)
    return FtEstimate(
        schedule_length=schedule_length,
        ff_length=ff_length,
        timings=timings,
        deadline=app.deadline,
        local_deadline_violations=tuple(violations),
    )


def _uncontended(bus: TdmaBus, node: str, ready: float, size_bytes: int):
    from repro.comm.tdma import Transmission

    frames = []
    needed = bus.frames_needed(size_bytes)
    for window in bus.owner_slot_occurrences(node, ready):
        frames.append(window)
        if len(frames) == needed:
            break
    return Transmission(sender=node, frames=tuple(frames))
