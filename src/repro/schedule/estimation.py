"""Fault-tolerant schedule length estimation (paper §6, as in [13]).

The exact conditional scheduler is exponential in ``k``; design-space
exploration needs a cost function that is cheap, deterministic and a
*sound upper bound* of the worst-case schedule length. Like the
authors' optimization loop, we list-schedule the fault-free timeline
and account for faults with **recovery-slack sharing**:

* every copy carries its own recovery slack — the extra time it needs
  if it absorbs as many of the ``k`` faults as it can recover from
  (:meth:`repro.policies.recovery.CopyExecution.recovery_slack`);
* copies on one node share a slack window: because the ``k`` faults
  are a single global budget, splitting them between two co-located
  copies is always dominated by concentrating them on the one with the
  larger per-fault cost, so the shared slack is the *max*, not the
  sum, of the individual slacks (running max over the node timeline);
* a cross-node consumer sees the producer's worst-case finish — the
  message is budgeted at its latest time, i.e. node-level transparent
  recovery as in Kandasamy et al. [19] and [13];
* a consumer of a replicated producer waits for **all** copies: with
  ``k >= 1`` faults the adversary can silently kill every copy but the
  slowest, so only the max over copies is guaranteed (and replicas
  therefore add no recovery slack of their own — their failure costs
  no time, only redundancy).

The estimate captures exactly the trade-off the paper's Fig. 7 lives
on: re-execution pays shared recovery slack on the local node, while
replication pays duplicated load and worst-copy waiting but no slack.

Like the authors' estimator it is an *estimate*, not a certified
bound: the exact conditional scheduler additionally pays
condition-broadcast frames and knowledge waits on the bus (at most one
TDMA round per observed fault and per cross-node dependency), which
the estimate does not model — and for replicated designs it may
serialize co-located replicas in a different order than this list
schedule, exceeding the estimate by whole WCETs (which is why the
campaign/verify bound of :func:`repro.campaigns.stats.estimate_bound`
is floored at the exact tables' worst case). Final designs should be
validated with
:func:`repro.schedule.conditional.synthesize_schedule` plus
:func:`repro.runtime.verify.verify_tolerance` where feasible.

Incremental re-evaluation
-------------------------

Design optimization evaluates thousands of candidates that differ
from their parent by a *single* move (one copy remapped, one policy
replaced). :class:`EstimatorState` therefore keeps, alongside the
:class:`FtEstimate`, a replayable trace of the run — the pop order of
the list scheduler, the shared-slack value after every pop, and the
bus transmissions issued at every process completion. Re-evaluating a
moved solution (:meth:`EstimatorState.reevaluate`) replays the trace
prefix that provably cannot have changed and re-runs the scheduler
only from the first position the move can influence. The replay is
**exact**: prefix timings and bus frames are reused verbatim (no
float is recomputed), and the suffix runs the identical algorithm
from identical intermediate state, so the incremental estimate is
bit-identical to a full :func:`estimate_ft_schedule` — the full
recompute stays available as the oracle the tests and benchmarks
compare against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Mapping

from repro.comm.reservations import BusReservations
from repro.comm.tdma import TdmaBus, Transmission
from repro.errors import SchedulingError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.recovery import CopyExecution
from repro.policies.types import PolicyAssignment
from repro.schedule.mapping import CopyMapping
from repro.schedule.priorities import partial_critical_path_priorities

CopyKey = tuple[str, int]

#: One recorded transmission: (message name, producer copy index,
#: scheduled frames). Replay re-reserves the frames verbatim.
SendRecord = tuple[str, int, Transmission]

Fingerprint = tuple


def solution_fingerprint(policies: PolicyAssignment,
                         mapping: CopyMapping) -> Fingerprint:
    """Canonical, hashable identity of one (policies, mapping) solution.

    Sorted by process name so two solutions built in different orders
    fingerprint identically; per process it captures every copy's
    recovery plan and placement — exactly the inputs the estimator
    reads from the solution.
    """
    parts = []
    for name, policy in sorted(policies.items()):
        plans = tuple((plan.recoveries, plan.checkpoints)
                      for plan in policy.copies)
        nodes = tuple(mapping.node_of(name, copy)
                      for copy in range(len(policy.copies)))
        parts.append((name, plans, nodes))
    return tuple(parts)


@dataclass(frozen=True)
class CopyTiming:
    """Estimated timing of one copy."""

    node: str
    start: float
    ff_finish: float
    wc_finish: float


@dataclass
class FtEstimate:
    """Result of the slack-sharing estimation."""

    schedule_length: float
    ff_length: float
    timings: dict[CopyKey, CopyTiming]
    deadline: float
    local_deadline_violations: tuple[str, ...]

    @property
    def meets_deadline(self) -> bool:
        """True when the worst case fits the global deadline."""
        return self.schedule_length <= self.deadline + 1e-9

    @property
    def feasible(self) -> bool:
        """Global and local deadlines all met."""
        return self.meets_deadline and not self.local_deadline_violations

    def completion_bound(self, process: str) -> float:
        """Worst-case completion of one process (max over copies)."""
        return max(t.wc_finish for key, t in self.timings.items()
                   if key[0] == process)


#: Slack-sharing modes of :func:`estimate_ft_schedule`.
SLACK_SHARING_MODES = ("max", "budgeted")


class _CopyCost:
    """Per-copy constants of one run chain, computed once per copy.

    The estimator reads only three numbers per scheduled copy: its
    execution calculator (for the budgeted DP), its fault-free
    duration, and its recovery slack at the run's fault budget. All
    three are pure functions of the immutable
    :class:`~repro.policies.recovery.CopyExecution`, so they are
    precomputed at copy expansion and shared across incremental
    re-evaluations instead of being recomputed at every pop.
    """

    __slots__ = ("execution", "duration", "slack")

    def __init__(self, execution: CopyExecution, k: int) -> None:
        self.execution = execution
        self.duration = (execution.fault_free_duration() if k > 0
                         else execution.worst_case_duration(0))
        self.slack = execution.recovery_slack(k)


class _MaxSlackPool:
    """The paper's shared-slack rule: running max of per-copy slacks."""

    __slots__ = ("_slack",)

    def __init__(self, k: int) -> None:
        self._slack = 0.0

    def add(self, cost: _CopyCost) -> float:
        """Fold one scheduled copy; return the shared slack so far."""
        if cost.slack > self._slack:
            self._slack = cost.slack
        return self._slack

    def resume(self, slack: float) -> None:
        """Restore the pool to a recorded running-max value.

        Used by trace replay: the value returned by :meth:`add` *is*
        the complete pool state for this rule, so replay restores it
        directly instead of re-folding the prefix copies.
        """
        self._slack = slack


class _BudgetedSlackPool:
    """Sound shared slack for heterogeneous recovery budgets.

    A fault distribution gives copy ``j`` some ``f_j <= R_j`` of the
    ``k`` faults; each costs ``f_j`` retries (``C/n + mu + alpha``
    each), and when the distribution exhausts the whole budget the
    final retry skips detection (``- alpha`` of the copy absorbing it,
    as in :meth:`~repro.policies.recovery.CopyExecution.
    worst_case_duration`). The shared slack is the *worst distribution
    total*, computed by a DP over the budget — which equals the
    running max whenever some copy can absorb all ``k`` faults at the
    per-fault cost of the maximum, and exceeds it exactly when copies
    saturate (``R_j < k``) and the adversary splits.
    """

    _NEG = float("-inf")

    def __init__(self, k: int) -> None:
        self._k = k
        #: best[b]: worst total slack of exactly ``b`` faults, no
        #: detection discount (used while the budget is not exhausted).
        self._best = [0.0] + [self._NEG] * k
        #: discounted[b]: ditto with the one ``- alpha`` discount of
        #: the copy taking the final, budget-exhausting fault.
        self._discounted = [self._NEG] * (k + 1)

    def add(self, cost: _CopyCost) -> float:
        """Fold one scheduled copy; return the shared slack so far."""
        k = self._k
        if k == 0:
            return 0.0
        execution = cost.execution
        cap = min(execution.plan.recoveries, k)
        if cap > 0:
            per_fault = (execution.segment_time + execution.mu
                         + execution.alpha)
            best, discounted = self._best, self._discounted
            new_best = list(best)
            new_discounted = list(discounted)
            for b in range(1, k + 1):
                for f in range(1, min(cap, b) + 1):
                    gain = f * per_fault
                    if best[b - f] > self._NEG:
                        new_best[b] = max(new_best[b],
                                          best[b - f] + gain)
                        new_discounted[b] = max(
                            new_discounted[b],
                            best[b - f] + gain - execution.alpha)
                    if discounted[b - f] > self._NEG:
                        new_discounted[b] = max(
                            new_discounted[b],
                            discounted[b - f] + gain)
            self._best, self._discounted = new_best, new_discounted
        # Distributions short of the full budget keep detection on
        # every retry (no discount); a full distribution discounts one.
        return max(0.0, max(self._best[:k]), self._discounted[k])


class _AppStructure:
    """Static per-application lookup tables shared across runs.

    The application accessors (``predecessors``, ``successors``,
    ``inputs_of``, ``outputs_of``) rebuild tuples on every call; one
    estimation chain asks for them thousands of times with identical
    answers, so they are materialized once and shared by every run of
    the chain.
    """

    __slots__ = ("blockers", "successors", "inputs", "outputs")

    def __init__(self, app: Application) -> None:
        names = app.process_names
        self.blockers = {name: len(app.predecessors(name))
                         for name in names}
        self.successors = {name: app.successors(name) for name in names}
        self.inputs = {name: app.inputs_of(name) for name in names}
        self.outputs = {name: app.outputs_of(name) for name in names}


class EstimatorState:
    """One completed estimation run plus its replayable trace.

    The state binds the evaluated solution and settings to the
    resulting :class:`FtEstimate` and keeps what the incremental path
    needs: the scheduler's pop order, the per-pop shared-slack value,
    the recorded bus transmissions, and each process's first-pop and
    completion positions. :meth:`reevaluate` produces the state of a
    single-process move in (empirically) a fraction of a full run —
    bit-identically, with the full run kept as the oracle.

    States are immutable in practice (nothing mutates them after
    construction) and safely shareable between cache entries: prefix
    traces of child states alias the parent's records.
    """

    __slots__ = (
        "app", "arch", "mapping", "policies", "k", "priorities",
        "bus_contention", "slack_sharing", "estimate",
        "_copies", "_keys_of", "_pops", "_post_slack", "_sends",
        "_first_pop", "_completion", "_non_delay",
        "_structure", "_bus", "_send_memo",
    )

    def __init__(self, *, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 k: int, priorities: dict[str, float],
                 bus_contention: bool, slack_sharing: str,
                 estimate: FtEstimate,
                 copies: dict[CopyKey, _CopyCost],
                 keys_of: dict[str, tuple[CopyKey, ...]],
                 pops: tuple[CopyKey, ...],
                 post_slack: tuple[float, ...],
                 sends: dict[str, tuple[SendRecord, ...]],
                 first_pop: dict[str, int],
                 completion: dict[str, int],
                 non_delay: bool,
                 structure: "_AppStructure",
                 bus: TdmaBus,
                 send_memo: dict) -> None:
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.policies = policies
        self.k = k
        self.priorities = priorities
        self.bus_contention = bus_contention
        self.slack_sharing = slack_sharing
        self.estimate = estimate
        self._copies = copies
        self._keys_of = keys_of
        self._pops = pops
        self._post_slack = post_slack
        self._sends = sends
        self._first_pop = first_pop
        self._completion = completion
        self._non_delay = non_delay
        self._structure = structure
        self._bus = bus
        self._send_memo = send_memo

    # -- construction ---------------------------------------------------------

    @classmethod
    def compute(
        cls,
        app: Application,
        arch: Architecture,
        mapping: CopyMapping,
        policies: PolicyAssignment,
        fault_model: FaultModel,
        *,
        priorities: Mapping[str, float] | None = None,
        bus_contention: bool = True,
        slack_sharing: str = "max",
    ) -> "EstimatorState":
        """Full evaluation — the oracle the incremental path must match."""
        if slack_sharing not in SLACK_SHARING_MODES:
            raise ValueError(
                f"unknown slack_sharing {slack_sharing!r}, expected one "
                f"of {SLACK_SHARING_MODES}")
        # The array-compiled kernel performs the identical arithmetic
        # in the identical order over precompiled tables;
        # REPRO_KERNELS=0 forces this pure-Python oracle.
        from repro.kernels import kernels_enabled
        if kernels_enabled():
            from repro.kernels.estimator import kernel_compute
            return kernel_compute(
                app, arch, mapping, policies, fault_model,
                priorities=priorities, bus_contention=bus_contention,
                slack_sharing=slack_sharing)
        if priorities is None:
            priorities = partial_critical_path_priorities(app, arch)
        run = _EstimationRun(app, arch, mapping, policies,
                             fault_model.k, dict(priorities),
                             bus_contention, slack_sharing)
        return run.execute()

    # -- incremental path -----------------------------------------------------

    @property
    def supports_delta(self) -> bool:
        """False when release times forced timing-dependent selection.

        With non-zero release times the list scheduler selects by
        earliest start, so the pop order depends on timing and the
        prefix-replay argument breaks; :meth:`reevaluate` then falls
        back to a full recompute.
        """
        return not self._non_delay

    def reevaluate(self, policies: PolicyAssignment,
                   mapping: CopyMapping,
                   changed: str) -> "EstimatorState":
        """Evaluate a solution differing from this one only at ``changed``.

        ``changed`` names the single process whose policy and/or copy
        placement differs (the ``process`` of a
        :class:`~repro.synthesis.moves.RemapMove` /
        :class:`~repro.synthesis.moves.PolicyMove`); every other
        process must be untouched. Returns a fresh state whose
        estimate is bit-identical to
        :meth:`compute` on the new solution: the scheduler trace is
        replayed up to the first position the change can influence and
        re-run from there.
        """
        if self._non_delay:
            return self._full(policies, mapping)
        divergence = self._divergence_position(policies, mapping, changed)
        if divergence <= 0:
            return self._full(policies, mapping)
        run = _EstimationRun(self.app, self.arch, mapping, policies,
                             self.k, self.priorities,
                             self.bus_contention, self.slack_sharing,
                             reuse_from=self, changed=changed)
        return run.execute(parent=self, divergence=divergence)

    def _full(self, policies: PolicyAssignment,
              mapping: CopyMapping) -> "EstimatorState":
        run = _EstimationRun(self.app, self.arch, mapping, policies,
                             self.k, self.priorities,
                             self.bus_contention, self.slack_sharing,
                             reuse_from=self)
        return run.execute()

    def _divergence_position(self, policies: PolicyAssignment,
                             mapping: CopyMapping, changed: str) -> int:
        """First trace position the move can influence.

        That is the first pop of ``changed`` itself — everything
        earlier is structurally and numerically independent of the
        moved process — unless a message *into* ``changed`` changes
        its on-bus decision: a producer skips the bus when all
        consumer copies share its node, so moving the consumer can
        add or remove a prefix transmission. In that case divergence
        starts at that producer's completion.
        """
        try:
            position = self._first_pop[changed]
        except KeyError:
            raise SchedulingError(
                f"unknown process {changed!r} in delta "
                "re-evaluation") from None
        old_policy = self.policies.of(changed)
        new_policy = policies.of(changed)
        old_nodes = {self.mapping.node_of(changed, c)
                     for c in range(len(old_policy.copies))}
        new_nodes = {mapping.node_of(changed, c)
                     for c in range(len(new_policy.copies))}
        if old_nodes == new_nodes:
            return position
        for message in self.app.inputs_of(changed):
            producer = message.src
            done_at = self._completion.get(producer)
            if done_at is None or done_at >= position:
                continue
            for src_key in self._keys_of[producer]:
                src_node = self.mapping.node_of(*src_key)
                if ((old_nodes <= {src_node})
                        != (new_nodes <= {src_node})):
                    position = min(position, done_at)
                    break
        return position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EstimatorState({len(self._pops)} copies, "
                f"k={self.k}, {self.slack_sharing!r}, "
                f"length={self.estimate.schedule_length})")


class _EstimationRun:
    """One execution of the slack-sharing list scheduler.

    Covers both entry points: a full run records the trace from
    position zero; an incremental run first replays a parent trace
    prefix (reusing its timings, slack values and bus frames verbatim)
    and then falls into the identical main loop.
    """

    def __init__(self, app: Application, arch: Architecture,
                 mapping: CopyMapping, policies: PolicyAssignment,
                 k: int, priorities: dict[str, float],
                 bus_contention: bool, slack_sharing: str, *,
                 reuse_from: EstimatorState | None = None,
                 changed: str | None = None) -> None:
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.policies = policies
        self.k = k
        self.priorities = priorities
        self.bus_contention = bus_contention
        self.slack_sharing = slack_sharing
        self.reservations = BusReservations() if bus_contention else None

        # -- shared run-chain context -----------------------------------------
        if reuse_from is not None:
            self.structure = reuse_from._structure
            self.bus = reuse_from._bus
            self.send_memo = reuse_from._send_memo
        else:
            self.structure = _AppStructure(app)
            self.bus = TdmaBus(arch.bus)
            self.send_memo = {}

        # -- expand copies ----------------------------------------------------
        if reuse_from is not None and changed is not None:
            # Only the changed process's executions can differ; every
            # other copy cost is immutable and shared verbatim.
            self.copies = dict(reuse_from._copies)
            self.keys_of = dict(reuse_from._keys_of)
            for copy_index in range(
                    len(reuse_from.policies.of(changed).copies)):
                del self.copies[(changed, copy_index)]
            self._expand_process(changed)
        else:
            self.copies = {}
            self.keys_of = {}
            for process_name, _policy in policies.items():
                self._expand_process(process_name)

        # -- scheduler state --------------------------------------------------
        self.node_free: dict[str, float] = {
            n: 0.0 for n in arch.node_names}
        pool_type = (_MaxSlackPool if slack_sharing == "max"
                     else _BudgetedSlackPool)
        self.node_slack: dict[str, _MaxSlackPool | _BudgetedSlackPool]
        self.node_slack = {n: pool_type(k) for n in arch.node_names}
        self.timings: dict[CopyKey, CopyTiming] = {}
        #: (message name, producer copy index) -> bus arrival time
        self.arrival: dict[tuple[str, int], float] = {}
        self.remaining: dict[str, int] = {
            name: len(keys) for name, keys in self.keys_of.items()}
        self.blockers: dict[str, int] = dict(self.structure.blockers)

        # -- trace ------------------------------------------------------------
        self.pops: list[CopyKey] = []
        self.post_slack: list[float] = []
        self.sends: dict[str, tuple[SendRecord, ...]] = {}
        self.first_pop: dict[str, int] = {}
        self.completion: dict[str, int] = {}

        # Priority-first selection is cheap and fine when all releases
        # are zero; with release times it can idle a processor on a
        # future job while a ready one waits, so a non-delay
        # (earliest-start-first, priority tie-break) selection is used
        # instead.
        self.non_delay = any(p.release > 0 for p in app.processes)
        self.ready_heap: list[tuple[float, CopyKey]] = []
        self.ready_pool: dict[CopyKey, None] = {}

    def _expand_process(self, process_name: str) -> None:
        process = self.app.process(process_name)
        keys: list[CopyKey] = []
        for copy_index, plan in enumerate(
                self.policies.of(process_name).copies):
            key = (process_name, copy_index)
            node = self.mapping.node_of(process_name, copy_index)
            execution = CopyExecution(
                wcet=process.wcet_on(node), plan=plan,
                alpha=process.alpha, mu=process.mu, chi=process.chi,
            )
            self.copies[key] = _CopyCost(execution, self.k)
            keys.append(key)
        self.keys_of[process_name] = tuple(keys)

    # -- ready-set plumbing ---------------------------------------------------

    def _release_copies(self, name: str) -> None:
        for key in self.keys_of[name]:
            if self.non_delay:
                self.ready_pool[key] = None
            else:
                heapq.heappush(self.ready_heap,
                               (-self.priorities[name], key))

    def _pop_next(self) -> CopyKey:
        if not self.non_delay:
            if not self.ready_heap:
                raise SchedulingError("estimation deadlock (cycle?)")
            return heapq.heappop(self.ready_heap)[1]
        if not self.ready_pool:
            raise SchedulingError("estimation deadlock (cycle?)")
        best = None
        for key in self.ready_pool:
            start = max(self._fixed_ready(key),
                        self.node_free[self.mapping.node_of(*key)])
            candidate = (start, -self.priorities[key[0]], key)
            if best is None or candidate < best:
                best = candidate
        self.ready_pool.pop(best[2])
        return best[2]

    def _fixed_ready(self, key: CopyKey) -> float:
        process = self.app.process(key[0])
        node = self.mapping.node_of(*key)
        ready = process.release
        for message in self.structure.inputs[key[0]]:
            for src_key in self.keys_of[message.src]:
                if self.mapping.node_of(*src_key) == node:
                    ready = max(ready, self.timings[src_key].ff_finish)
                else:
                    ready = max(ready,
                                self.arrival[(message.name, src_key[1])])
        return ready

    # -- replay ---------------------------------------------------------------

    def _replay(self, parent: EstimatorState, divergence: int) -> None:
        """Restore the scheduler state at trace position ``divergence``.

        Everything strictly before the divergence position is
        position-for-position identical between the parent run and a
        full run of the moved solution (see
        :meth:`EstimatorState._divergence_position`). Timings, bus
        transmissions and (in ``"max"`` mode) slack-pool values are
        adopted verbatim; the ``"budgeted"`` DP pool has internal
        state beyond its returned value, so it is re-folded over the
        same executions in the same order — deterministic identical
        arithmetic, hence still bit-identical to the oracle.
        """
        refold = self.slack_sharing != "max"
        prefix_pops = parent._pops[:divergence]
        prefix_slack = parent._post_slack[:divergence]
        self.pops.extend(prefix_pops)
        self.post_slack.extend(prefix_slack)
        # The timings dict of any state is insertion-ordered by pop
        # position, so the prefix items come straight off the front.
        timings = self.timings
        node_free = self.node_free
        node_slack = self.node_slack
        remaining = self.remaining
        first_pop = self.first_pop
        successors_of = self.structure.successors
        popped: dict[str, int] = {}
        parent_items = iter(parent.estimate.timings.items())
        for position in range(divergence):
            key, timing = next(parent_items)
            name = key[0]
            timings[key] = timing
            node_free[timing.node] = timing.ff_finish
            if refold:
                node_slack[timing.node].add(self.copies[key])
            else:
                node_slack[timing.node].resume(prefix_slack[position])
            if name not in first_pop:
                first_pop[name] = position
            popped[name] = popped.get(name, 0) + 1
            remaining[name] -= 1
            if remaining[name] == 0:
                self.completion[name] = position
                records = parent._sends[name]
                self.sends[name] = records
                for message_name, copy_index, transmission in records:
                    self.arrival[(message_name, copy_index)] = \
                        transmission.arrival
                    if self.reservations is not None:
                        for frame in transmission.frames:
                            self.reservations.reserve(
                                (frame.round_index, frame.slot_index))
                for successor in successors_of[name]:
                    self.blockers[successor] -= 1
        # Rebuild the ready heap: every copy of a released process that
        # was not popped in the prefix. Copies of one process pop in
        # index order (equal priority, tuple tie-break), so the popped
        # ones are exactly the leading slice of its key list. heapq
        # results depend only on contents, never on insertion history.
        entries = []
        for name, keys in self.keys_of.items():
            if self.blockers[name] != 0:
                continue
            for key in keys[popped.get(name, 0):]:
                entries.append((-self.priorities[name], key))
        heapq.heapify(entries)
        self.ready_heap = entries

    # -- main loop ------------------------------------------------------------

    def execute(self, *, parent: EstimatorState | None = None,
                divergence: int = 0) -> EstimatorState:
        if parent is not None:
            self._replay(parent, divergence)
        else:
            for name in self.app.process_names:
                if self.blockers[name] == 0:
                    self._release_copies(name)

        structure = self.structure
        scheduled = len(self.pops)
        total_copies = len(self.copies)
        while scheduled < total_copies:
            key = self._pop_next()
            process_name, copy_index = key
            process = self.app.process(process_name)
            node = self.mapping.node_of(process_name, copy_index)
            cost = self.copies[key]
            position = len(self.pops)
            self.pops.append(key)
            if process_name not in self.first_pop:
                self.first_pop[process_name] = position

            earliest = max(process.release, self.node_free[node])
            for message in structure.inputs[process_name]:
                for src_key in self.keys_of[message.src]:
                    src_node = self.mapping.node_of(*src_key)
                    if src_node == node:
                        # Same node: slack is shared, the fault-free
                        # finish is the dependency.
                        earliest = max(earliest,
                                       self.timings[src_key].ff_finish)
                    else:
                        earliest = max(
                            earliest,
                            self.arrival[(message.name, src_key[1])])

            ff_finish = earliest + cost.duration
            self.node_free[node] = ff_finish
            shared_slack = self.node_slack[node].add(cost)
            self.post_slack.append(shared_slack)
            wc_finish = ff_finish + shared_slack
            self.timings[key] = CopyTiming(
                node=node, start=earliest,
                ff_finish=ff_finish, wc_finish=wc_finish)
            scheduled += 1
            self.remaining[process_name] -= 1

            if self.remaining[process_name] == 0:
                self.completion[process_name] = position
                # Transmit every cross-node output of every copy; the
                # message is budgeted at the producer's worst-case
                # finish (node-level transparency).
                records: list[SendRecord] = []
                for message in structure.outputs[process_name]:
                    consumer_nodes = {
                        self.mapping.node_of(message.dst, c)
                        for c in range(
                            len(self.policies.of(message.dst).copies))
                    }
                    for src_key in self.keys_of[process_name]:
                        src_node = self.mapping.node_of(*src_key)
                        if consumer_nodes <= {src_node}:
                            continue
                        send_time = self.timings[src_key].wc_finish
                        if self.reservations is not None:
                            transmission = \
                                self.bus.schedule_transmission(
                                    src_node, send_time,
                                    message.size_bytes,
                                    self.reservations)
                        else:
                            transmission = self._uncontended_cached(
                                src_node, send_time,
                                message.size_bytes)
                        self.arrival[(message.name, src_key[1])] = \
                            transmission.arrival
                        records.append(
                            (message.name, src_key[1], transmission))
                self.sends[process_name] = tuple(records)
                # Release successors whose predecessors are all
                # complete.
                for successor in structure.successors[process_name]:
                    self.blockers[successor] -= 1
                    if self.blockers[successor] == 0:
                        self._release_copies(successor)

        return self._finish()

    def _uncontended_cached(self, node: str, ready: float,
                            size_bytes: int) -> Transmission:
        """Uncontended transmissions memoized across the run chain.

        Without reservations a transmission is a pure function of
        (sender, ready time, payload size); incremental walks re-issue
        the same sends constantly, so the slot search is shared via
        the chain's memo. Bounded defensively — one chain sees a few
        thousand distinct sends in practice.
        """
        memo_key = (node, ready, size_bytes)
        transmission = self.send_memo.get(memo_key)
        if transmission is None:
            transmission = _uncontended(self.bus, node, ready,
                                        size_bytes)
            if len(self.send_memo) >= 200_000:
                self.send_memo.clear()
            self.send_memo[memo_key] = transmission
        return transmission

    def _finish(self) -> EstimatorState:
        schedule_length = max(t.wc_finish for t in self.timings.values())
        ff_length = max(t.ff_finish for t in self.timings.values())
        violations = []
        for process in self.app.processes:
            if process.deadline is None:
                continue
            bound = max(self.timings[key].wc_finish
                        for key in self.keys_of[process.name])
            if bound > process.deadline + 1e-9:
                violations.append(process.name)
        estimate = FtEstimate(
            schedule_length=schedule_length,
            ff_length=ff_length,
            timings=self.timings,
            deadline=self.app.deadline,
            local_deadline_violations=tuple(violations),
        )
        return EstimatorState(
            app=self.app, arch=self.arch, mapping=self.mapping,
            policies=self.policies, k=self.k,
            priorities=self.priorities,
            bus_contention=self.bus_contention,
            slack_sharing=self.slack_sharing,
            estimate=estimate,
            copies=self.copies, keys_of=self.keys_of,
            pops=tuple(self.pops),
            post_slack=tuple(self.post_slack),
            sends=self.sends,
            first_pop=self.first_pop,
            completion=self.completion,
            non_delay=self.non_delay,
            structure=self.structure,
            bus=self.bus,
            send_memo=self.send_memo,
        )


def estimate_ft_schedule(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    *,
    priorities: Mapping[str, float] | None = None,
    bus_contention: bool = True,
    slack_sharing: str = "max",
) -> FtEstimate:
    """Estimate the worst-case fault-tolerant schedule length.

    See the module docstring for the model. Raises
    :class:`SchedulingError` only on structural problems; deadline
    misses are reported in the result, not raised, because the design
    optimizer treats them as penalized costs.

    The estimate is what the tabu search minimizes — thousands of
    calls per synthesis, which is why the
    :class:`~repro.eval.Evaluator` core memoizes it behind a solution
    fingerprint and re-evaluates single-move neighbors incrementally
    (:class:`EstimatorState`):

    >>> from repro.model import FaultModel
    >>> from repro.policies import PolicyAssignment, ProcessPolicy
    >>> from repro.schedule import estimate_ft_schedule
    >>> from repro.synthesis import initial_mapping
    >>> from repro.workloads import fig3_example
    >>> app, arch = fig3_example()
    >>> policies = PolicyAssignment.uniform(
    ...     app, ProcessPolicy.re_execution(1))
    >>> mapping = initial_mapping(app, arch, policies)
    >>> estimate = estimate_ft_schedule(app, arch, mapping, policies,
    ...                                 FaultModel(k=1))
    >>> print(f"worst case {estimate.schedule_length:.1f}, "
    ...       f"fault-free {estimate.ff_length:.1f}")
    worst case 362.0, fault-free 302.0
    >>> estimate.feasible
    True

    ``slack_sharing`` picks the shared-slack rule per node:

    * ``"max"`` (default) — the paper's rule: the running max of the
      per-copy slacks, justified by "concentrating all ``k`` faults on
      the costliest copy dominates any split". That argument silently
      assumes every copy can absorb all ``k`` faults; when a copy's
      recovery count is *below* ``k`` (replication hybrids), the
      adversary splits faults across saturated copies and the max is
      optimistic. Kept as the default because it is the estimator the
      paper's optimization loop uses — every published comparison
      (Fig. 7/8) is defined in its terms.
    * ``"budgeted"`` — sound for heterogeneous recovery budgets: a
      small DP distributes the ``k`` faults among the copies of the
      node (each capped at its own recovery count) and charges the
      worst total. Identical to ``"max"`` whenever every copy can
      absorb ``k`` faults and detection overheads are uniform; used by
      the fault-injection campaigns
      (:mod:`repro.campaigns`) as their certified bound, where this
      optimism was first observed empirically.
    """
    return EstimatorState.compute(
        app, arch, mapping, policies, fault_model,
        priorities=priorities, bus_contention=bus_contention,
        slack_sharing=slack_sharing).estimate


def _uncontended(bus: TdmaBus, node: str, ready: float, size_bytes: int):
    frames = []
    needed = bus.frames_needed(size_bytes)
    for window in bus.owner_slot_occurrences(node, ready):
        frames.append(window)
        if len(frames) == needed:
            break
    return Transmission(sender=node, frames=tuple(frames))
