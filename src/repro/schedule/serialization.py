"""Serialization of schedule tables.

Paper §5.2: "Only one part of the table has to be stored in each node,
namely, the part concerning decisions that are taken by the
corresponding scheduler." This module turns a
:class:`~repro.schedule.table.ScheduleSet` into a JSON document (whole,
or filtered per node for deployment) and back, with a lossless
round-trip — the artifact a build system would flash into each node's
static memory.
"""

from __future__ import annotations

import json
from typing import Any

from repro.comm.tdma import FrameWindow
from repro.errors import ValidationError
from repro.ftcpg.conditions import AttemptId, ConditionLiteral, Guard
from repro.schedule.table import (
    EntryKind,
    LeafScenario,
    ScheduleSet,
    TableEntry,
)

#: Format identifier embedded in every document.
FORMAT = "repro.schedule-set"
VERSION = 1


def _attempt_to_json(attempt: AttemptId) -> list:
    return [attempt.process, attempt.copy, attempt.segment,
            attempt.attempt]


def _attempt_from_json(data: list) -> AttemptId:
    return AttemptId(str(data[0]), int(data[1]), int(data[2]),
                     int(data[3]))


def _guard_to_json(guard: Guard) -> list:
    return [[_attempt_to_json(lit.attempt), lit.faulty]
            for lit in guard.literals]


def _guard_from_json(data: list) -> Guard:
    return Guard(ConditionLiteral(_attempt_from_json(item[0]),
                                  bool(item[1]))
                 for item in data)


def _entry_to_json(entry: TableEntry) -> dict[str, Any]:
    return {
        "kind": entry.kind.value,
        "location": entry.location,
        "guard": _guard_to_json(entry.guard),
        "start": entry.start,
        "duration": entry.duration,
        "attempt": (_attempt_to_json(entry.attempt)
                    if entry.attempt is not None else None),
        "message": entry.message,
        "producer_copy": entry.producer_copy,
        "frames": [[f.round_index, f.slot_index, f.start, f.end]
                   for f in entry.frames],
        "can_fail": entry.can_fail,
    }


def _entry_from_json(data: dict[str, Any]) -> TableEntry:
    return TableEntry(
        kind=EntryKind(data["kind"]),
        location=data["location"],
        guard=_guard_from_json(data["guard"]),
        start=float(data["start"]),
        duration=float(data["duration"]),
        attempt=(_attempt_from_json(data["attempt"])
                 if data["attempt"] is not None else None),
        message=data["message"],
        producer_copy=data["producer_copy"],
        frames=tuple(FrameWindow(int(f[0]), int(f[1]), float(f[2]),
                                 float(f[3]))
                     for f in data["frames"]),
        can_fail=bool(data["can_fail"]),
    )


def schedule_to_dict(schedule: ScheduleSet,
                     *, node: str | None = None) -> dict[str, Any]:
    """Serialize a schedule set (optionally one node's slice).

    With ``node``, only that location's entries are included — the
    per-node deployment artifact of paper §5.2. (Bus entries are kept
    in every slice: each communication controller needs the frame
    plan.)
    """
    entries = schedule.entries
    if node is not None:
        entries = tuple(e for e in entries
                        if e.location in (node, "bus"))
    return {
        "format": FORMAT,
        "version": VERSION,
        "node": node,
        "deadline": schedule.deadline,
        "worst_case_length": schedule.worst_case_length,
        "fault_free_length": schedule.fault_free_length,
        "entries": [_entry_to_json(e) for e in entries],
        "leaves": [[_guard_to_json(leaf.guard), leaf.makespan]
                   for leaf in schedule.leaves],
    }


def schedule_from_dict(data: dict[str, Any]) -> ScheduleSet:
    """Rebuild a schedule set from :func:`schedule_to_dict` output."""
    if data.get("format") != FORMAT:
        raise ValidationError(
            f"not a schedule-set document (format={data.get('format')!r})")
    if data.get("version") != VERSION:
        raise ValidationError(
            f"unsupported schedule-set version {data.get('version')!r}")
    return ScheduleSet(
        entries=tuple(_entry_from_json(e) for e in data["entries"]),
        leaves=tuple(LeafScenario(_guard_from_json(g), float(m))
                     for g, m in data["leaves"]),
        worst_case_length=float(data["worst_case_length"]),
        fault_free_length=float(data["fault_free_length"]),
        deadline=float(data["deadline"]),
    )


def dump_schedule(schedule: ScheduleSet, *, node: str | None = None,
                  indent: int | None = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(schedule_to_dict(schedule, node=node),
                      indent=indent)


def load_schedule(text: str) -> ScheduleSet:
    """Deserialize from a JSON string."""
    return schedule_from_dict(json.loads(text))


__all__ = [
    "FORMAT",
    "VERSION",
    "dump_schedule",
    "load_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
]
