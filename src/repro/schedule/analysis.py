"""Schedule metrics (paper §6).

The central figure of merit is the **fault tolerance overhead**:

    FTO = (L_ft − L_nft) / L_nft × 100

the percentage increase of the schedule length due to fault-tolerance
considerations, where ``L_nft`` is the schedule length obtained with
the same mapping/scheduling machinery but ignoring fault tolerance.
Both of the paper's result figures (7 and 8) are plotted in terms of
FTO deviations.
"""

from __future__ import annotations

from repro.errors import SchedulingError


def fault_tolerance_overhead(ft_length: float, nft_length: float) -> float:
    """FTO in percent (paper §6)."""
    if nft_length <= 0:
        raise SchedulingError(
            f"non-fault-tolerant length must be positive, got {nft_length}")
    if ft_length < nft_length - 1e-9:
        # A fault-tolerant schedule can never beat the same synthesis
        # flow with zero overheads; flag the inconsistency loudly.
        raise SchedulingError(
            f"FT length {ft_length} below NFT length {nft_length}; "
            "baseline mismatch")
    return (ft_length - nft_length) / nft_length * 100.0


def percentage_deviation(value: float, baseline: float) -> float:
    """``(value − baseline) / baseline × 100`` — the y-axis of the
    paper's Fig. 7 (strategy FTO vs. MXR FTO) and Fig. 8 (local-optimum
    FTO vs. globally optimized FTO)."""
    if baseline <= 0:
        raise SchedulingError(
            f"baseline must be positive, got {baseline}")
    return (value - baseline) / baseline * 100.0
