"""Static validation of conditional schedule tables.

The runtime simulator checks one fault scenario at a time; this module
checks structural invariants of the whole table **without**
enumerating scenarios, so it stays cheap on instances whose scenario
space is huge:

* processor exclusivity per compatible-guard pair — two activations
  whose guards can hold simultaneously must not overlap on a node;
* bus exclusivity — two bus entries with compatible guards must not
  share a slot occurrence;
* guard decidability — an entry guarded by a condition produced on
  another node must start no earlier than the condition's broadcast
  arrival (the §5.2 rule that makes the distributed tables executable);
* budget sanity — no guard requires more than ``k`` faults.

:func:`validate_schedule` returns the list of violations (empty =
valid); :func:`assert_valid_schedule` raises on the first problem.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.ftcpg.conditions import AttemptId
from repro.model.architecture import Architecture
from repro.schedule.table import BUS, EntryKind, ScheduleSet, TableEntry
from repro.utils.mathutils import TIME_EPS


def validate_schedule(schedule: ScheduleSet, arch: Architecture,
                      k: int) -> list[str]:
    """Check the structural invariants; returns violation messages."""
    violations: list[str] = []

    # -- budget sanity ---------------------------------------------------------
    for entry in schedule.entries:
        if entry.guard.fault_count() > k:
            violations.append(
                f"guard of {_describe(entry)} requires "
                f"{entry.guard.fault_count()} faults > k={k}")

    # -- processor exclusivity ---------------------------------------------------
    for node in arch.node_names:
        entries = [e for e in schedule.entries_on(node)
                   if e.kind is EntryKind.ATTEMPT]
        for i, first in enumerate(entries):
            for second in entries[i + 1:]:
                if second.start >= first.end - TIME_EPS:
                    break  # sorted by start; no later overlap possible
                if first.guard.compatible_with(second.guard):
                    violations.append(
                        f"overlap on {node}: {_describe(first)} "
                        f"[{first.start}, {first.end}) vs "
                        f"{_describe(second)} "
                        f"[{second.start}, {second.end})")

    # -- bus exclusivity ---------------------------------------------------------
    bus_entries = [e for e in schedule.entries if e.location == BUS]
    by_slot: dict[tuple[int, int], list[TableEntry]] = {}
    for entry in bus_entries:
        for frame in entry.frames:
            by_slot.setdefault(
                (frame.round_index, frame.slot_index), []).append(entry)
    for slot, owners in sorted(by_slot.items()):
        for i, first in enumerate(owners):
            for second in owners[i + 1:]:
                if first.guard.compatible_with(second.guard):
                    violations.append(
                        f"bus slot {slot} shared by {_describe(first)} "
                        f"and {_describe(second)} with compatible guards")

    # -- guard decidability --------------------------------------------------------
    # In every scenario where the entry fires, exactly one detection of
    # the literal's attempt happens (locally, on the producing node)
    # and exactly one broadcast of its value goes out; the firing
    # source is the one whose guard also holds, i.e. a source whose
    # guard is *compatible* with the entry's (compression may have
    # dropped literals, so implication would be too strict). The
    # worst-case knowledge time is therefore the max end over
    # compatible sources: local detections on the entry's own node,
    # broadcast arrivals elsewhere.
    producers: dict[AttemptId, list[TableEntry]] = {}
    broadcasts: dict[AttemptId, list[TableEntry]] = {}
    for entry in schedule.entries:
        if entry.attempt is None:
            continue
        if entry.kind is EntryKind.ATTEMPT and entry.can_fail:
            producers.setdefault(entry.attempt, []).append(entry)
        elif entry.kind is EntryKind.BROADCAST:
            broadcasts.setdefault(entry.attempt, []).append(entry)

    for entry in schedule.entries:
        if entry.kind is not EntryKind.ATTEMPT:
            continue
        for literal in entry.guard.literals:
            local = [s for s in producers.get(literal.attempt, [])
                     if s.location == entry.location
                     and entry.guard.compatible_with(s.guard)]
            if local:
                bound = max(s.end for s in local)
            else:
                remote = [b for b in broadcasts.get(literal.attempt, [])
                          if entry.guard.compatible_with(b.guard)]
                if not remote:
                    violations.append(
                        f"{_describe(entry)} on {entry.location} guarded "
                        f"by {literal} which is never known there")
                    continue
                bound = max(b.end for b in remote)
            if entry.start < bound - TIME_EPS:
                violations.append(
                    f"{_describe(entry)} starts at {entry.start} before "
                    f"{literal} is known on {entry.location} ({bound})")
    return violations


def assert_valid_schedule(schedule: ScheduleSet, arch: Architecture,
                          k: int) -> None:
    """Raise :class:`SchedulingError` on the first violation."""
    violations = validate_schedule(schedule, arch, k)
    if violations:
        raise SchedulingError(
            f"{len(violations)} schedule-table violations; first: "
            f"{violations[0]}")


def _describe(entry: TableEntry) -> str:
    if entry.kind is EntryKind.ATTEMPT:
        return entry.attempt.label()
    if entry.kind is EntryKind.MESSAGE:
        return f"message {entry.message}"
    return f"broadcast {entry.attempt.label()}"


__all__ = ["assert_valid_schedule", "validate_schedule"]
