"""Schedule-table metrics (paper §5.2 and §6).

The paper lists the *size of the schedule tables* among the quantities
the synthesis trades off ("various trade-offs between the worst case
schedule length, the size of the schedule tables, the degree of
transparency, and the duration of the schedule generation procedure").
This module quantifies those: per-node table sizes (rows, columns,
entries and an estimated memory footprint) and scenario-space measures
used by the transparency studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.table import BUS, EntryKind, ScheduleSet

#: Rough per-entry footprint of a table cell in a realistic encoding:
#: activation id (2B) + start time (4B) + guard reference (2B).
BYTES_PER_ENTRY = 8
#: Per-column footprint: the guard bitmask/condition list.
BYTES_PER_COLUMN = 4


@dataclass(frozen=True)
class NodeTableSize:
    """Size of one node's (or the bus') schedule table."""

    location: str
    rows: int
    columns: int
    entries: int

    @property
    def memory_bytes(self) -> int:
        """Estimated footprint in the node's static memory."""
        return (self.entries * BYTES_PER_ENTRY
                + self.columns * BYTES_PER_COLUMN)


@dataclass(frozen=True)
class ScheduleMetrics:
    """Aggregate metrics of one schedule set."""

    per_node: tuple[NodeTableSize, ...]
    scenario_count: int
    distinct_guards: int
    distinct_attempt_starts: int
    worst_case_length: float
    fault_free_length: float

    @property
    def total_entries(self) -> int:
        """Total activation entries over all tables."""
        return sum(t.entries for t in self.per_node)

    @property
    def total_memory_bytes(self) -> int:
        """Total estimated table memory over all nodes."""
        return sum(t.memory_bytes for t in self.per_node)

    @property
    def overhead_ratio(self) -> float:
        """Worst-case length relative to the fault-free scenario."""
        if self.fault_free_length <= 0:
            return 1.0
        return self.worst_case_length / self.fault_free_length


def schedule_metrics(schedule: ScheduleSet) -> ScheduleMetrics:
    """Measure a schedule set (paper §5.2's table-size dimension)."""
    per_node: list[NodeTableSize] = []
    for location in schedule.locations:
        entries = schedule.entries_on(location)
        rows = {e.row_key() for e in entries}
        columns = {e.guard for e in entries}
        per_node.append(NodeTableSize(
            location=location,
            rows=len(rows),
            columns=len(columns),
            entries=len(entries),
        ))
    attempt_starts = {
        (e.attempt, round(e.start, 6))
        for e in schedule.entries if e.kind is EntryKind.ATTEMPT
    }
    return ScheduleMetrics(
        per_node=tuple(per_node),
        scenario_count=schedule.scenario_count,
        distinct_guards=len({e.guard for e in schedule.entries}),
        distinct_attempt_starts=len(attempt_starts),
        worst_case_length=schedule.worst_case_length,
        fault_free_length=schedule.fault_free_length,
    )


__all__ = ["BUS", "NodeTableSize", "ScheduleMetrics", "schedule_metrics"]
