"""Schedule and design metrics (paper §5.2 and §6).

The paper lists the *size of the schedule tables* among the quantities
the synthesis trades off ("various trade-offs between the worst case
schedule length, the size of the schedule tables, the degree of
transparency, and the duration of the schedule generation procedure").
This module quantifies those: per-node table sizes (rows, columns,
entries and an estimated memory footprint), scenario-space measures
used by the transparency studies, plus the two design-level objectives
the Pareto explorer (:mod:`repro.dse`) trades against the worst-case
schedule length:

* :func:`transparency_degree` — how much of the application the
  designer froze (paper §3.3's debuggability axis);
* :func:`ft_memory_overhead` — the state memory the fault-tolerance
  policies themselves cost (checkpoint slots and replica images),
  distinct from the schedule-*table* memory measured by
  :func:`schedule_metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.application import Application
from repro.model.transparency import Transparency
from repro.policies.types import PolicyAssignment
from repro.schedule.table import BUS, EntryKind, ScheduleSet

#: Rough per-entry footprint of a table cell in a realistic encoding:
#: activation id (2B) + start time (4B) + guard reference (2B).
BYTES_PER_ENTRY = 8
#: Per-column footprint: the guard bitmask/condition list.
BYTES_PER_COLUMN = 4


@dataclass(frozen=True)
class NodeTableSize:
    """Size of one node's (or the bus') schedule table."""

    location: str
    rows: int
    columns: int
    entries: int

    @property
    def memory_bytes(self) -> int:
        """Estimated footprint in the node's static memory."""
        return (self.entries * BYTES_PER_ENTRY
                + self.columns * BYTES_PER_COLUMN)


@dataclass(frozen=True)
class ScheduleMetrics:
    """Aggregate metrics of one schedule set."""

    per_node: tuple[NodeTableSize, ...]
    scenario_count: int
    distinct_guards: int
    distinct_attempt_starts: int
    worst_case_length: float
    fault_free_length: float

    @property
    def total_entries(self) -> int:
        """Total activation entries over all tables."""
        return sum(t.entries for t in self.per_node)

    @property
    def total_memory_bytes(self) -> int:
        """Total estimated table memory over all nodes."""
        return sum(t.memory_bytes for t in self.per_node)

    @property
    def overhead_ratio(self) -> float:
        """Worst-case length relative to the fault-free scenario."""
        if self.fault_free_length <= 0:
            return 1.0
        return self.worst_case_length / self.fault_free_length


def schedule_metrics(schedule: ScheduleSet) -> ScheduleMetrics:
    """Measure a schedule set (paper §5.2's table-size dimension)."""
    per_node: list[NodeTableSize] = []
    for location in schedule.locations:
        entries = schedule.entries_on(location)
        rows = {e.row_key() for e in entries}
        columns = {e.guard for e in entries}
        per_node.append(NodeTableSize(
            location=location,
            rows=len(rows),
            columns=len(columns),
            entries=len(entries),
        ))
    attempt_starts = {
        (e.attempt, round(e.start, 6))
        for e in schedule.entries if e.kind is EntryKind.ATTEMPT
    }
    return ScheduleMetrics(
        per_node=tuple(per_node),
        scenario_count=schedule.scenario_count,
        distinct_guards=len({e.guard for e in schedule.entries}),
        distinct_attempt_starts=len(attempt_starts),
        worst_case_length=schedule.worst_case_length,
        fault_free_length=schedule.fault_free_length,
    )


# -- design-level objectives (repro.dse) ----------------------------------

#: Floor on a process's proxied live-state size: even a process with no
#: messages carries registers/locals that a checkpoint must store.
MIN_STATE_BYTES = 16
#: Fixed per-replica footprint beyond the state image: code/static data
#: of one more placed copy (same spirit as :data:`BYTES_PER_ENTRY` — a
#: realistic-encoding constant, not a measured value).
REPLICA_IMAGE_BYTES = 128


def process_state_bytes(app: Application, name: str) -> int:
    """Proxied live-state size of one process.

    The model does not carry explicit state sizes, so the recoverable
    state is proxied by the data the process exchanges: the sum of its
    input and output message payloads, floored at
    :data:`MIN_STATE_BYTES`. This is what a checkpoint slot must hold
    (the data needed to re-produce the outputs from the last saved
    point) and what a replica must keep live.
    """
    traffic = sum(m.size_bytes for m in app.inputs_of(name))
    traffic += sum(m.size_bytes for m in app.outputs_of(name))
    return max(MIN_STATE_BYTES, traffic)


@dataclass(frozen=True)
class FtMemoryOverhead:
    """Memory the fault-tolerance policies cost, by mechanism."""

    checkpoint_bytes: int
    replication_bytes: int

    @property
    def total_bytes(self) -> int:
        """Checkpoint plus replication overhead."""
        return self.checkpoint_bytes + self.replication_bytes


def ft_memory_overhead(app: Application, policies: PolicyAssignment,
                       ) -> FtMemoryOverhead:
    """Checkpoint/replication memory overhead of a policy assignment.

    One of the three objectives of the Pareto explorer
    (:mod:`repro.dse`), next to the worst-case schedule length and
    :func:`transparency_degree`:

    * every checkpoint of every copy reserves one state slot
      (``checkpoints × process_state_bytes``) in the node's protected
      memory;
    * every copy beyond the first duplicates the process image and its
      live state (``REPLICA_IMAGE_BYTES + process_state_bytes``) on
      another node.

    A design with no fault tolerance (or pure re-execution, which
    restores the initial inputs instead of saved state) costs 0 —
    re-execution buys its recovery with time, checkpointing and
    replication buy theirs with memory. That is exactly the axis the
    explorer needs to separate the paper's policy classes.
    """
    checkpoint_bytes = 0
    replication_bytes = 0
    for name, policy in policies.items():
        state = process_state_bytes(app, name)
        for plan in policy.copies:
            checkpoint_bytes += plan.checkpoints * state
        extra_copies = len(policy.copies) - 1
        replication_bytes += extra_copies * (REPLICA_IMAGE_BYTES + state)
    return FtMemoryOverhead(checkpoint_bytes=checkpoint_bytes,
                            replication_bytes=replication_bytes)


def transparency_degree(app: Application,
                        transparency: Transparency | None) -> float:
    """Fraction of the application the designer froze, in ``[0, 1]``.

    Counts frozen processes and frozen messages over all processes and
    messages — the paper's §3.3 "degree of transparency" made scalar
    so the Pareto explorer can trade it against schedule length
    (``Transparency.none()`` → 0.0, ``Transparency.full(app)`` → 1.0).

    >>> from repro.workloads import fig3_example
    >>> from repro.model import Transparency
    >>> app, _arch = fig3_example()          # 5 processes, 4 messages
    >>> transparency_degree(app, Transparency.none())
    0.0
    >>> transparency_degree(app, Transparency.full(app))
    1.0
    >>> transparency_degree(app, Transparency.messages_only(app))
    0.4444444444444444
    """
    if transparency is None:
        return 0.0
    total = len(app.process_names) + len(app.message_names)
    if total == 0:
        return 0.0
    frozen = (len(transparency.frozen_processes)
              + len(transparency.frozen_messages))
    return frozen / total


__all__ = [
    "BUS",
    "FtMemoryOverhead",
    "MIN_STATE_BYTES",
    "NodeTableSize",
    "REPLICA_IMAGE_BYTES",
    "ScheduleMetrics",
    "ft_memory_overhead",
    "process_state_bytes",
    "schedule_metrics",
    "transparency_degree",
]
