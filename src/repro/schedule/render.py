"""Rendering of conditional schedule tables in the style of paper
Fig. 6: one table per node (plus the bus), one row per process /
message / condition, one column per guard, activation times in the
cells.
"""

from __future__ import annotations

from repro.schedule.table import BUS, EntryKind, ScheduleSet, TableEntry
from repro.utils.textgrid import TextGrid


def _row_label(entry: TableEntry) -> str:
    if entry.kind is EntryKind.ATTEMPT:
        process, copy = entry.attempt.process, entry.attempt.copy
        return process if copy == 0 else f"{process}({copy + 1})"
    if entry.kind is EntryKind.MESSAGE:
        name = entry.message
        if entry.producer_copy:
            name += f"({entry.producer_copy + 1})"
        return name
    return f"F[{entry.attempt.label()}]"


def _guard_order(schedule: ScheduleSet) -> list:
    """Deterministic column order: unconditional first, then by guard
    length and text."""
    guards = {entry.guard for entry in schedule.entries}
    return sorted(guards, key=lambda g: (len(g), str(g)))


def render_node_table(schedule: ScheduleSet, location: str) -> str:
    """Render one node's (or the bus') schedule table as text."""
    entries = schedule.entries_on(location)
    if not entries:
        return f"== {location}: (no activity) =="
    guards = [g for g in _guard_order(schedule)
              if any(e.guard == g for e in entries)]
    rows: dict[tuple, dict] = {}
    row_order: list[tuple] = []
    for entry in entries:
        key = entry.row_key()
        if key not in rows:
            rows[key] = {"label": _row_label(entry), "cells": {}}
            row_order.append(key)
        cell = rows[key]["cells"].setdefault(entry.guard, [])
        cell.append(entry)

    grid = TextGrid([f"{location}"] + [str(g) for g in guards])
    for key in row_order:
        row = rows[key]
        cells = []
        for guard in guards:
            here = row["cells"].get(guard, [])
            here.sort(key=lambda e: e.start)
            cells.append("; ".join(e.cell_label() for e in here))
        grid.add_row([row["label"]] + cells)
    return f"== schedule table: {location} ==\n{grid.render()}"


def render_schedule_set(schedule: ScheduleSet) -> str:
    """Render all tables plus a summary header."""
    lines = [
        "conditional schedule tables "
        f"(worst case {schedule.worst_case_length:.2f}, "
        f"fault-free {schedule.fault_free_length:.2f}, "
        f"deadline {schedule.deadline:.2f}, "
        f"{schedule.scenario_count} scenarios)",
    ]
    for location in schedule.locations:
        lines.append("")
        lines.append(render_node_table(schedule, location))
    return "\n".join(lines)


__all__ = ["render_node_table", "render_schedule_set", "BUS"]
