"""Keyed memoization of the slack-sharing schedule estimate.

:func:`repro.schedule.estimation.estimate_ft_schedule` is the dominant
cost of design-space exploration: the tabu engine calls it for every
neighborhood candidate, and neighborhoods revisit solutions constantly
(a remap move followed by its reverse, two strategies exploring the
same subspace, the refinement sweep re-proposing the incumbent).  The
estimate is a pure function of

    (fault budget k, bus-contention flag, slack-sharing mode,
     policy assignment, mapping)

for a fixed application/architecture/priority context, so one
:class:`EstimationCache` per workload makes every repeated evaluation
free.  The cache returns the *same* :class:`FtEstimate` object for a
repeated key — callers never mutate estimates, and identity reuse is
what makes cached searches bit-identical to uncached ones.

The key is a :func:`solution_fingerprint`: a canonical tuple of every
process's copy plans and copy placements, independent of dict insertion
order and stable across processes (no ``hash()`` randomization).

The cache lives in the schedule layer (it wraps a schedule-level
function and is used by :mod:`repro.synthesis`); the batch engine
re-exports it as part of its public API.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Mapping

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.schedule.estimation import FtEstimate, estimate_ft_schedule
from repro.schedule.mapping import CopyMapping

#: Default bound on retained estimates (LRU eviction beyond this).
DEFAULT_MAX_ENTRIES = 100_000

Fingerprint = tuple


def solution_fingerprint(policies: PolicyAssignment,
                         mapping: CopyMapping) -> Fingerprint:
    """Canonical, hashable identity of one (policies, mapping) solution.

    Sorted by process name so two solutions built in different orders
    fingerprint identically; per process it captures every copy's
    recovery plan and placement — exactly the inputs the estimator
    reads from the solution.
    """
    parts = []
    for name, policy in sorted(policies.items()):
        plans = tuple((plan.recoveries, plan.checkpoints)
                      for plan in policy.copies)
        nodes = tuple(mapping.node_of(name, copy)
                      for copy in range(len(policy.copies)))
        parts.append((name, plans, nodes))
    return tuple(parts)


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class EstimationCache:
    """LRU-bounded memo of :func:`estimate_ft_schedule` results.

    One cache serves one (application, architecture, priorities)
    context — the workload of one sweep cell.  The first call binds the
    cache to its application/architecture; mixing workloads through one
    cache raises, because the fingerprint does not (and need not)
    encode them.
    """

    def __init__(self, max_entries: int | None = DEFAULT_MAX_ENTRIES,
                 ) -> None:
        self._entries: OrderedDict[tuple, FtEstimate] = OrderedDict()
        self._max_entries = max_entries
        self._app: Application | None = None
        self._arch: Architecture | None = None
        self._priorities: dict[str, float] | None = None
        self.hits = 0
        self.misses = 0

    def estimate(
        self,
        app: Application,
        arch: Architecture,
        mapping: CopyMapping,
        policies: PolicyAssignment,
        fault_model: FaultModel,
        *,
        priorities: Mapping[str, float] | None = None,
        bus_contention: bool = True,
        slack_sharing: str = "max",
    ) -> FtEstimate:
        """Drop-in replacement for :func:`estimate_ft_schedule`."""
        normalized = None if priorities is None else dict(priorities)
        if self._app is None:
            self._app, self._arch = app, arch
            self._priorities = normalized
        elif app is not self._app or arch is not self._arch:
            raise ValueError(
                "EstimationCache is bound to one workload; create a "
                "fresh cache per (application, architecture)")
        elif normalized != self._priorities:
            # The fingerprint deliberately omits priorities (they are
            # fixed per workload), so serving a different priority map
            # from this cache would silently return wrong estimates.
            raise ValueError(
                "EstimationCache is bound to one priority assignment; "
                "create a fresh cache per (application, architecture, "
                "priorities)")
        key = (fault_model.k, bus_contention, slack_sharing,
               solution_fingerprint(policies, mapping))
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        estimate = estimate_ft_schedule(
            app, arch, mapping, policies, fault_model,
            priorities=priorities, bus_contention=bus_contention,
            slack_sharing=slack_sharing)
        self._entries[key] = estimate
        if (self._max_entries is not None
                and len(self._entries) > self._max_entries):
            self._entries.popitem(last=False)
        return estimate

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss counters."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          entries=len(self._entries))

    def clear(self) -> None:
        """Drop all entries and counters."""
        self._entries.clear()
        self._app = None
        self._arch = None
        self._priorities = None
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (f"EstimationCache({stats.entries} entries, "
                f"{stats.hits} hits / {stats.misses} misses)")
