"""Deprecated estimation cache — a thin shim over :mod:`repro.eval`.

Historically this module owned the keyed memoization of
:func:`repro.schedule.estimation.estimate_ft_schedule`: one
:class:`EstimationCache` per workload, bound ad hoc to the first
``(application, architecture, priorities)`` it served. That role has
moved to the unified evaluation core — fingerprinted
:class:`~repro.eval.ScheduleProblem` contexts behind a tiered,
incremental :class:`~repro.eval.Evaluator` — and new code should use
:class:`repro.eval.EvaluatorPool` directly.

:class:`EstimationCache` remains as a compatibility shim: the same
constructor, the same ``estimate()`` signature, the same identity
reuse of repeated results, and the same binding errors when one cache
is fed a second workload or priority map. Internally every call is
delegated to a private pool of evaluators (one per fault budget), so
a shim cache still benefits from the incremental core.

:class:`CacheStats` (the hit/miss counter value object shared by all
cache tiers) is still defined here because this module sits below
:mod:`repro.eval` in the import graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.schedule.estimation import FtEstimate, solution_fingerprint
from repro.schedule.mapping import CopyMapping

#: Default bound on retained estimates (LRU eviction beyond this).
#: Matches the evaluation core's default: cached entries carry the
#: incremental-replay trace, so the bound is tighter than the old
#: estimate-only 100k.
DEFAULT_MAX_ENTRIES = 50_000

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "CacheStats",
    "EstimationCache",
    "solution_fingerprint",
]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache (or one cache tier)."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum (for aggregating tiers or sweeps)."""
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          entries=self.entries + other.entries)


class EstimationCache:
    """Deprecated shim over the :mod:`repro.eval` core.

    One cache serves one (application, architecture, priorities)
    context — the workload of one sweep cell. The first call binds the
    cache; mixing workloads or priority maps through one cache raises,
    exactly as the historical implementation did. Prefer
    :class:`repro.eval.EvaluatorPool`, which distinguishes problems by
    fingerprint and needs no binding at all.
    """

    def __init__(self, max_entries: int | None = DEFAULT_MAX_ENTRIES,
                 ) -> None:
        # Imported lazily: repro.eval sits above this module in the
        # import graph (repro.schedule's __init__ imports this file).
        from repro.eval.core import EvaluatorPool
        self._pool = EvaluatorPool(max_entries=max_entries)
        self._app: Application | None = None
        self._arch: Architecture | None = None
        self._priorities: dict[str, float] | None = None
        self._workload_fp: tuple | None = None

    # -- binding --------------------------------------------------------------

    def _check_binding(self, app: Application, arch: Architecture,
                       priorities: Mapping[str, float] | None) -> None:
        from repro.eval.problem import workload_fingerprint
        normalized = None if priorities is None else dict(priorities)
        if self._workload_fp is None:
            self._app, self._arch = app, arch
            self._priorities = normalized
            self._workload_fp = workload_fingerprint(app, arch)
            return
        if app is not self._app or arch is not self._arch:
            if workload_fingerprint(app, arch) != self._workload_fp:
                raise ValueError(
                    "EstimationCache is bound to one workload; create "
                    "a fresh cache per (application, architecture)")
        if normalized != self._priorities:
            # The solution fingerprint deliberately omits priorities
            # (they are fixed per workload), so serving a different
            # priority map from this cache would silently return
            # wrong estimates.
            raise ValueError(
                "EstimationCache is bound to one priority assignment; "
                "create a fresh cache per (application, architecture, "
                "priorities)")

    def evaluator_for(self, app: Application, arch: Architecture,
                      fault_model: FaultModel, *,
                      priorities: Mapping[str, float] | None = None):
        """The underlying :class:`~repro.eval.Evaluator` for one
        fault budget (after the legacy binding check)."""
        self._check_binding(app, arch, priorities)
        return self._pool.evaluator_for(app, arch, fault_model,
                                        priorities=priorities)

    # -- legacy API -----------------------------------------------------------

    def estimate(
        self,
        app: Application,
        arch: Architecture,
        mapping: CopyMapping,
        policies: PolicyAssignment,
        fault_model: FaultModel,
        *,
        priorities: Mapping[str, float] | None = None,
        bus_contention: bool = True,
        slack_sharing: str = "max",
    ) -> FtEstimate:
        """Drop-in replacement for :func:`estimate_ft_schedule`.

        Repeated keys return the *same* :class:`FtEstimate` object —
        callers never mutate estimates, and identity reuse is what
        makes cached searches bit-identical to uncached ones.
        """
        evaluator = self.evaluator_for(app, arch, fault_model,
                                       priorities=priorities)
        return evaluator.estimate(policies, mapping,
                                  bus_contention=bus_contention,
                                  slack_sharing=slack_sharing)

    # -- bookkeeping ----------------------------------------------------------

    @property
    def hits(self) -> int:
        """Estimate-tier cache hits."""
        return self._pool.stats().estimates.hits

    @property
    def misses(self) -> int:
        """Estimate-tier cache misses."""
        return self._pool.stats().estimates.misses

    def stats(self) -> CacheStats:
        """Snapshot of the estimate-tier hit/miss counters."""
        return self._pool.stats().estimates

    def clear(self) -> None:
        """Drop all entries, counters and the workload binding."""
        self._pool.clear()
        self._app = None
        self._arch = None
        self._priorities = None
        self._workload_fp = None

    def __len__(self) -> int:
        return self.stats().entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (f"EstimationCache({stats.entries} entries, "
                f"{stats.hits} hits / {stats.misses} misses)")
