"""Partial-critical-path (PCP) priorities.

All three schedulers order ready work by a static priority: the length
of the longest remaining path from a process to any sink, counting mean
WCETs and a bus-latency estimate per cross-edge. This is the classic
PCP priority function used by the authors' list-scheduling framework
([7], [8]) — good enough for deterministic tie-breaking and sensible
schedules, while keeping every scheduler reproducible.
"""

from __future__ import annotations

from repro.model.application import Application
from repro.model.architecture import Architecture


def partial_critical_path_priorities(
    app: Application,
    arch: Architecture | None = None,
    *,
    comm_penalty: float | None = None,
) -> dict[str, float]:
    """Map each process name to its PCP priority (higher = schedule
    earlier).

    Parameters
    ----------
    app:
        The application graph.
    arch:
        Used only to derive the default communication penalty (one TDMA
        round per edge); pass ``comm_penalty`` to override.
    comm_penalty:
        Latency charged per message edge on the path.
    """
    if comm_penalty is None:
        comm_penalty = arch.bus.round_length if arch is not None else 0.0

    def mean_wcet(process_name: str) -> float:
        wcet = app.process(process_name).wcet
        return sum(wcet.values()) / len(wcet)

    priorities: dict[str, float] = {}
    for process_name in reversed(app.topological_order):
        tail = 0.0
        for successor in app.successors(process_name):
            tail = max(tail, comm_penalty + priorities[successor])
        priorities[process_name] = mean_wcet(process_name) + tail
    return priorities
