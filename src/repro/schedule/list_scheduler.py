"""Fault-free list scheduling.

Schedules one copy of every process (no fault tolerance, no overheads)
on the architecture with PCP priorities and TDMA bus communication.
This produces the *non-fault-tolerant* schedule length that the FTO
metric of paper §6 compares against: "the length of the schedules using
the same (mapping and scheduling) techniques but ignoring the fault
tolerance issues".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.comm.reservations import BusReservations
from repro.comm.tdma import TdmaBus, Transmission
from repro.errors import MappingError, SchedulingError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.schedule.priorities import partial_critical_path_priorities


@dataclass
class FaultFreeSchedule:
    """Result of fault-free list scheduling."""

    makespan: float
    start_times: dict[str, float] = field(default_factory=dict)
    finish_times: dict[str, float] = field(default_factory=dict)
    transmissions: dict[str, Transmission] = field(default_factory=dict)

    def start_of(self, process: str) -> float:
        """Scheduled start of a process."""
        return self.start_times[process]

    def finish_of(self, process: str) -> float:
        """Scheduled finish of a process."""
        return self.finish_times[process]


def schedule_fault_free(
    app: Application,
    arch: Architecture,
    mapping: Mapping[str, str],
    *,
    priorities: Mapping[str, float] | None = None,
    bus_contention: bool = True,
) -> FaultFreeSchedule:
    """List-schedule the application without fault tolerance.

    ``mapping`` assigns each process name to a node name. Messages
    between co-located processes are free; others are transmitted on
    the TDMA bus (with slot contention unless ``bus_contention`` is
    disabled, in which case each message takes its sender's next slots
    regardless of other traffic — cheaper, slightly optimistic).
    """
    for process in app.processes:
        node = mapping.get(process.name)
        if node is None:
            raise MappingError(f"process {process.name!r} is unmapped")
        if node not in process.wcet:
            raise MappingError(
                f"process {process.name!r} cannot run on node {node!r}")
        if node not in arch.node_names:
            raise MappingError(f"unknown node {node!r}")

    if priorities is None:
        priorities = partial_critical_path_priorities(app, arch)
    bus = TdmaBus(arch.bus)
    reservations = BusReservations()

    node_free: dict[str, float] = {n: 0.0 for n in arch.node_names}
    start: dict[str, float] = {}
    finish: dict[str, float] = {}
    transmissions: dict[str, Transmission] = {}
    arrival: dict[str, float] = {}  # message name -> bus arrival time

    # Non-delay selection: among ready processes, take the one that can
    # start earliest, breaking ties by PCP priority. (Pure priority
    # order can idle a processor on a late-released job.)
    non_delay = any(p.release > 0 for p in app.processes)
    pending = set(app.process_names)
    while pending:
        ready = [
            p for p in pending
            if all(src not in pending for src in app.predecessors(p))
        ]
        if not ready:
            raise SchedulingError("no ready process (cycle?)")
        if non_delay:
            def earliest(p: str) -> float:
                proc = app.process(p)
                node = mapping[p]
                when = max(proc.release, node_free[node])
                for message in app.inputs_of(p):
                    if mapping[message.src] == node:
                        when = max(when, finish[message.src])
                    else:
                        when = max(when, arrival[message.name])
                return when

            ready.sort(key=lambda p: (earliest(p), -priorities[p], p))
        else:
            ready.sort(key=lambda p: (-priorities[p], p))
        name = ready[0]
        process = app.process(name)
        node = mapping[name]

        earliest = max(process.release, node_free[node])
        for message in app.inputs_of(name):
            if mapping[message.src] == node:
                earliest = max(earliest, finish[message.src])
            else:
                earliest = max(earliest, arrival[message.name])
        start[name] = earliest
        finish[name] = earliest + process.wcet_on(node)
        node_free[node] = finish[name]
        pending.remove(name)

        # Send this process's cross-node messages as soon as it is done.
        for message in app.outputs_of(name):
            if mapping[message.dst] == node:
                continue
            if bus_contention:
                transmission = bus.schedule_transmission(
                    node, finish[name], message.size_bytes, reservations)
            else:
                transmission = _uncontended_transmission(
                    bus, node, finish[name], message.size_bytes)
            transmissions[message.name] = transmission
            arrival[message.name] = transmission.arrival

    makespan = max(finish.values())
    return FaultFreeSchedule(
        makespan=makespan,
        start_times=start,
        finish_times=finish,
        transmissions=transmissions,
    )


def _uncontended_transmission(bus: TdmaBus, node: str, ready: float,
                              size_bytes: int) -> Transmission:
    """Frames in the sender's next slots, ignoring other traffic."""
    frames = []
    needed = bus.frames_needed(size_bytes)
    for window in bus.owner_slot_occurrences(node, ready):
        frames.append(window)
        if len(frames) == needed:
            break
    return Transmission(sender=node, frames=tuple(frames))
