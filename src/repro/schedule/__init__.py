"""Scheduling (paper §5 and §6).

Three schedulers share the same models:

* :mod:`repro.schedule.list_scheduler` — plain fault-free list
  scheduling; produces the non-fault-tolerant baseline length used in
  the FTO metric (paper §6).
* :mod:`repro.schedule.estimation` — fault-tolerant schedule *length
  estimation* with recovery-slack sharing; the cheap cost function
  driving design optimization, as in [13].
* :mod:`repro.schedule.conditional` — the exact quasi-static
  conditional scheduler; explores every fault context and emits the
  conditional schedule tables of paper §5.2 (Fig. 6).
"""

from repro.schedule.mapping import CopyMapping
from repro.schedule.priorities import partial_critical_path_priorities
from repro.schedule.list_scheduler import FaultFreeSchedule, schedule_fault_free
from repro.schedule.estimation import (
    EstimatorState,
    FtEstimate,
    estimate_ft_schedule,
    solution_fingerprint,
)
from repro.schedule.estimation_cache import CacheStats, EstimationCache
from repro.schedule.conditional import ConditionalScheduler, synthesize_schedule
from repro.schedule.table import EntryKind, ScheduleSet, TableEntry
from repro.schedule.render import render_node_table, render_schedule_set
from repro.schedule.analysis import fault_tolerance_overhead
from repro.schedule.metrics import (
    FtMemoryOverhead,
    NodeTableSize,
    ScheduleMetrics,
    ft_memory_overhead,
    process_state_bytes,
    schedule_metrics,
    transparency_degree,
)
from repro.schedule.serialization import (
    dump_schedule,
    load_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedule.validation import assert_valid_schedule, validate_schedule

__all__ = [
    "ConditionalScheduler",
    "CopyMapping",
    "EntryKind",
    "FaultFreeSchedule",
    "CacheStats",
    "EstimationCache",
    "EstimatorState",
    "FtEstimate",
    "FtMemoryOverhead",
    "solution_fingerprint",
    "NodeTableSize",
    "ScheduleMetrics",
    "ScheduleSet",
    "TableEntry",
    "assert_valid_schedule",
    "dump_schedule",
    "load_schedule",
    "schedule_from_dict",
    "schedule_metrics",
    "schedule_to_dict",
    "validate_schedule",
    "estimate_ft_schedule",
    "fault_tolerance_overhead",
    "ft_memory_overhead",
    "process_state_bytes",
    "transparency_degree",
    "partial_critical_path_priorities",
    "render_node_table",
    "render_schedule_set",
    "schedule_fault_free",
    "synthesize_schedule",
]
