"""The synthesis strategies compared in the paper's evaluation.

Fig. 7 compares four approaches by their fault tolerance overhead:

* **MXR** — the proposed approach ([13]): tabu search over mapping
  *and* policy assignment (re-execution, replication, or combined);
* **MX** — mapping optimization with re-execution only;
* **MR** — mapping optimization with active replication only;
* **SFX** — the "straightforward" baseline: the mapping is optimized
  ignoring fault tolerance, then re-execution is added on top.

Fig. 8 uses the checkpointing variants:

* **MC** — like MX but with rollback recovery at the per-process
  optimal ([27]) checkpoint counts;
* **MC_GLOBAL** — MC followed by the global checkpoint-count
  optimization of [15] (:mod:`repro.synthesis.checkpoint_opt`).

Every strategy reports its FTO against the same non-fault-tolerant
baseline (:func:`nft_baseline`): the schedule length produced by the
same mapping optimization with all fault-tolerance ignored (paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.eval.core import EvaluatorPool
from repro.schedule.estimation_cache import EstimationCache
from repro.errors import SynthesisError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.checkpoints import local_optimal_checkpoints
from repro.policies.types import PolicyAssignment, ProcessPolicy
from repro.schedule.analysis import fault_tolerance_overhead
from repro.schedule.estimation import FtEstimate
from repro.schedule.mapping import CopyMapping
from repro.schedule.priorities import partial_critical_path_priorities
from repro.synthesis.checkpoint_opt import (
    assign_local_optimal_checkpoints,
    optimize_checkpoints_globally,
)
from repro.synthesis.initial import initial_mapping
from repro.synthesis.tabu import TabuSearch, TabuSettings, policy_candidates

#: Strategy names accepted by :func:`synthesize`.
STRATEGIES = ("MXR", "MX", "MR", "SFX", "MC", "MC_GLOBAL")


@dataclass
class StrategyResult:
    """Outcome of one strategy run."""

    strategy: str
    policies: PolicyAssignment
    mapping: CopyMapping
    estimate: FtEstimate
    nft_length: float
    evaluations: int

    @property
    def schedule_length(self) -> float:
        """Estimated worst-case fault-tolerant schedule length."""
        return self.estimate.schedule_length

    @property
    def fto(self) -> float:
        """Fault tolerance overhead in percent (paper §6)."""
        return fault_tolerance_overhead(self.schedule_length,
                                        self.nft_length)


@dataclass
class NftBaseline:
    """The fault-tolerance-ignorant synthesis result."""

    mapping: CopyMapping
    length: float
    process_map: dict[str, str]
    evaluations: int


def _policy_refinement(app, arch, fault_model, space, policies, mapping,
                       priorities, settings, evaluator):
    """Greedy per-process policy improvement at a fixed mapping.

    Iterates the processes in PCP-priority order; each one adopts the
    candidate policy (new replicas placed greedily) that minimizes the
    estimated schedule length. Repeats until a fixpoint (bounded).
    Every candidate is a single-process :class:`PolicyMove` away from
    the incumbent, so cache misses re-evaluate incrementally."""
    from repro.synthesis.moves import PolicyMove

    state = evaluator.estimate_state(
        policies, mapping, bus_contention=settings.bus_contention)
    estimate = state.estimate
    evaluations = 1
    order = sorted(app.process_names,
                   key=lambda name: -priorities[name])
    for _round in range(3):
        improved = False
        for name in order:
            candidates = space(name)
            if len(candidates) <= 1:
                continue
            best = (policies, mapping, estimate, state)
            for candidate in candidates:
                move = PolicyMove(name, candidate)
                if not move.applies_to((policies, mapping)):
                    continue
                new_policies, new_mapping = move.apply(
                    (policies, mapping), app)
                new_state = evaluator.estimate_move(
                    state, new_policies, new_mapping, name)
                evaluations += 1
                if new_state.estimate.schedule_length \
                        < best[2].schedule_length - 1e-9:
                    best = (new_policies, new_mapping,
                            new_state.estimate, new_state)
            if best[2].schedule_length < estimate.schedule_length - 1e-9:
                policies, mapping, estimate, state = best
                improved = True
        if not improved:
            break
    return policies, mapping, estimate, evaluations


def _extend_process_map(app: Application,
                        process_map: Mapping[str, str],
                        policies: PolicyAssignment) -> CopyMapping:
    """Copy 0 of each process on its given node; extra copies (from
    fixed replication policies) greedily on other allowed nodes."""
    assignments: dict[tuple[str, int], str] = {}
    loads: dict[str, float] = {}
    for name, policy in policies.items():
        process = app.process(name)
        home = process_map[name]
        assignments[(name, 0)] = home
        loads[home] = loads.get(home, 0.0) + 1.0
        used = {home}
        allowed = list(process.allowed_nodes)
        for copy_index in range(1, len(policy.copies)):
            fresh = [n for n in allowed if n not in used]
            pool = fresh if fresh else allowed
            choice = min(pool, key=lambda n: (loads.get(n, 0.0), n))
            assignments[(name, copy_index)] = choice
            loads[choice] = loads.get(choice, 0.0) + 1.0
            used.add(choice)
    return CopyMapping(assignments)


def nft_baseline(app: Application, arch: Architecture,
                 settings: TabuSettings | None = None,
                 priorities: Mapping[str, float] | None = None,
                 cache: "EstimationCache | EvaluatorPool | None" = None,
                 ) -> NftBaseline:
    """Optimize the mapping ignoring fault tolerance.

    Implemented as the same tabu engine with a zero-fault model and
    bare policies, so "the same techniques but ignoring fault
    tolerance" (paper §6) is literally true.
    """
    policies = PolicyAssignment.uniform(app, ProcessPolicy.none())
    search = TabuSearch(app, arch, FaultModel(k=0), policy_space=None,
                        settings=settings, priorities=priorities,
                        cache=cache)
    result = search.optimize((policies, initial_mapping(app, arch,
                                                        policies)))
    process_map = {name: result.mapping.node_of(name, 0)
                   for name in app.process_names}
    return NftBaseline(
        mapping=result.mapping,
        length=result.estimate.schedule_length,
        process_map=process_map,
        evaluations=result.evaluations,
    )


def synthesize(
    app: Application,
    arch: Architecture,
    fault_model: FaultModel,
    strategy: str = "MXR",
    *,
    settings: TabuSettings | None = None,
    baseline: NftBaseline | None = None,
    fixed_policies: Mapping[str, ProcessPolicy] | None = None,
    cache: "EstimationCache | EvaluatorPool | None" = None,
) -> StrategyResult:
    """Run one synthesis strategy and report its FTO.

    Passing a precomputed ``baseline`` avoids re-running the NFT
    optimization when several strategies are compared on one workload
    (as the Fig. 7 experiment does).

    ``cache`` is an :class:`~repro.eval.EvaluatorPool` (or the
    deprecated :class:`EstimationCache` shim) memoizing the
    schedule-length estimate across the whole run (tabu neighborhoods,
    refinement sweeps, checkpoint descent). When ``None`` a private
    per-call pool is used; passing one pool to several strategy runs
    on the same workload (as the batch engine does per sweep cell)
    additionally shares estimates *between* strategies. Caching never
    changes results — the estimate is a pure function of the solution
    — only how often it is recomputed, and uncached one-move
    neighbors are re-evaluated incrementally (bit-identically) from
    their parent.

    ``fixed_policies`` pins the fault-tolerance policy of selected
    processes (paper §6: "there are cases when the policy assignment
    decision is taken based on the experience of the designer"); the
    search then only decides the remaining processes. Fixed policies
    must tolerate ``k`` faults and are honored by every strategy.

    Everything is deterministic under a fixed
    :class:`~repro.synthesis.tabu.TabuSettings` seed:

    >>> from repro.model import FaultModel
    >>> from repro.synthesis import TabuSettings, synthesize
    >>> from repro.workloads import fig3_example
    >>> app, arch = fig3_example()
    >>> result = synthesize(
    ...     app, arch, FaultModel(k=1), "MXR",
    ...     settings=TabuSettings(iterations=4, neighborhood=6,
    ...                           seed=1, bus_contention=False))
    >>> print(f"{result.strategy}: length "
    ...       f"{result.schedule_length:.1f} (NFT "
    ...       f"{result.nft_length:.1f}, FTO {result.fto:.0f} %)")
    MXR: length 260.0 (NFT 142.0, FTO 83 %)
    """
    if strategy not in STRATEGIES:
        raise SynthesisError(
            f"unknown strategy {strategy!r}; choose one of {STRATEGIES}")
    settings = settings or TabuSettings()
    k = fault_model.k
    fixed_policies = dict(fixed_policies or {})
    for name, policy in fixed_policies.items():
        if name not in set(app.process_names):
            raise SynthesisError(
                f"fixed policy for unknown process {name!r}")
        if k > 0 and not policy.tolerates(k):
            raise SynthesisError(
                f"fixed policy of {name!r} does not tolerate k={k}")
    if cache is None:
        cache = EvaluatorPool()
    priorities = partial_critical_path_priorities(app, arch)
    evaluator = cache.evaluator_for(app, arch, fault_model,
                                    priorities=priorities)
    if baseline is None:
        baseline = nft_baseline(app, arch, settings, priorities, cache)

    if strategy == "SFX":
        # Fault-ignorant mapping, then re-execution bolted on.
        policies = PolicyAssignment.build(
            app, ProcessPolicy.re_execution(k), fixed_policies)
        mapping = _extend_process_map(app, baseline.process_map,
                                      policies)
        estimate = evaluator.estimate(
            policies, mapping,
            bus_contention=settings.bus_contention)
        return StrategyResult(
            strategy=strategy, policies=policies, mapping=mapping,
            estimate=estimate, nft_length=baseline.length,
            evaluations=baseline.evaluations)

    checkpoints_for = None
    if strategy in ("MC", "MC_GLOBAL"):
        def checkpoints_for(name: str, _app=app, _k=k) -> int:
            process = _app.process(name)
            mean_wcet = (sum(process.wcet.values())
                         / len(process.wcet))
            return local_optimal_checkpoints(
                mean_wcet, _k, process.alpha, process.chi,
                mu=process.mu)

    def pinned(base_space):
        def space(process_name: str):
            fixed = fixed_policies.get(process_name)
            if fixed is not None:
                return (fixed,)
            return base_space(process_name)
        return space

    full_space = pinned(policy_candidates(
        app, k,
        allow_combined=k >= 2,
        checkpoints_for=checkpoints_for,
    ))
    reexec_space = pinned(policy_candidates(
        app, k, allow_replication=False, allow_combined=False,
        checkpoints_for=checkpoints_for,
    ))
    replication_space = pinned(policy_candidates(
        app, k, allow_re_execution=False, allow_combined=False,
        checkpoints_for=checkpoints_for,
    ))

    def run_pass(start_policy: ProcessPolicy | None, tabu_space,
                 sweep_space):
        """One tabu run plus (optionally) a policy-refinement sweep."""
        if start_policy is None:
            start = assign_local_optimal_checkpoints(
                app, PolicyAssignment.uniform(
                    app, ProcessPolicy.re_execution(k)), k)
            # Designer-fixed policies stay verbatim (no tuning).
            for name, fixed in fixed_policies.items():
                start = start.replaced(name, fixed)
        else:
            start = PolicyAssignment.build(app, start_policy,
                                           fixed_policies)
        if k == 0:
            start = PolicyAssignment.uniform(app, ProcessPolicy.none())
        search = TabuSearch(app, arch, fault_model,
                            policy_space=tabu_space if k > 0 else None,
                            settings=settings, priorities=priorities,
                            evaluator=evaluator)
        result = search.optimize(
            (start, initial_mapping(app, arch, start)))
        passes = [(result.policies, result.mapping, result.estimate)]
        evals = result.evaluations
        if k > 0 and sweep_space is not None:
            # Deterministic policy-refinement sweep, mirroring the
            # alternating mapping/policy phases of [13]: with the
            # mapping fixed, each process greedily adopts its best
            # policy candidate until a fixpoint.
            refined = _policy_refinement(
                app, arch, fault_model, sweep_space, result.policies,
                result.mapping, priorities, settings, evaluator)
            passes.append(refined[:3])
            evals += refined[3]
        best = min(passes, key=lambda p: p[2].schedule_length)
        return best + (evals,)

    if strategy == "MXR":
        # Three passes: the two pure starting points explored exactly
        # like MX and MR (so MXR dominates both by construction, as in
        # the paper's Fig. 7) plus a free full-space search that can
        # mix policies mid-flight; every pass ends with the refinement
        # sweep over the full space.
        passes = [
            run_pass(ProcessPolicy.re_execution(k), reexec_space,
                     full_space),
            run_pass(ProcessPolicy.replication(k), replication_space,
                     full_space),
            run_pass(ProcessPolicy.re_execution(k), full_space,
                     full_space),
        ]
        evaluations = baseline.evaluations + sum(p[3] for p in passes)
        policies, mapping, estimate, __ = min(
            passes, key=lambda p: p[2].schedule_length)
    else:
        start_policy = {
            "MX": ProcessPolicy.re_execution(k),
            "MR": ProcessPolicy.replication(k),
            "MC": None,
            "MC_GLOBAL": None,
        }[strategy]
        tabu_space = (replication_space if strategy == "MR"
                      else reexec_space)
        policies, mapping, estimate, evals = run_pass(
            start_policy, tabu_space, None)
        evaluations = baseline.evaluations + evals

    if strategy == "MC_GLOBAL":
        policies, estimate, extra = optimize_checkpoints_globally(
            app, arch, mapping, policies, fault_model,
            priorities=priorities,
            bus_contention=settings.bus_contention,
            evaluator=evaluator)
        evaluations += extra

    return StrategyResult(
        strategy=strategy, policies=policies, mapping=mapping,
        estimate=estimate, nft_length=baseline.length,
        evaluations=evaluations)
