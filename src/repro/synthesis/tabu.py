"""Tabu-search design optimization (paper §6, following [13]/[16]).

The search walks (policy assignment, mapping) solutions using the
slack-sharing length estimate as its cost function:

* cost = estimated worst-case schedule length, plus a penalty per time
  unit of global/local deadline overrun (infeasible solutions may be
  traversed but never win);
* each iteration samples a bounded random neighborhood (remap and
  policy moves, deduplicated by move value), evaluates all candidates
  through the :class:`~repro.eval.Evaluator` core — cached solutions
  are free, uncached one-move neighbors are re-evaluated
  *incrementally* from the current solution's
  :class:`~repro.schedule.estimation.EstimatorState` — and takes the
  best *admissible* one: not tabu, or better than everything seen
  (aspiration);
* reversing a move is tabu for ``tenure`` iterations;
* after ``no_improve_restart`` stagnant iterations the search restarts
  from a perturbed copy of the best solution (diversification).

The engine is policy-space agnostic: the strategies of Fig. 7 differ
only in which policies :func:`policy_candidates` may propose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence

from repro.eval.core import Evaluator, EvaluatorPool
from repro.schedule.estimation_cache import EstimationCache
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment, ProcessPolicy
from repro.schedule.estimation import EstimatorState, FtEstimate
from repro.schedule.mapping import CopyMapping
from repro.schedule.priorities import partial_critical_path_priorities
from repro.synthesis.moves import PolicyMove, RemapMove, Solution
from repro.utils.rng import DeterministicRng

PolicySpace = Callable[[str], Sequence[ProcessPolicy]]


@dataclass(frozen=True)
class TabuSettings:
    """Search budget and behaviour knobs.

    The defaults are sized for the paper-scale experiments (20–100
    processes); tests use much smaller budgets.
    """

    iterations: int = 48
    neighborhood: int = 28
    tenure: int | None = None
    seed: int = 1
    no_improve_restart: int = 12
    restart_strength: int = 3
    penalty_weight: float = 2.0
    bus_contention: bool = True

    def effective_tenure(self, process_count: int) -> int:
        """Default tenure = isqrt(n) + 2.

        ``math.isqrt`` (not ``int(math.sqrt(...))``) so the tenure is
        exact integer arithmetic: the float square root can land just
        below an exact integer root and truncate one too low, making
        the search trajectory depend on the platform's libm instead of
        only on the seed.
        """
        if self.tenure is not None:
            return self.tenure
        return math.isqrt(max(1, process_count)) + 2


@dataclass
class TabuResult:
    """Best solution found plus search telemetry."""

    policies: PolicyAssignment
    mapping: CopyMapping
    estimate: FtEstimate
    cost: float
    iterations: int
    evaluations: int
    history: list[float] = field(default_factory=list)


class TabuSearch:
    """One search instance over a fixed application/architecture."""

    def __init__(
        self,
        app: Application,
        arch: Architecture,
        fault_model: FaultModel,
        *,
        policy_space: PolicySpace | None = None,
        settings: TabuSettings | None = None,
        priorities: Mapping[str, float] | None = None,
        cache: "EstimationCache | EvaluatorPool | None" = None,
        evaluator: Evaluator | None = None,
    ) -> None:
        self._app = app
        self._arch = arch
        self._fault_model = fault_model
        self._policy_space = policy_space
        self._settings = settings or TabuSettings()
        self._priorities = dict(
            priorities if priorities is not None
            else partial_critical_path_priorities(app, arch))
        if evaluator is None:
            source = cache if cache is not None else EvaluatorPool()
            evaluator = source.evaluator_for(
                app, arch, fault_model, priorities=self._priorities)
        self._evaluator = evaluator
        self._evaluations = 0

    # -- cost ------------------------------------------------------------------

    def _cost(self, estimate: FtEstimate) -> float:
        penalty = 0.0
        overrun = estimate.schedule_length - self._app.deadline
        if overrun > 0:
            penalty += overrun * self._settings.penalty_weight
        for name in estimate.local_deadline_violations:
            local = self._app.process(name).deadline
            penalty += (estimate.completion_bound(name) - local) \
                * self._settings.penalty_weight
        return estimate.schedule_length + penalty

    def _evaluate_state(self, solution: Solution,
                        ) -> tuple[float, EstimatorState]:
        policies, mapping = solution
        state = self._evaluator.estimate_state(
            policies, mapping,
            bus_contention=self._settings.bus_contention)
        self._evaluations += 1
        return self._cost(state.estimate), state

    def _evaluate_move(self, parent: EstimatorState, solution: Solution,
                       changed: str) -> tuple[float, EstimatorState]:
        """Evaluate a one-move neighbor, incrementally when possible."""
        policies, mapping = solution
        state = self._evaluator.estimate_move(parent, policies,
                                              mapping, changed)
        self._evaluations += 1
        return self._cost(state.estimate), state

    def evaluate(self, solution: Solution) -> tuple[float, FtEstimate]:
        """Penalized cost of one solution.

        ``evaluations`` counts logical evaluations — repeated
        solutions are served from the evaluator's cache but still
        counted, so cached and uncached searches report identical
        telemetry.
        """
        cost, state = self._evaluate_state(solution)
        return cost, state.estimate

    # -- neighborhood ------------------------------------------------------------

    def _sample_moves(self, solution: Solution, rng: DeterministicRng,
                      ) -> list[RemapMove | PolicyMove]:
        """Sample a neighborhood of distinct applicable moves.

        The same move can be drawn several times in one neighborhood;
        duplicates are filtered by :meth:`~repro.synthesis.moves.
        RemapMove.dedup_key` so they neither waste an evaluation nor
        crowd out distinct candidates. The RNG stream is untouched by
        the filter — every draw consumes the same random values as
        before, only the acceptance differs (a duplicate no longer
        counts toward the neighborhood size). The resulting
        trajectories are pinned by
        ``tests/test_tabu_determinism.py``.
        """
        policies, mapping = solution
        names = self._app.process_names
        moves: list[RemapMove | PolicyMove] = []
        seen: set[tuple] = set()
        attempts = 0
        limit = self._settings.neighborhood
        while len(moves) < limit and attempts < limit * 8:
            attempts += 1
            process_name = rng.choice(names)
            process = self._app.process(process_name)
            policy = policies.of(process_name)
            can_switch = (self._policy_space is not None
                          and len(self._policy_space(process_name)) > 1)
            if can_switch and rng.random() < 0.4:
                candidate = rng.choice(
                    list(self._policy_space(process_name)))
                move = PolicyMove(process_name, candidate)
            else:
                copy_index = rng.randint(0, len(policy.copies) - 1)
                if copy_index == 0 and process.fixed_node is not None:
                    continue
                options = [n for n in process.allowed_nodes
                           if n in self._arch.node_names
                           and n != mapping.node_of(process_name,
                                                    copy_index)]
                if not options:
                    continue
                move = RemapMove(process_name, copy_index,
                                 rng.choice(options))
            if not move.applies_to(solution):
                continue
            key = move.dedup_key()
            if key in seen:
                continue
            seen.add(key)
            moves.append(move)
        return moves

    # -- main loop ----------------------------------------------------------------

    def optimize(self, initial: Solution) -> TabuResult:
        """Run the search from an initial solution."""
        settings = self._settings
        rng = DeterministicRng(settings.seed)
        tenure = settings.effective_tenure(len(self._app))

        current = initial
        current_cost, current_state = self._evaluate_state(current)
        best = current
        best_cost = current_cost
        best_estimate = current_state.estimate
        tabu: dict[tuple, int] = {}
        history = [best_cost]
        stagnant = 0

        for iteration in range(settings.iterations):
            moves = self._sample_moves(current, rng)
            chosen = None
            chosen_cost = None
            chosen_state = None
            chosen_attr = None
            for move in moves:
                attr = move.attribute(current)
                candidate = move.apply(current, self._app)
                cost, state = self._evaluate_move(
                    current_state, candidate, move.process)
                is_tabu = tabu.get(attr, -1) >= iteration
                if is_tabu and cost >= best_cost:
                    continue  # tabu and no aspiration
                if chosen_cost is None or cost < chosen_cost:
                    chosen, chosen_cost = candidate, cost
                    chosen_state, chosen_attr = state, attr
            if chosen is None:
                stagnant += 1
            else:
                tabu[chosen_attr] = iteration + tenure
                current, current_cost = chosen, chosen_cost
                current_state = chosen_state
                if current_cost < best_cost - 1e-9:
                    best, best_cost = current, current_cost
                    best_estimate = current_state.estimate
                    stagnant = 0
                else:
                    stagnant += 1
            history.append(best_cost)

            if stagnant >= settings.no_improve_restart:
                current = self._perturb(best, rng)
                current_cost, current_state = \
                    self._evaluate_state(current)
                tabu.clear()
                stagnant = 0

        return TabuResult(
            policies=best[0],
            mapping=best[1],
            estimate=best_estimate,
            cost=best_cost,
            iterations=settings.iterations,
            evaluations=self._evaluations,
            history=history,
        )

    def _perturb(self, solution: Solution,
                 rng: DeterministicRng) -> Solution:
        """Diversification: a few random remaps away from the best."""
        result = solution
        for _ in range(self._settings.restart_strength):
            moves = self._sample_moves(result, rng)
            if not moves:
                break
            result = rng.choice(moves).apply(result, self._app)
        return result


def policy_candidates(
    app: Application,
    k: int,
    *,
    allow_re_execution: bool = True,
    allow_replication: bool = True,
    allow_combined: bool = True,
    checkpoints_for: Callable[[str], int] | None = None,
) -> PolicySpace:
    """Build the policy space for one strategy.

    ``checkpoints_for`` (process name -> checkpoint count) switches the
    recovering copies from pure re-execution to rollback recovery with
    that many checkpoints (used by the checkpointing strategies of
    Fig. 8).
    """
    def space(process_name: str) -> Sequence[ProcessPolicy]:
        checkpoints = (checkpoints_for(process_name)
                       if checkpoints_for is not None else 0)
        candidates: list[ProcessPolicy] = []
        if allow_re_execution:
            if checkpoints >= 1:
                candidates.append(
                    ProcessPolicy.checkpointing(k, checkpoints))
            else:
                candidates.append(ProcessPolicy.re_execution(k))
        if allow_replication and k >= 1:
            candidates.append(ProcessPolicy.replication(k))
        if allow_combined:
            for replicas in range(1, k):
                candidates.append(
                    ProcessPolicy.replication_and_checkpointing(
                        k, replicas, checkpoints=checkpoints))
        if not candidates:
            candidates.append(ProcessPolicy.none())
        return tuple(candidates)

    return space
