"""The system configuration ``ψ = <F, M, S>`` (paper §6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.policies.types import PolicyAssignment
from repro.schedule.estimation import FtEstimate
from repro.schedule.mapping import CopyMapping
from repro.schedule.table import ScheduleSet


@dataclass
class SystemConfiguration:
    """One synthesized design point.

    ``schedule`` holds the exact conditional tables when they were
    generated (small instances / final validation); during design-space
    exploration only the estimate is available.
    """

    policies: PolicyAssignment
    mapping: CopyMapping
    estimate: FtEstimate
    schedule: ScheduleSet | None = None

    @property
    def schedule_length(self) -> float:
        """Worst-case schedule length (exact if tables exist)."""
        if self.schedule is not None:
            return self.schedule.worst_case_length
        return self.estimate.schedule_length

    @property
    def feasible(self) -> bool:
        """All deadlines met (by the best available analysis)."""
        if self.schedule is not None:
            return self.schedule.meets_deadline
        return self.estimate.feasible
