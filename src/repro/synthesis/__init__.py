"""Fault-tolerant system design (paper §6).

Finding a system configuration ``ψ = <F, M, S>``:

1. fault-tolerance policy assignment ``F = <P, Q, R, X>`` for every
   process — :mod:`repro.synthesis.tabu` explores policy moves;
2. mapping ``M`` for every process and replica — same search;
3. the schedule set ``S`` — the conditional scheduler (exact, small
   instances) or the slack-sharing estimate (inside the search loop).

:mod:`repro.synthesis.strategies` packages the four approaches compared
in the paper's Fig. 7 — MXR (the proposed policy-assignment
optimization), MX (re-execution only), MR (replication only) and SFX
(fault-ignorant mapping with re-execution bolted on) — plus the MC/MCR
checkpointing variants used by Fig. 8, and
:mod:`repro.synthesis.checkpoint_opt` implements the global checkpoint
optimization of [15] against the per-process [27] baseline.
"""

from repro.synthesis.config import SystemConfiguration
from repro.synthesis.initial import initial_mapping, initial_solution
from repro.synthesis.moves import PolicyMove, RemapMove
from repro.synthesis.tabu import TabuSearch, TabuSettings
from repro.synthesis.strategies import (
    STRATEGIES,
    StrategyResult,
    nft_baseline,
    synthesize,
)
from repro.synthesis.checkpoint_opt import (
    assign_local_optimal_checkpoints,
    optimize_checkpoints_globally,
)
from repro.synthesis.bus_opt import BusOptResult, optimize_bus_access

__all__ = [
    "STRATEGIES",
    "BusOptResult",
    "PolicyMove",
    "optimize_bus_access",
    "RemapMove",
    "StrategyResult",
    "SystemConfiguration",
    "TabuSearch",
    "TabuSettings",
    "assign_local_optimal_checkpoints",
    "initial_mapping",
    "initial_solution",
    "nft_baseline",
    "optimize_checkpoints_globally",
    "synthesize",
]
