"""Search moves over (policy assignment, mapping) solutions.

Two move families, mirroring paper §6's two decisions:

* :class:`RemapMove` — move one copy to another allowed node;
* :class:`PolicyMove` — replace one process's fault-tolerance policy
  (re-execution ↔ replication ↔ combined, or a different checkpoint
  count). Changing the copy count re-places new replicas greedily and
  drops stale mapping entries.

Moves are value objects: ``apply`` returns a new solution, ``attribute``
returns the tabu attribute that forbids undoing the move for the tenure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.application import Application
from repro.policies.types import PolicyAssignment, ProcessPolicy
from repro.schedule.mapping import CopyMapping

Solution = tuple[PolicyAssignment, CopyMapping]


def _policy_signature(policy: ProcessPolicy) -> tuple:
    return tuple((c.recoveries, c.checkpoints) for c in policy.copies)


@dataclass(frozen=True)
class RemapMove:
    """Move one copy of one process to another node."""

    process: str
    copy: int
    node: str

    def applies_to(self, solution: Solution) -> bool:
        """False when the copy is already there (no-op)."""
        _, mapping = solution
        return mapping.node_of(self.process, self.copy) != self.node

    def apply(self, solution: Solution, app: Application) -> Solution:
        """New solution with the copy moved."""
        policies, mapping = solution
        return policies, mapping.replaced(self.process, self.copy,
                                          self.node)

    def attribute(self, solution: Solution) -> tuple:
        """Tabu attribute: returning this copy to its old node."""
        _, mapping = solution
        old = mapping.node_of(self.process, self.copy)
        return ("map", self.process, self.copy, old)

    def dedup_key(self) -> tuple:
        """Value identity of the move (neighborhood deduplication)."""
        return ("map", self.process, self.copy, self.node)


@dataclass(frozen=True)
class PolicyMove:
    """Replace one process's policy."""

    process: str
    policy: ProcessPolicy

    def applies_to(self, solution: Solution) -> bool:
        """False when the policy is unchanged."""
        policies, _ = solution
        return (_policy_signature(policies.of(self.process))
                != _policy_signature(self.policy))

    def apply(self, solution: Solution, app: Application) -> Solution:
        """New solution; added copies are placed greedily on the least
        loaded allowed nodes (distinct when possible), removed copies
        disappear from the mapping."""
        policies, mapping = solution
        old_count = len(policies.of(self.process).copies)
        new_count = len(self.policy.copies)
        new_policies = policies.replaced(self.process, self.policy)

        assignments = dict(mapping.items())
        for copy_index in range(new_count, old_count):
            assignments.pop((self.process, copy_index), None)
        if new_count > old_count:
            process = app.process(self.process)
            used = {assignments[(self.process, c)]
                    for c in range(old_count)}
            allowed = list(process.allowed_nodes)
            loads: dict[str, float] = {}
            for (__, ___), node in assignments.items():
                loads[node] = loads.get(node, 0.0) + 1.0
            for copy_index in range(old_count, new_count):
                fresh = [n for n in allowed if n not in used]
                pool = fresh if fresh else allowed
                choice = min(pool, key=lambda n: (loads.get(n, 0.0), n))
                assignments[(self.process, copy_index)] = choice
                loads[choice] = loads.get(choice, 0.0) + 1.0
                used.add(choice)
        return new_policies, CopyMapping(assignments)

    def attribute(self, solution: Solution) -> tuple:
        """Tabu attribute: switching this process back to the old
        policy shape."""
        policies, _ = solution
        return ("pol", self.process,
                _policy_signature(policies.of(self.process)))

    def dedup_key(self) -> tuple:
        """Value identity of the move (neighborhood deduplication).

        Two policies with the same copy-plan signature are the same
        move for the search — they produce identical solutions.
        """
        return ("pol", self.process, _policy_signature(self.policy))
