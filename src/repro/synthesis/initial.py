"""Initial solutions for the design-space exploration.

A greedy load-balancing constructor: processes are placed in
topological order on the allowed node with the smallest resulting load,
and the copies of one process are spread over distinct nodes whenever
the mapping restrictions permit (replicas on one node serialize, which
is exactly what replication is trying to avoid).
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.policies.types import PolicyAssignment, ProcessPolicy
from repro.schedule.mapping import CopyMapping


def initial_mapping(app: Application, arch: Architecture,
                    policies: PolicyAssignment) -> CopyMapping:
    """Greedy load-balanced placement of every copy."""
    loads: dict[str, float] = {n: 0.0 for n in arch.node_names}
    assignments: dict[tuple[str, int], str] = {}
    for process_name in app.topological_order:
        process = app.process(process_name)
        allowed = [n for n in process.allowed_nodes if n in loads]
        if not allowed:
            raise MappingError(
                f"process {process_name!r} has no usable node")
        used_here: set[str] = set()
        for copy_index in range(len(policies.of(process_name).copies)):
            if copy_index == 0 and process.fixed_node is not None:
                choice = process.fixed_node
            else:
                fresh = [n for n in allowed if n not in used_here]
                pool = fresh if fresh else allowed
                choice = min(
                    pool,
                    key=lambda n: (loads[n] + process.wcet_on(n), n))
            assignments[(process_name, copy_index)] = choice
            loads[choice] += process.wcet_on(choice)
            used_here.add(choice)
    return CopyMapping(assignments)


def initial_solution(app: Application, arch: Architecture,
                     policies: PolicyAssignment,
                     ) -> tuple[PolicyAssignment, CopyMapping]:
    """(policies, mapping) starting point for the tabu search."""
    return policies, initial_mapping(app, arch, policies)


def uniform_policies(app: Application, policy: ProcessPolicy,
                     ) -> PolicyAssignment:
    """Thin convenience wrapper used by the strategies module."""
    return PolicyAssignment.uniform(app, policy)
