"""Global checkpoint-count optimization (paper §6, Fig. 8, from [15]).

The [27] baseline picks, for each process in isolation, the checkpoint
count minimizing its own worst case — but checkpoints are paid in
*fault-free* time on the processor by everyone downstream, while the
recovery time they save is *shared slack* (only the node's largest
recovery need matters). Minimizing each process alone therefore
over-checkpoints everything that does not define its node's slack
maximum; the global optimization below fixes exactly that.

Algorithm: steepest-descent over single ``X(P) ± 1`` moves, accepting
the move that most reduces the estimated worst-case schedule length,
until no move improves (bounded by ``max_rounds``). Simple, fully
deterministic, and faithful to the "system optimization" framing of
[15] (the authors likewise embed the checkpoint counts in their
heuristic search rather than solving exactly).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.eval.core import Evaluator, EvaluatorPool
from repro.schedule.estimation_cache import EstimationCache
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.checkpoints import local_optimal_checkpoints
from repro.policies.types import PolicyAssignment
from repro.schedule.estimation import FtEstimate
from repro.schedule.mapping import CopyMapping

#: Safety bound on descent rounds (each round applies one move).
DEFAULT_MAX_ROUNDS = 400


def assign_local_optimal_checkpoints(
    app: Application,
    policies: PolicyAssignment,
    k: int,
    *,
    mapping: CopyMapping | None = None,
) -> PolicyAssignment:
    """Give every recovering copy its per-process [27] optimum.

    With a mapping, the copy's WCET on its node is used; without one,
    the mean WCET (useful before mapping exists).
    """
    updated = policies
    for process_name, policy in policies.items():
        process = app.process(process_name)
        new_policy = policy
        for copy_index, plan in enumerate(policy.copies):
            if plan.recoveries == 0:
                continue
            if mapping is not None:
                wcet = process.wcet_on(
                    mapping.node_of(process_name, copy_index))
            else:
                wcet = sum(process.wcet.values()) / len(process.wcet)
            optimum = local_optimal_checkpoints(
                wcet, min(k, plan.recoveries), process.alpha,
                process.chi, mu=process.mu)
            new_policy = new_policy.with_copy(
                copy_index, plan.with_checkpoints(optimum))
        if new_policy is not policy:
            updated = updated.replaced(process_name, new_policy)
    return updated


def optimize_checkpoints_globally(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    *,
    priorities: Mapping[str, float] | None = None,
    bus_contention: bool = True,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    cache: "EstimationCache | EvaluatorPool | None" = None,
    evaluator: Evaluator | None = None,
) -> tuple[PolicyAssignment, FtEstimate, int]:
    """Steepest-descent over per-copy checkpoint counts.

    Returns ``(policies, estimate, evaluations)``; the mapping is kept
    fixed (checkpoint tuning happens inside the mapping search's inner
    loop in [15]; here it is exposed as its own pass so the Fig. 8
    comparison isolates exactly the checkpointing decision).
    ``evaluations`` counts logical estimator calls whether or not the
    evaluation core serves them from its cache. Every ``X(P) ± 1``
    candidate differs from the incumbent by one process, so cache
    misses take the incremental re-evaluation path.
    """
    if evaluator is None:
        source = cache if cache is not None else EvaluatorPool()
        evaluator = source.evaluator_for(app, arch, fault_model,
                                         priorities=priorities)

    evaluations = 1
    current = policies
    current_state = evaluator.estimate_state(
        current, mapping, bus_contention=bus_contention)

    for _ in range(max_rounds):
        best_move: PolicyAssignment | None = None
        best_state = current_state
        for process_name, policy in current.items():
            for copy_index, plan in enumerate(policy.copies):
                if plan.recoveries == 0 or plan.checkpoints == 0:
                    continue
                for delta in (-1, 1):
                    checkpoints = plan.checkpoints + delta
                    if checkpoints < 1:
                        continue
                    candidate = current.replaced(
                        process_name,
                        policy.with_copy(
                            copy_index,
                            plan.with_checkpoints(checkpoints)))
                    state = evaluator.estimate_move(
                        current_state, candidate, mapping,
                        process_name)
                    evaluations += 1
                    if state.estimate.schedule_length \
                            < best_state.estimate.schedule_length - 1e-9:
                        best_move = candidate
                        best_state = state
        if best_move is None:
            break
        current = best_move
        current_state = best_state
    return current, current_state.estimate, evaluations
