"""Bus access optimization (paper §2; Eles et al. [8]).

The communications of the paper's platform are statically scheduled
over a TDMA bus, and the same research line optimizes the bus access
scheme — the order of the node slots within a round and the slot
length — together with the schedule ("Scheduling with Bus Access
Optimization for Distributed Embedded Systems", reference [8] of the
paper). This module reproduces that step for the fault-tolerant flow:
given a mapping and policy assignment, it searches slot orders and
slot lengths for the TDMA round that minimize the estimated
fault-tolerant schedule length.

Search: exhaustive over slot orders for up to
:data:`EXHAUSTIVE_NODE_LIMIT` nodes (at most 120 permutations),
pairwise-swap hill climbing above that; the slot length is chosen from
a candidate list (a sweep, as in [8]'s experiments). Deterministic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.model.application import Application
from repro.model.architecture import Architecture, BusSpec
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.schedule.estimation import FtEstimate, estimate_ft_schedule
from repro.schedule.mapping import CopyMapping

#: Slot orders are enumerated exhaustively up to this node count (5! = 120).
EXHAUSTIVE_NODE_LIMIT = 5


@dataclass
class BusOptResult:
    """Outcome of the bus access optimization."""

    spec: BusSpec
    architecture: Architecture
    estimate: FtEstimate
    evaluations: int
    baseline_length: float

    @property
    def improvement_percent(self) -> float:
        """Schedule length reduction vs the input bus configuration."""
        if self.baseline_length <= 0:
            return 0.0
        return ((self.baseline_length - self.estimate.schedule_length)
                / self.baseline_length * 100.0)


def optimize_bus_access(
    app: Application,
    arch: Architecture,
    mapping: CopyMapping,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    *,
    slot_lengths: Sequence[float] | None = None,
    priorities: Mapping[str, float] | None = None,
    bus_contention: bool = True,
) -> BusOptResult:
    """Find the TDMA slot order and slot length minimizing the
    estimated fault-tolerant schedule length for a fixed design.

    ``slot_lengths`` defaults to scalings of the current length
    (x0.5, x1, x2); the payload scales proportionally so a slot always
    carries the same bytes-per-time (as in [8], where the slot length
    is bounded below by the frame format, abstracted away here).
    """
    base_spec = arch.bus
    if slot_lengths is None:
        slot_lengths = (base_spec.slot_length * 0.5,
                        base_spec.slot_length,
                        base_spec.slot_length * 2.0)

    evaluations = 0

    def evaluate(spec: BusSpec) -> tuple[float, FtEstimate, Architecture]:
        nonlocal evaluations
        candidate_arch = Architecture(
            list(arch.nodes), spec, name=arch.name)
        estimate = estimate_ft_schedule(
            app, candidate_arch, mapping, policies, fault_model,
            priorities=priorities, bus_contention=bus_contention)
        evaluations += 1
        return estimate.schedule_length, estimate, candidate_arch

    baseline_length, best_estimate, best_arch = evaluate(base_spec)
    best = (baseline_length, base_spec, best_estimate, best_arch)

    node_names = tuple(dict.fromkeys(base_spec.slot_order))
    for slot_length in slot_lengths:
        payload = max(1, round(base_spec.slot_payload_bytes
                               * slot_length / base_spec.slot_length))
        if len(node_names) <= EXHAUSTIVE_NODE_LIMIT:
            orders = itertools.permutations(node_names)
        else:
            orders = _hill_climb_orders(node_names)
        for order in orders:
            spec = BusSpec(slot_order=tuple(order),
                           slot_length=slot_length,
                           slot_payload_bytes=payload)
            length, estimate, candidate_arch = evaluate(spec)
            if length < best[0] - 1e-9:
                best = (length, spec, estimate, candidate_arch)

    return BusOptResult(
        spec=best[1],
        architecture=best[3],
        estimate=best[2],
        evaluations=evaluations,
        baseline_length=baseline_length,
    )


def _hill_climb_orders(node_names: tuple[str, ...]):
    """Deterministic pairwise-swap neighborhood for larger node counts:
    the identity order plus every single swap (one climbing round —
    callers re-run if they want deeper search)."""
    yield node_names
    for i in range(len(node_names)):
        for j in range(i + 1, len(node_names)):
            swapped = list(node_names)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            yield tuple(swapped)
