"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. The finer-grained subclasses map
to the stages of the synthesis flow: model validation, policy
validation, scheduling, runtime simulation and design optimization.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """The application or architecture model is malformed."""


class ValidationError(ModelError):
    """A model object failed semantic validation (bad WCET, cycle, ...)."""


class PolicyError(ReproError):
    """A fault-tolerance policy assignment is inconsistent or does not
    tolerate the required number of faults."""


class MappingError(ReproError):
    """A mapping decision violates a restriction (e.g. a process placed
    on a node it cannot execute on)."""


class SchedulingError(ReproError):
    """The scheduler could not produce a valid schedule."""


class DeadlineMissError(SchedulingError):
    """A produced schedule violates the global or a local deadline."""

    def __init__(self, message: str, *, makespan: float | None = None,
                 deadline: float | None = None) -> None:
        super().__init__(message)
        self.makespan = makespan
        self.deadline = deadline


class ContextExplosionError(SchedulingError):
    """The conditional scheduler exceeded its context budget.

    Raised instead of silently burning CPU when the number of explored
    fault contexts passes the configured limit; callers should lower
    ``k``, shrink the application, or use the estimation scheduler.
    """


class SimulationError(ReproError):
    """The runtime simulator detected an inconsistency while executing a
    schedule table (collision, missing input, guard ambiguity, ...)."""


class ToleranceViolationError(SimulationError):
    """A fault scenario within the declared budget ``k`` was *not*
    tolerated by the synthesized schedule."""


class SynthesisError(ReproError):
    """Design-space exploration failed to produce a feasible system
    configuration."""
