"""repro — Synthesis of Fault-Tolerant Embedded Systems.

A from-scratch Python reproduction of

    P. Eles, V. Izosimov, P. Pop, Z. Peng,
    "Synthesis of Fault-Tolerant Embedded Systems",
    DATE 2008, pp. 1117-1122. DOI: 10.1109/DATE.2008.4484825

The library covers the paper's complete flow: application/architecture
models with a TTP-style TDMA bus, the ``k``-transient-fault model,
checkpointing/re-execution/replication policies, the fault-tolerant
conditional process graph (FT-CPG), exact quasi-static conditional
scheduling into per-node schedule tables with transparency (frozen)
support, recovery-slack-sharing schedule length estimation (with a
unified incremental evaluation core, :mod:`repro.eval`), tabu-search
mapping and policy assignment (MXR/MX/MR/SFX), global checkpoint-count
optimization, a discrete-event distributed runtime simulator, and an
exhaustive fault-scenario verifier. See DESIGN.md for the system map
and EXPERIMENTS.md for the paper-vs-measured record.

Quick start::

    from repro.model import (Application, Architecture, Process,
                             Message, FaultModel, Transparency)
    from repro.policies import ProcessPolicy, PolicyAssignment
    from repro.schedule import CopyMapping, synthesize_schedule
    from repro.runtime import verify_tolerance
    from repro.synthesis import synthesize
"""

from repro.errors import (
    ContextExplosionError,
    DeadlineMissError,
    MappingError,
    ModelError,
    PolicyError,
    ReproError,
    SchedulingError,
    SimulationError,
    SynthesisError,
    ToleranceViolationError,
    ValidationError,
)
from repro.model import (
    Application,
    Architecture,
    BusSpec,
    FaultModel,
    Message,
    Node,
    Process,
    Transparency,
    merge_applications,
    validate_model,
)
from repro.policies import (
    CopyExecution,
    CopyPlan,
    PolicyAssignment,
    PolicyKind,
    ProcessPolicy,
    local_optimal_checkpoints,
)
from repro.ftcpg import (
    AttemptId,
    ConditionLiteral,
    FaultPlan,
    Ftcpg,
    Guard,
    build_ftcpg,
    count_fault_plans,
    iter_fault_plans,
)
from repro.schedule import (
    CopyMapping,
    FtEstimate,
    ScheduleSet,
    estimate_ft_schedule,
    fault_tolerance_overhead,
    render_schedule_set,
    schedule_fault_free,
    synthesize_schedule,
)
from repro.runtime import simulate, verify_tolerance
from repro.synthesis import (
    StrategyResult,
    SystemConfiguration,
    TabuSettings,
    nft_baseline,
    synthesize,
)

from repro._version import __version__
from repro.eval import (
    DesignEvaluation,
    Evaluator,
    EvaluatorPool,
    ScheduleProblem,
)

__all__ = [
    "Application",
    "Architecture",
    "AttemptId",
    "BusSpec",
    "ConditionLiteral",
    "ContextExplosionError",
    "CopyExecution",
    "CopyMapping",
    "CopyPlan",
    "DeadlineMissError",
    "DesignEvaluation",
    "Evaluator",
    "EvaluatorPool",
    "FaultModel",
    "FaultPlan",
    "FtEstimate",
    "Ftcpg",
    "Guard",
    "MappingError",
    "Message",
    "ModelError",
    "Node",
    "PolicyAssignment",
    "PolicyError",
    "PolicyKind",
    "Process",
    "ProcessPolicy",
    "ReproError",
    "ScheduleProblem",
    "ScheduleSet",
    "SchedulingError",
    "SimulationError",
    "StrategyResult",
    "SynthesisError",
    "SystemConfiguration",
    "TabuSettings",
    "ToleranceViolationError",
    "Transparency",
    "ValidationError",
    "build_ftcpg",
    "count_fault_plans",
    "estimate_ft_schedule",
    "fault_tolerance_overhead",
    "iter_fault_plans",
    "local_optimal_checkpoints",
    "merge_applications",
    "nft_baseline",
    "render_schedule_set",
    "schedule_fault_free",
    "simulate",
    "synthesize",
    "synthesize_schedule",
    "validate_model",
    "verify_tolerance",
]
