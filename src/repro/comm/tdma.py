"""TDMA slot arithmetic.

Time on the bus is an infinite sequence of rounds; round ``r`` starts
at ``r * round_length`` and contains ``len(slot_order)`` slots of
``slot_length`` each. Slot ``s`` of round ``r`` is therefore the
half-open interval ``[r*R + s*L, r*R + (s+1)*L)`` and belongs to node
``slot_order[s]``.

A message of ``n`` frames sent by node ``N`` occupies ``n`` *distinct*
slot occurrences owned by ``N`` (not necessarily consecutive rounds if
some are already reserved); the data is available to all receivers at
the end of the last frame's slot (broadcast bus).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import SchedulingError, ValidationError
from repro.model.architecture import BusSpec
from repro.utils.mathutils import TIME_EPS, ceil_div

#: Safety bound on slot searches; reaching it means the caller asked
#: for a transmission absurdly far in the future (usually a logic bug).
_MAX_SEARCH_ROUNDS = 1_000_000


class FrameWindow(NamedTuple):
    """One reserved slot occurrence.

    A ``NamedTuple`` rather than a frozen dataclass: slot searches
    construct one per accepted frame on the hottest estimation paths,
    and tuple construction is C-level while a frozen dataclass pays
    ``object.__setattr__`` per field.
    """

    round_index: int
    slot_index: int
    start: float
    end: float


class Transmission(NamedTuple):
    """A scheduled message transmission: one or more frame windows."""

    sender: str
    frames: tuple[FrameWindow, ...]

    @property
    def start(self) -> float:
        """Start of the first frame."""
        return self.frames[0].start

    @property
    def arrival(self) -> float:
        """Time at which all receivers hold the complete message."""
        return self.frames[-1].end


class TdmaBus:
    """Slot arithmetic for one :class:`BusSpec`."""

    def __init__(self, spec: BusSpec) -> None:
        self._spec = spec
        self._slots_of: dict[str, tuple[int, ...]] = {}
        for index, owner in enumerate(spec.slot_order):
            self._slots_of.setdefault(owner, ())
            self._slots_of[owner] += (index,)
        # Cached once: the slot searches below touch these per
        # candidate window, and the property chain through BusSpec
        # recomputes the round length on every access.
        self._round_length = spec.round_length
        self._slot_length = spec.slot_length

    @property
    def spec(self) -> BusSpec:
        """The underlying static specification."""
        return self._spec

    @property
    def round_length(self) -> float:
        """Duration of one round."""
        return self._round_length

    def slots_of(self, node: str) -> tuple[int, ...]:
        """Slot indices within a round owned by ``node``."""
        try:
            return self._slots_of[node]
        except KeyError:
            raise ValidationError(f"node {node!r} owns no bus slot") from None

    def slot_window(self, round_index: int, slot_index: int) -> FrameWindow:
        """The time window of one slot occurrence."""
        start = (round_index * self._round_length
                 + slot_index * self._slot_length)
        return FrameWindow(round_index, slot_index, start,
                           start + self._slot_length)

    def frames_needed(self, size_bytes: int) -> int:
        """Frames required for a payload of ``size_bytes``."""
        return ceil_div(size_bytes, self._spec.slot_payload_bytes)

    def owner_slot_occurrences(self, node: str, earliest: float):
        """Yield the node's slot windows starting at or after ``earliest``.

        A generator over :class:`FrameWindow`, in time order; the frame
        must be ready *at* the slot start (the communication controller
        latches the frame when the slot opens), so windows whose start
        is (within tolerance) >= ``earliest`` qualify.
        """
        slots = self.slots_of(node)
        round_length = self._round_length
        slot_length = self._slot_length
        threshold = earliest - TIME_EPS
        round_index = max(0, int(earliest // round_length) - 1)
        for r in range(round_index, round_index + _MAX_SEARCH_ROUNDS):
            for s in slots:
                start = r * round_length + s * slot_length
                if start >= threshold:
                    yield FrameWindow(r, s, start, start + slot_length)
        raise SchedulingError(
            f"no bus slot found for {node!r} within "
            f"{_MAX_SEARCH_ROUNDS} rounds of t={earliest}"
        )  # pragma: no cover - defensive

    def schedule_transmission(self, node: str, earliest: float,
                              size_bytes: int,
                              reservations: "BusReservationsLike",
                              ) -> Transmission:
        """Reserve the earliest free slots for a message.

        ``reservations`` is consulted and updated; frames use the first
        free slot occurrences of ``node`` at or after ``earliest``.
        """
        remaining = self.frames_needed(size_bytes)
        slots = self.slots_of(node)
        round_length = self._round_length
        slot_length = self._slot_length
        threshold = earliest - TIME_EPS
        acquire = reservations.acquire
        frames: list[FrameWindow] = []
        # Inlined slot search (same windows, same order as
        # :meth:`owner_slot_occurrences`): the generator handshake and
        # the window objects of reserved candidates are pure overhead
        # on this hottest of paths.
        first = max(0, int(earliest // round_length) - 1)
        for r in range(first, first + _MAX_SEARCH_ROUNDS):
            base = r * round_length
            for s in slots:
                start = base + s * slot_length
                if start < threshold:
                    continue
                if not acquire((r, s)):
                    continue
                frames.append(FrameWindow(r, s, start,
                                          start + slot_length))
                remaining -= 1
                if remaining == 0:
                    return Transmission(sender=node, frames=tuple(frames))
        raise SchedulingError(
            f"no free bus slot for {node!r} within "
            f"{_MAX_SEARCH_ROUNDS} rounds of t={earliest}"
        )  # pragma: no cover - defensive


class BusReservationsLike:
    """Protocol-ish base used only for documentation/typing."""

    def is_reserved(self, key: tuple[int, int]) -> bool:  # pragma: no cover
        raise NotImplementedError

    def reserve(self, key: tuple[int, int]) -> None:  # pragma: no cover
        raise NotImplementedError

    def acquire(self, key: tuple[int, int]) -> bool:  # pragma: no cover
        """Reserve if free; default composes the two primitives."""
        if self.is_reserved(key):
            return False
        self.reserve(key)
        return True
