"""TDMA slot arithmetic.

Time on the bus is an infinite sequence of rounds; round ``r`` starts
at ``r * round_length`` and contains ``len(slot_order)`` slots of
``slot_length`` each. Slot ``s`` of round ``r`` is therefore the
half-open interval ``[r*R + s*L, r*R + (s+1)*L)`` and belongs to node
``slot_order[s]``.

A message of ``n`` frames sent by node ``N`` occupies ``n`` *distinct*
slot occurrences owned by ``N`` (not necessarily consecutive rounds if
some are already reserved); the data is available to all receivers at
the end of the last frame's slot (broadcast bus).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError, ValidationError
from repro.model.architecture import BusSpec
from repro.utils.mathutils import TIME_EPS, ceil_div

#: Safety bound on slot searches; reaching it means the caller asked
#: for a transmission absurdly far in the future (usually a logic bug).
_MAX_SEARCH_ROUNDS = 1_000_000


@dataclass(frozen=True)
class FrameWindow:
    """One reserved slot occurrence."""

    round_index: int
    slot_index: int
    start: float
    end: float


@dataclass(frozen=True)
class Transmission:
    """A scheduled message transmission: one or more frame windows."""

    sender: str
    frames: tuple[FrameWindow, ...]

    @property
    def start(self) -> float:
        """Start of the first frame."""
        return self.frames[0].start

    @property
    def arrival(self) -> float:
        """Time at which all receivers hold the complete message."""
        return self.frames[-1].end


class TdmaBus:
    """Slot arithmetic for one :class:`BusSpec`."""

    def __init__(self, spec: BusSpec) -> None:
        self._spec = spec
        self._slots_of: dict[str, tuple[int, ...]] = {}
        for index, owner in enumerate(spec.slot_order):
            self._slots_of.setdefault(owner, ())
            self._slots_of[owner] += (index,)

    @property
    def spec(self) -> BusSpec:
        """The underlying static specification."""
        return self._spec

    @property
    def round_length(self) -> float:
        """Duration of one round."""
        return self._spec.round_length

    def slots_of(self, node: str) -> tuple[int, ...]:
        """Slot indices within a round owned by ``node``."""
        try:
            return self._slots_of[node]
        except KeyError:
            raise ValidationError(f"node {node!r} owns no bus slot") from None

    def slot_window(self, round_index: int, slot_index: int) -> FrameWindow:
        """The time window of one slot occurrence."""
        start = (round_index * self.round_length
                 + slot_index * self._spec.slot_length)
        return FrameWindow(round_index, slot_index, start,
                           start + self._spec.slot_length)

    def frames_needed(self, size_bytes: int) -> int:
        """Frames required for a payload of ``size_bytes``."""
        return ceil_div(size_bytes, self._spec.slot_payload_bytes)

    def owner_slot_occurrences(self, node: str, earliest: float):
        """Yield the node's slot windows starting at or after ``earliest``.

        A generator over :class:`FrameWindow`, in time order; the frame
        must be ready *at* the slot start (the communication controller
        latches the frame when the slot opens), so windows whose start
        is (within tolerance) >= ``earliest`` qualify.
        """
        slots = self.slots_of(node)
        round_index = max(0, int(earliest // self.round_length) - 1)
        for r in range(round_index, round_index + _MAX_SEARCH_ROUNDS):
            for s in slots:
                window = self.slot_window(r, s)
                if window.start >= earliest - TIME_EPS:
                    yield window
        raise SchedulingError(
            f"no bus slot found for {node!r} within "
            f"{_MAX_SEARCH_ROUNDS} rounds of t={earliest}"
        )  # pragma: no cover - defensive

    def schedule_transmission(self, node: str, earliest: float,
                              size_bytes: int,
                              reservations: "BusReservationsLike",
                              ) -> Transmission:
        """Reserve the earliest free slots for a message.

        ``reservations`` is consulted and updated; frames use the first
        free slot occurrences of ``node`` at or after ``earliest``.
        """
        remaining = self.frames_needed(size_bytes)
        frames: list[FrameWindow] = []
        for window in self.owner_slot_occurrences(node, earliest):
            key = (window.round_index, window.slot_index)
            if reservations.is_reserved(key):
                continue
            reservations.reserve(key)
            frames.append(window)
            remaining -= 1
            if remaining == 0:
                break
        return Transmission(sender=node, frames=tuple(frames))


class BusReservationsLike:
    """Protocol-ish base used only for documentation/typing."""

    def is_reserved(self, key: tuple[int, int]) -> bool:  # pragma: no cover
        raise NotImplementedError

    def reserve(self, key: tuple[int, int]) -> None:  # pragma: no cover
        raise NotImplementedError
