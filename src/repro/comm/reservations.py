"""Bus slot reservation tables.

A reservation table records which ``(round, slot)`` occurrences a
partial schedule has already claimed. The conditional scheduler forks
one table per execution context, so the structure supports O(1)
copy-on-write-ish cloning: a child context shares the parent's frozen
set and adds its own overlay.
"""

from __future__ import annotations


class BusReservations:
    """Mutable set of reserved ``(round, slot)`` occurrences with cheap
    hierarchical cloning."""

    __slots__ = ("_parent", "_own")

    def __init__(self, parent: "BusReservations | None" = None) -> None:
        self._parent = parent
        self._own: set[tuple[int, int]] = set()

    def is_reserved(self, key: tuple[int, int]) -> bool:
        """True if the slot occurrence is taken in this context."""
        table: BusReservations | None = self
        while table is not None:
            if key in table._own:
                return True
            table = table._parent
        return False

    def reserve(self, key: tuple[int, int]) -> None:
        """Claim a slot occurrence; raises if already taken."""
        if self.is_reserved(key):
            raise ValueError(f"bus slot {key} reserved twice")
        self._own.add(key)

    def acquire(self, key: tuple[int, int]) -> bool:
        """Claim a slot occurrence if free; one ancestry walk total.

        Equivalent to ``is_reserved`` + ``reserve`` but walks the
        parent chain once — slot searches probe many occupied slots,
        so the doubled walk is measurable.
        """
        table: BusReservations | None = self
        while table is not None:
            if key in table._own:
                return False
            table = table._parent
        self._own.add(key)
        return True

    def fork(self) -> "BusReservations":
        """Child table sharing everything reserved so far.

        The child sees all current reservations but its own future
        reservations are invisible to the parent and to siblings.
        """
        return BusReservations(parent=self)

    def flatten(self) -> set[tuple[int, int]]:
        """All reservations visible from this context (for inspection)."""
        result: set[tuple[int, int]] = set()
        table: BusReservations | None = self
        while table is not None:
            result |= table._own
            table = table._parent
        return result

    def __len__(self) -> int:
        return len(self.flatten())
