"""TTP-style TDMA bus substrate (paper §2).

:class:`TdmaBus` turns a static :class:`~repro.model.architecture.BusSpec`
into slot-timing arithmetic, and :class:`BusReservations` tracks which
slots a (partial) schedule has already claimed, so several schedulers
(fault-free list scheduler, conditional scheduler contexts, runtime
simulator) share one consistent notion of when a frame can go out.
"""

from repro.comm.tdma import FrameWindow, TdmaBus, Transmission
from repro.comm.reservations import BusReservations

__all__ = ["BusReservations", "FrameWindow", "TdmaBus", "Transmission"]
