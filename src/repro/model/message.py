"""The message model (paper §4).

An edge ``e_ij`` of the application graph carries the output of ``Pi``
to ``Pj`` encapsulated in a message. Messages between processes mapped
on the same node cost nothing (their time is folded into the sender's
WCET); messages between different nodes are transmitted on the TDMA
bus, where their worst-case size translates into a number of frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True, eq=False)
class Message:
    """One message of the application graph.

    Parameters
    ----------
    name:
        Unique identifier within the application (e.g. ``"m1"``).
    src, dst:
        Names of the producer and consumer processes.
    size_bytes:
        Worst-case payload size; translated to a frame count by the
        bus specification.
    """

    name: str
    src: str
    dst: str
    size_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("message name must be non-empty")
        if not self.src or not self.dst:
            raise ValidationError(
                f"message {self.name!r} must name a source and a destination"
            )
        if self.src == self.dst:
            raise ValidationError(
                f"message {self.name!r} is a self-loop on {self.src!r}"
            )
        if self.size_bytes <= 0:
            raise ValidationError(
                f"message {self.name!r} must have a positive size"
            )

    def renamed(self, name: str, src: str, dst: str) -> "Message":
        """Copy with new endpoints (used by the hyperperiod merge)."""
        return Message(name=name, src=src, dst=dst,
                       size_bytes=self.size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.name!r}, {self.src}->{self.dst})"
