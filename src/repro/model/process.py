"""The process model (paper §4).

A process is a non-preemptable unit of computation with a worst-case
execution time for every computation node it may be mapped on, plus the
three fault-tolerance overheads of §3:

* ``alpha`` — error-detection overhead, paid at the end of every
  execution segment;
* ``mu`` — recovery overhead, paid when restoring a checkpoint (or the
  initial inputs, for re-execution) after a detected fault;
* ``chi`` — checkpointing overhead, paid for saving one checkpoint.

Mapping restrictions (the "X" entries of paper Fig. 3c) are expressed
simply by omitting a node from the ``wcet`` table. A designer-imposed
mapping (paper §6: processes tied to sensors/actuators) is expressed
with ``fixed_node``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping

from repro.errors import ValidationError


@dataclass(frozen=True, eq=False)
class Process:
    """One application process.

    Parameters
    ----------
    name:
        Unique identifier within the application (e.g. ``"P1"``).
    wcet:
        Worst-case execution time per node name. Nodes not listed are
        mapping-restricted ("X" in paper Fig. 3c). Times include the
        cost of sending messages to same-node consumers (paper §4).
    alpha, mu, chi:
        Fault-tolerance overheads (§3); all default to zero.
    release:
        Earliest start time relative to the start of the execution
        cycle (used by the hyperperiod merge).
    deadline:
        Optional local hard deadline ``dlocal`` (paper §4).
    fixed_node:
        Node name this process *must* be mapped on, or ``None`` when
        the mapping is left to design optimization.
    """

    name: str
    wcet: Mapping[str, float]
    alpha: float = 0.0
    mu: float = 0.0
    chi: float = 0.0
    release: float = 0.0
    deadline: float | None = None
    fixed_node: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("process name must be non-empty")
        if not self.wcet:
            raise ValidationError(
                f"process {self.name!r} has an empty WCET table "
                "(it could never be mapped)"
            )
        for node, value in self.wcet.items():
            if not (math.isfinite(value) and value > 0):
                raise ValidationError(
                    f"process {self.name!r} has invalid WCET {value!r} "
                    f"on node {node!r}"
                )
        for label, value in (
            ("alpha", self.alpha),
            ("mu", self.mu),
            ("chi", self.chi),
            ("release", self.release),
        ):
            if not (math.isfinite(value) and value >= 0):
                raise ValidationError(
                    f"process {self.name!r}: {label} must be >= 0, "
                    f"got {value!r}"
                )
        if self.deadline is not None and self.deadline <= 0:
            raise ValidationError(
                f"process {self.name!r}: local deadline must be positive"
            )
        if self.fixed_node is not None and self.fixed_node not in self.wcet:
            raise ValidationError(
                f"process {self.name!r} is fixed on node "
                f"{self.fixed_node!r} but has no WCET there"
            )
        # Freeze the WCET table against accidental mutation.
        object.__setattr__(self, "wcet", dict(self.wcet))

    @property
    def allowed_nodes(self) -> tuple[str, ...]:
        """Node names this process may be mapped on, sorted."""
        if self.fixed_node is not None:
            return (self.fixed_node,)
        return tuple(sorted(self.wcet))

    def wcet_on(self, node: str) -> float:
        """WCET on ``node``; raises if the mapping is restricted."""
        try:
            return self.wcet[node]
        except KeyError:
            raise ValidationError(
                f"process {self.name!r} cannot execute on node {node!r}"
            ) from None

    def renamed(self, name: str, *, release: float | None = None,
                deadline: float | None = None) -> "Process":
        """Copy with a new name (used by the hyperperiod merge)."""
        return Process(
            name=name,
            wcet=dict(self.wcet),
            alpha=self.alpha,
            mu=self.mu,
            chi=self.chi,
            release=self.release if release is None else release,
            deadline=self.deadline if deadline is None else deadline,
            fixed_node=self.fixed_node,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nodes = ",".join(sorted(self.wcet))
        return f"Process({self.name!r}, nodes=[{nodes}])"

