"""Hyperperiod merge of several periodic applications (paper §4).

Each application ``A_k`` with period ``T_k`` is instantiated
``T / T_k`` times inside the hyperperiod ``T = lcm(T_1, ..., T_n)``.
Instance ``i`` of a process gets a release time ``i * T_k`` and a local
deadline ``(i + 1) * T_k`` (each job must finish before the next period
starts), mirroring the standard construction the paper relies on when
it says "the graphs are merged into a single graph with a period T".

Messages are duplicated within each instance; there are no cross-
instance edges (a periodic job communicates within its own iteration).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ValidationError
from repro.model.application import Application
from repro.model.message import Message
from repro.model.process import Process
from repro.utils.mathutils import lcm_many


def merge_applications(apps: Sequence[Application], *,
                       name: str = "merged") -> Application:
    """Merge periodic applications into one virtual application.

    Every input application must declare an integral period. Process
    and message names are suffixed with ``@i`` for instance ``i`` (and
    prefixed with the application name when merging more than one
    application, to keep names unique).
    """
    if not apps:
        raise ValidationError("merge_applications() needs at least one app")
    periods: list[int] = []
    for app in apps:
        if app.period is None:
            raise ValidationError(
                f"application {app.name!r} has no period; cannot merge"
            )
        if app.period != int(app.period):
            raise ValidationError(
                f"application {app.name!r} period must be integral for "
                f"an exact LCM, got {app.period}"
            )
        periods.append(int(app.period))
    hyperperiod = lcm_many(periods)

    processes: list[Process] = []
    messages: list[Message] = []
    multi = len(apps) > 1

    for app, period in zip(apps, periods):
        instances = hyperperiod // period
        prefix = f"{app.name}." if multi else ""
        for i in range(instances):
            release = float(i * period)
            instance_deadline = float((i + 1) * period)
            for process in app.processes:
                local = process.deadline
                if local is None:
                    local = min(instance_deadline, release + app.deadline)
                else:
                    local = min(release + local, instance_deadline)
                processes.append(process.renamed(
                    f"{prefix}{process.name}@{i}",
                    release=release + process.release,
                    deadline=local,
                ))
            for message in app.messages:
                messages.append(message.renamed(
                    f"{prefix}{message.name}@{i}",
                    src=f"{prefix}{message.src}@{i}",
                    dst=f"{prefix}{message.dst}@{i}",
                ))

    return Application(
        processes,
        messages,
        deadline=float(hyperperiod),
        period=float(hyperperiod),
        name=name,
    )
