"""Transparency requirements (paper §3.3 and §4).

The designer may declare any process or message *frozen*
(``T(v) = frozen``). The scheduler must then allocate the **same start
time** to that node in *all* alternative fault-tolerant schedules,
which contains faults (a fault in one part of the system is invisible
to frozen items), improves debuggability (fewer distinct execution
traces), but can increase the worst-case schedule length.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ValidationError
from repro.model.application import Application


class Transparency:
    """The ``T : V -> {frozen, not_frozen}`` function of paper §4."""

    def __init__(self, frozen_processes: Iterable[str] = (),
                 frozen_messages: Iterable[str] = ()) -> None:
        self._processes = frozenset(frozen_processes)
        self._messages = frozenset(frozen_messages)

    @classmethod
    def none(cls) -> "Transparency":
        """No transparency requirements (best performance)."""
        return cls()

    @classmethod
    def full(cls, app: Application) -> "Transparency":
        """Fully transparent system: every process and message frozen."""
        return cls(app.process_names, app.message_names)

    @classmethod
    def messages_only(cls, app: Application) -> "Transparency":
        """All messages frozen (a common intermediate point: internal
        recovery stays local, the bus schedule is static)."""
        return cls((), app.message_names)

    @property
    def frozen_processes(self) -> frozenset[str]:
        """Names of frozen processes."""
        return self._processes

    @property
    def frozen_messages(self) -> frozenset[str]:
        """Names of frozen messages."""
        return self._messages

    def is_frozen_process(self, name: str) -> bool:
        """True when the process is frozen."""
        return name in self._processes

    def is_frozen_message(self, name: str) -> bool:
        """True when the message is frozen."""
        return name in self._messages

    @property
    def is_trivial(self) -> bool:
        """True when nothing is frozen."""
        return not self._processes and not self._messages

    def validate(self, app: Application) -> None:
        """Check that every frozen name exists in the application."""
        unknown = [p for p in self._processes
                   if p not in set(app.process_names)]
        unknown += [m for m in self._messages
                    if m not in set(app.message_names)]
        if unknown:
            raise ValidationError(
                f"transparency references unknown items: {sorted(unknown)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transparency(processes={sorted(self._processes)}, "
            f"messages={sorted(self._messages)})"
        )
