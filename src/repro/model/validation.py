"""Cross-validation of an application against an architecture.

The individual model classes validate themselves locally; this module
checks the properties that span both models (every process mappable on
at least one existing node, fixed mappings exist, ...). Synthesis entry
points call :func:`validate_model` once up front so later stages can
assume a consistent model.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.model.application import Application
from repro.model.architecture import Architecture


def validate_model(app: Application, arch: Architecture) -> None:
    """Raise :class:`ValidationError` on any app/arch inconsistency."""
    node_names = set(arch.node_names)
    for process in app.processes:
        usable = [n for n in process.wcet if n in node_names]
        if not usable:
            raise ValidationError(
                f"process {process.name!r} has no WCET on any node of "
                f"architecture {arch.name!r}"
            )
        if process.fixed_node is not None and process.fixed_node not in node_names:
            raise ValidationError(
                f"process {process.name!r} is fixed on {process.fixed_node!r} "
                "which is not part of the architecture"
            )
        if process.release >= app.deadline:
            raise ValidationError(
                f"process {process.name!r} releases at {process.release} "
                f"on/after the global deadline {app.deadline}"
            )
        if process.deadline is not None and process.deadline > app.deadline:
            # A local deadline beyond D is legal but meaningless; treat
            # as a modelling error to surface typos early.
            raise ValidationError(
                f"process {process.name!r} local deadline "
                f"{process.deadline} exceeds the global deadline "
                f"{app.deadline}"
            )
