"""The application graph (paper §4).

An :class:`Application` is a directed acyclic graph ``G(V, E)`` whose
nodes are :class:`~repro.model.process.Process` objects and whose edges
are :class:`~repro.model.message.Message` objects. A global hard
deadline ``D`` bounds the completion of every execution scenario; the
optional ``period`` is used by the hyperperiod merge.

The class is immutable after construction and pre-computes the
adjacency and a deterministic topological order, which the schedulers
rely on for tie-breaking.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import ValidationError
from repro.model.message import Message
from repro.model.process import Process
from repro.utils.graphs import topological_order, transitive_successors


class Application:
    """An acyclic application graph with a global deadline."""

    def __init__(
        self,
        processes: Iterable[Process],
        messages: Iterable[Message] = (),
        *,
        deadline: float,
        period: float | None = None,
        name: str = "app",
    ) -> None:
        self._name = name
        self._processes: dict[str, Process] = {}
        for process in processes:
            if process.name in self._processes:
                raise ValidationError(
                    f"duplicate process name {process.name!r}"
                )
            self._processes[process.name] = process
        if not self._processes:
            raise ValidationError("application must have at least 1 process")

        self._messages: dict[str, Message] = {}
        for message in messages:
            if message.name in self._messages:
                raise ValidationError(
                    f"duplicate message name {message.name!r}"
                )
            if message.name in self._processes:
                raise ValidationError(
                    f"name {message.name!r} used for both a process "
                    "and a message"
                )
            for endpoint in (message.src, message.dst):
                if endpoint not in self._processes:
                    raise ValidationError(
                        f"message {message.name!r} references unknown "
                        f"process {endpoint!r}"
                    )
            self._messages[message.name] = message

        if not (math.isfinite(deadline) and deadline > 0):
            raise ValidationError(f"deadline must be positive, got {deadline!r}")
        if period is not None and period <= 0:
            raise ValidationError(f"period must be positive, got {period!r}")
        self._deadline = float(deadline)
        self._period = None if period is None else float(period)

        # Adjacency, keyed by process name, in insertion order.
        self._out: dict[str, list[Message]] = {p: [] for p in self._processes}
        self._in: dict[str, list[Message]] = {p: [] for p in self._processes}
        for message in self._messages.values():
            self._out[message.src].append(message)
            self._in[message.dst].append(message)

        successors = {
            p: [m.dst for m in self._out[p]] for p in self._processes
        }
        # Raises ValidationError on cycles.
        self._topo = tuple(
            topological_order(list(self._processes), successors)
        )
        self._reach = transitive_successors(list(self._processes), successors)

    # -- basic accessors ----------------------------------------------------

    @property
    def name(self) -> str:
        """Application name."""
        return self._name

    @property
    def deadline(self) -> float:
        """Global hard deadline ``D``."""
        return self._deadline

    @property
    def period(self) -> float | None:
        """Execution period ``T`` (``None`` for aperiodic use)."""
        return self._period

    @property
    def process_names(self) -> tuple[str, ...]:
        """Process names in insertion order."""
        return tuple(self._processes)

    @property
    def message_names(self) -> tuple[str, ...]:
        """Message names in insertion order."""
        return tuple(self._messages)

    @property
    def processes(self) -> tuple[Process, ...]:
        """All processes in insertion order."""
        return tuple(self._processes.values())

    @property
    def messages(self) -> tuple[Message, ...]:
        """All messages in insertion order."""
        return tuple(self._messages.values())

    def process(self, name: str) -> Process:
        """Look up a process by name."""
        try:
            return self._processes[name]
        except KeyError:
            raise ValidationError(f"unknown process {name!r}") from None

    def message(self, name: str) -> Message:
        """Look up a message by name."""
        try:
            return self._messages[name]
        except KeyError:
            raise ValidationError(f"unknown message {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._processes or name in self._messages

    def __len__(self) -> int:
        return len(self._processes)

    # -- structure ----------------------------------------------------------

    def inputs_of(self, process_name: str) -> tuple[Message, ...]:
        """Messages consumed by a process."""
        return tuple(self._in[process_name])

    def outputs_of(self, process_name: str) -> tuple[Message, ...]:
        """Messages produced by a process."""
        return tuple(self._out[process_name])

    def predecessors(self, process_name: str) -> tuple[str, ...]:
        """Names of direct predecessor processes (deduplicated)."""
        seen: dict[str, None] = {}
        for message in self._in[process_name]:
            seen.setdefault(message.src, None)
        return tuple(seen)

    def successors(self, process_name: str) -> tuple[str, ...]:
        """Names of direct successor processes (deduplicated)."""
        seen: dict[str, None] = {}
        for message in self._out[process_name]:
            seen.setdefault(message.dst, None)
        return tuple(seen)

    def descendants(self, process_name: str) -> frozenset[str]:
        """All processes reachable from ``process_name``."""
        return self._reach[process_name]

    @property
    def topological_order(self) -> tuple[str, ...]:
        """A deterministic topological order of the process names."""
        return self._topo

    @property
    def sources(self) -> tuple[str, ...]:
        """Processes with no predecessors, in topological order."""
        return tuple(p for p in self._topo if not self._in[p])

    @property
    def sinks(self) -> tuple[str, ...]:
        """Processes with no successors, in topological order."""
        return tuple(p for p in self._topo if not self._out[p])

    # -- derived metrics ----------------------------------------------------

    def mean_wcet(self) -> float:
        """Mean WCET over all (process, allowed node) pairs.

        Used by workload generators to size overheads relative to
        computation times.
        """
        total = 0.0
        count = 0
        for process in self._processes.values():
            for value in process.wcet.values():
                total += value
                count += 1
        return total / count

    def with_deadline(self, deadline: float) -> "Application":
        """Copy of this application with a different global deadline."""
        return Application(
            self.processes,
            self.messages,
            deadline=deadline,
            period=self._period,
            name=self._name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Application({self._name!r}, processes={len(self._processes)}, "
            f"messages={len(self._messages)}, deadline={self._deadline})"
        )


def edge_pairs(app: Application) -> Sequence[tuple[str, str]]:
    """All (src, dst) process-name pairs with at least one message."""
    pairs: dict[tuple[str, str], None] = {}
    for message in app.messages:
        pairs.setdefault((message.src, message.dst), None)
    return tuple(pairs)
