"""The transient fault model (paper §2).

At most ``k`` transient faults may occur *anywhere in the system*
during one operation cycle of the application — several faults may hit
different processors simultaneously, several may hit the same
processor, and ``k`` may exceed the processor count (paper footnote 1).
Permanent faults are out of scope (handled by hardware replication).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class FaultModel:
    """Maximum number of transient faults per operation cycle.

    Parameters
    ----------
    k:
        Fault budget. ``k = 0`` degenerates to non-fault-tolerant
        design and is accepted (useful for baselines).
    condition_size_bytes:
        Payload of a condition-value broadcast frame (paper §5.2: after
        a conditional process terminates, its condition value is
        broadcast to all other nodes). One byte is enough for one
        boolean plus identification in any realistic encoding; it is
        configurable for bus-load studies.
    """

    k: int
    condition_size_bytes: int = 1

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValidationError(f"fault budget k must be >= 0, got {self.k}")
        if self.condition_size_bytes <= 0:
            raise ValidationError("condition_size_bytes must be positive")

    @property
    def tolerates_faults(self) -> bool:
        """True when any fault tolerance is required at all."""
        return self.k > 0
