"""Application and platform models (paper §2 and §4).

* :class:`Process`, :class:`Message`, :class:`Application` — the
  directed acyclic application graph with per-node WCETs, overheads and
  deadlines.
* :class:`Node`, :class:`BusSpec`, :class:`Architecture` — computation
  nodes sharing a TTP-style TDMA broadcast bus.
* :class:`FaultModel` — at most ``k`` transient faults per execution
  cycle, anywhere in the system.
* :class:`Transparency` — the designer's ``frozen`` markings on
  processes and messages.
* :func:`merge_applications` — LCM hyperperiod merge of several
  periodic applications into one virtual application.
"""

from repro.model.application import Application
from repro.model.architecture import Architecture, BusSpec, Node
from repro.model.fault_model import FaultModel
from repro.model.merge import merge_applications
from repro.model.message import Message
from repro.model.process import Process
from repro.model.transparency import Transparency
from repro.model.validation import validate_model

__all__ = [
    "Application",
    "Architecture",
    "BusSpec",
    "FaultModel",
    "Message",
    "Node",
    "Process",
    "Transparency",
    "merge_applications",
    "validate_model",
]
