"""Application and platform models (paper §2 and §4).

* :class:`Process`, :class:`Message`, :class:`Application` — the
  directed acyclic application graph with per-node WCETs, overheads and
  deadlines.
* :class:`Node`, :class:`BusSpec`, :class:`Architecture` — computation
  nodes sharing a TTP-style TDMA broadcast bus.
* :class:`FaultModel` — at most ``k`` transient faults per execution
  cycle, anywhere in the system.
* :class:`Transparency` — the designer's ``frozen`` markings on
  processes and messages.
* :func:`merge_applications` — LCM hyperperiod merge of several
  periodic applications into one virtual application.

Building a minimal system — two processes exchanging one message on a
two-node TDMA cluster, tolerating up to two transient faults per
cycle:

>>> from repro.model import (Application, Architecture, FaultModel,
...                          Message, Process)
>>> sensor = Process("sensor", {"N1": 20.0, "N2": 30.0}, alpha=2.0)
>>> control = Process("control", {"N1": 40.0, "N2": 40.0}, alpha=2.0)
>>> app = Application(
...     [sensor, control],
...     [Message("m1", "sensor", "control", size_bytes=8)],
...     deadline=200.0, name="demo")
>>> len(app), app.process_names
(2, ('sensor', 'control'))
>>> arch = Architecture.homogeneous(2, slot_length=2.0,
...                                 slot_payload_bytes=32)
>>> arch.node_names
('N1', 'N2')
>>> FaultModel(k=2).k
2

The per-node WCET dict doubles as the mapping restriction: a process
may only run on nodes it has a WCET for (paper Fig. 3's "X" entries
are simply omitted keys).
"""

from repro.model.application import Application
from repro.model.architecture import Architecture, BusSpec, Node
from repro.model.fault_model import FaultModel
from repro.model.merge import merge_applications
from repro.model.message import Message
from repro.model.process import Process
from repro.model.transparency import Transparency
from repro.model.validation import validate_model

__all__ = [
    "Application",
    "Architecture",
    "BusSpec",
    "FaultModel",
    "Message",
    "Node",
    "Process",
    "Transparency",
    "merge_applications",
    "validate_model",
]
