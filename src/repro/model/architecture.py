"""The hardware architecture model (paper §2).

An architecture is a set of computation nodes sharing one broadcast
communication channel driven by a TDMA protocol in the style of the
Time-Triggered Protocol (TTP): time is divided into *rounds*, each
round contains one *slot* per node in a fixed order, and a node may
transmit one frame of bounded payload in each of its slots. The actual
slot-timing arithmetic lives in :mod:`repro.comm.tdma`; this module
only holds the static specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import ValidationError


@dataclass(frozen=True, eq=False)
class Node:
    """One computation node (communication controller + CPU)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("node name must be non-empty")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r})"


@dataclass(frozen=True)
class BusSpec:
    """Static TDMA bus parameters.

    Parameters
    ----------
    slot_order:
        Node names in transmission order within one round. A node may
        own several slots per round; every node of the architecture
        must own at least one.
    slot_length:
        Duration of one slot (one frame transmission) in time units.
    slot_payload_bytes:
        Maximum payload of one frame; larger messages are split over
        the sender's slots in consecutive rounds.
    """

    slot_order: tuple[str, ...]
    slot_length: float
    slot_payload_bytes: int = 32

    def __post_init__(self) -> None:
        if not self.slot_order:
            raise ValidationError("bus must have at least one slot")
        if self.slot_length <= 0:
            raise ValidationError("slot_length must be positive")
        if self.slot_payload_bytes <= 0:
            raise ValidationError("slot_payload_bytes must be positive")

    @property
    def round_length(self) -> float:
        """Duration of one TDMA round."""
        return self.slot_length * len(self.slot_order)


class Architecture:
    """A set of nodes plus the shared TDMA bus."""

    def __init__(self, nodes: Iterable[Node], bus: BusSpec | None = None,
                 *, name: str = "arch") -> None:
        self._name = name
        self._nodes: dict[str, Node] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise ValidationError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
        if not self._nodes:
            raise ValidationError("architecture must have at least one node")

        if bus is None:
            bus = BusSpec(slot_order=tuple(self._nodes), slot_length=1.0)
        for owner in bus.slot_order:
            if owner not in self._nodes:
                raise ValidationError(
                    f"bus slot owner {owner!r} is not an architecture node"
                )
        missing = [n for n in self._nodes if n not in bus.slot_order]
        if missing:
            raise ValidationError(
                f"nodes {missing!r} own no bus slot and could never send"
            )
        self._bus = bus

    @classmethod
    def homogeneous(cls, count: int, *, slot_length: float = 1.0,
                    slot_payload_bytes: int = 32,
                    prefix: str = "N") -> "Architecture":
        """Convenience constructor: ``count`` nodes N1..Nc, one slot each."""
        if count <= 0:
            raise ValidationError("node count must be positive")
        names = tuple(f"{prefix}{i + 1}" for i in range(count))
        bus = BusSpec(slot_order=names, slot_length=slot_length,
                      slot_payload_bytes=slot_payload_bytes)
        return cls([Node(n) for n in names], bus)

    @property
    def name(self) -> str:
        """Architecture name."""
        return self._name

    @property
    def bus(self) -> BusSpec:
        """The TDMA bus specification."""
        return self._bus

    @property
    def node_names(self) -> tuple[str, ...]:
        """Node names in insertion order."""
        return tuple(self._nodes)

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes in insertion order."""
        return tuple(self._nodes.values())

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ValidationError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Architecture({self._name!r}, nodes={list(self._nodes)})"
