"""The design space the Pareto explorer walks (paper §3.3 + §6).

A *candidate* is one complete design decision the paper discusses but
never co-optimizes: the fault-tolerance policy strategy (the Fig. 7
families MXR/MX/MR/SFX), the fault budget ``k``, a uniform checkpoint
count for the recovering copies (Fig. 8's knob), and a per-process /
per-message transparency vector (§3.3's frozen markings). The
explorer evaluates every candidate exactly — synthesis for the
(strategy, k) pair, then the exact conditional scheduler under the
candidate's transparency — and keeps the epsilon-Pareto frontier over
(worst-case length, transparency degree, FT memory overhead).

Enumeration is deterministic: candidates are produced in a fixed
row-major order (strategy, then k, then checkpoint count, then
transparency vector) and numbered; chunk jobs slice that one list by
stride, exactly like campaign plan chunks, so the candidate set is a
pure function of ``(workload, SpaceConfig)``.

Transparency vectors come from three deterministic families:

* the *named levels* ``none`` / ``messages`` / ``full`` (the classic
  corner points of the trade-off, as in
  ``examples/transparency_tradeoff.py``);
* a *priority ladder*: freeze the top ``25 % / 50 % / 75 %`` of
  processes by partial-critical-path priority (the processes whose
  jitter hurts debugging most are frozen first), plus every message
  both of whose endpoints are frozen (fault containment inside the
  frozen region);
* ``samples`` seeded random vectors via
  :func:`repro.utils.rng.derive_seed` — scenario diversity beyond the
  structured families.

Duplicate vectors (on small applications the ladder degenerates into
the named levels) are dropped keeping the first label, so candidate
ids stay unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.transparency import Transparency
from repro.schedule.priorities import partial_critical_path_priorities
from repro.utils.rng import DeterministicRng, derive_seed

#: Strategies the explorer may search over (the Fig. 7 families; the
#: checkpoint axis below covers Fig. 8's territory).
DSE_STRATEGIES = ("MXR", "MX", "MR", "SFX")

#: Frozen-process fractions of the priority-ladder family.
LADDER_FRACTIONS = (0.25, 0.5, 0.75)


@dataclass(frozen=True)
class TransparencySpec:
    """One JSON-able transparency vector.

    Kept declarative (names, not :class:`Transparency` objects) so
    candidates survive the engine's JSON checkpoint round-trip and
    chunk workers can rebuild them without pickling model objects.
    """

    label: str
    frozen_processes: tuple[str, ...]
    frozen_messages: tuple[str, ...]

    def build(self) -> Transparency:
        """The model object this spec describes."""
        return Transparency(frozen_processes=self.frozen_processes,
                            frozen_messages=self.frozen_messages)

    def to_jsonable(self) -> dict:
        """Plain-dict form (stable ordering)."""
        return {
            "label": self.label,
            "frozen_processes": list(self.frozen_processes),
            "frozen_messages": list(self.frozen_messages),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TransparencySpec":
        """Rebuild a spec from its plain-dict form."""
        return cls(label=str(data["label"]),
                   frozen_processes=tuple(data["frozen_processes"]),
                   frozen_messages=tuple(data["frozen_messages"]))

    def _vector(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        return (self.frozen_processes, self.frozen_messages)


@dataclass(frozen=True)
class SpaceConfig:
    """Which axes the explorer enumerates.

    ``checkpoint_counts`` entries are uniform checkpoint counts applied
    to every recovering copy of the synthesized design (``0`` keeps
    the design as synthesized, i.e. pure re-execution for the Fig. 7
    strategies); ``transparency_samples`` adds that many seeded random
    transparency vectors to the structured families.
    """

    strategies: tuple[str, ...] = DSE_STRATEGIES
    k_values: tuple[int, ...] = (2,)
    checkpoint_counts: tuple[int, ...] = (0, 1, 2)
    transparency_samples: int = 4
    seed: int = 0
    ladder: bool = field(default=True)

    def __post_init__(self) -> None:
        # Order-preserving dedup: repeated axis values (easy to type
        # with nargs='+') would otherwise double the exact-scheduling
        # work before the archive discards the exact duplicates.
        for name in ("strategies", "k_values", "checkpoint_counts"):
            values = getattr(self, name)
            unique = tuple(dict.fromkeys(values))
            if unique != tuple(values):
                object.__setattr__(self, name, unique)
        if not self.strategies:
            raise ValueError("need at least one strategy")
        unknown = [s for s in self.strategies if s not in DSE_STRATEGIES]
        if unknown:
            raise ValueError(
                f"unknown DSE strategies {unknown}; choose from "
                f"{DSE_STRATEGIES}")
        if not self.k_values or any(k < 1 for k in self.k_values):
            raise ValueError(
                f"k_values must be >= 1, got {self.k_values}")
        if not self.checkpoint_counts \
                or any(c < 0 for c in self.checkpoint_counts):
            raise ValueError(
                f"checkpoint_counts must be >= 0, got "
                f"{self.checkpoint_counts}")
        if self.transparency_samples < 0:
            raise ValueError(
                f"transparency_samples must be >= 0, got "
                f"{self.transparency_samples}")

    def to_jsonable(self) -> dict:
        """Plain-dict form for engine job params."""
        return {
            "strategies": list(self.strategies),
            "k_values": list(self.k_values),
            "checkpoint_counts": list(self.checkpoint_counts),
            "transparency_samples": self.transparency_samples,
            "seed": self.seed,
            "ladder": self.ladder,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "SpaceConfig":
        """Rebuild a space config from its plain-dict form."""
        return cls(
            strategies=tuple(data["strategies"]),
            k_values=tuple(int(k) for k in data["k_values"]),
            checkpoint_counts=tuple(
                int(c) for c in data["checkpoint_counts"]),
            transparency_samples=int(data["transparency_samples"]),
            seed=int(data["seed"]),
            ladder=bool(data["ladder"]),
        )


@dataclass(frozen=True)
class Candidate:
    """One fully specified design decision, numbered for determinism.

    ``index`` is the candidate's position in the global enumeration
    order — the key the streaming archive merge sorts by, which makes
    the merged frontier independent of how candidates were chunked.
    """

    index: int
    strategy: str
    k: int
    checkpoints: int
    transparency: TransparencySpec

    @property
    def candidate_id(self) -> str:
        """Stable, readable id (used in reports and CSV rows)."""
        return (f"{self.strategy}/k={self.k}/c={self.checkpoints}"
                f"/t={self.transparency.label}")

    def describe(self) -> dict:
        """JSON-able descriptor carried by archive points."""
        return {
            "id": self.candidate_id,
            "strategy": self.strategy,
            "k": self.k,
            "checkpoints": self.checkpoints,
            "transparency": self.transparency.to_jsonable(),
        }


def _ladder_specs(app: Application, arch: Architecture,
                  ) -> list[TransparencySpec]:
    priorities = partial_critical_path_priorities(app, arch)
    # Highest priority first; names break exact priority ties.
    ranked = sorted(app.process_names,
                    key=lambda name: (-priorities[name], name))
    specs: list[TransparencySpec] = []
    for fraction in LADDER_FRACTIONS:
        count = max(1, round(len(ranked) * fraction))
        frozen = frozenset(ranked[:count])
        messages = tuple(m.name for m in app.messages
                         if m.src in frozen and m.dst in frozen)
        specs.append(TransparencySpec(
            label=f"prio{int(fraction * 100)}",
            frozen_processes=tuple(n for n in app.process_names
                                   if n in frozen),
            frozen_messages=messages,
        ))
    return specs


def _sampled_specs(app: Application, samples: int,
                   seed: int) -> list[TransparencySpec]:
    specs: list[TransparencySpec] = []
    for i in range(samples):
        rng = DeterministicRng(derive_seed(seed, "dse-transparency", i))
        density = rng.uniform(0.2, 0.8)
        processes = tuple(n for n in app.process_names
                          if rng.random() < density)
        messages = tuple(n for n in app.message_names
                         if rng.random() < density)
        specs.append(TransparencySpec(
            label=f"rand{i}",
            frozen_processes=processes,
            frozen_messages=messages,
        ))
    return specs


def transparency_specs(app: Application, arch: Architecture,
                       config: SpaceConfig) -> tuple[TransparencySpec, ...]:
    """All transparency vectors of the space, deduplicated in order."""
    specs: list[TransparencySpec] = [
        TransparencySpec("none", (), ()),
        TransparencySpec("messages", (), tuple(app.message_names)),
        TransparencySpec("full", tuple(app.process_names),
                         tuple(app.message_names)),
    ]
    if config.ladder:
        specs.extend(_ladder_specs(app, arch))
    specs.extend(_sampled_specs(app, config.transparency_samples,
                                config.seed))
    seen: set[tuple] = set()
    unique: list[TransparencySpec] = []
    for spec in specs:
        vector = spec._vector()
        if vector in seen:
            continue
        seen.add(vector)
        unique.append(spec)
    return tuple(unique)


def enumerate_candidates(app: Application, arch: Architecture,
                         config: SpaceConfig) -> tuple[Candidate, ...]:
    """Expand the space into the global, numbered candidate list.

    Row-major over (strategy, k, checkpoint count, transparency) in
    configuration order — the one enumeration every chunk job re-derives
    and slices by stride.
    """
    specs = transparency_specs(app, arch, config)
    candidates: list[Candidate] = []
    for strategy in config.strategies:
        for k in config.k_values:
            for checkpoints in config.checkpoint_counts:
                for spec in specs:
                    candidates.append(Candidate(
                        index=len(candidates),
                        strategy=strategy,
                        k=k,
                        checkpoints=checkpoints,
                        transparency=spec,
                    ))
    return tuple(candidates)


def space_size(app: Application, arch: Architecture,
               config: SpaceConfig) -> int:
    """Candidate count without materializing the list."""
    specs = transparency_specs(app, arch, config)
    return (len(config.strategies) * len(config.k_values)
            * len(config.checkpoint_counts) * len(specs))
