"""Pareto design-space exploration (``repro dse``).

The paper argues that transparency, fault-tolerance policy and
schedule length form a *trade-off surface* (§3.3: "the designer can
trade-off between the degree of transparency and the quality of the
schedules"), but its flow synthesizes one design at a time. This
package explores the surface:

* :mod:`repro.dse.space` — the candidate space: policy strategy
  (MXR/MX/MR/SFX), fault budget ``k``, uniform checkpoint counts, and
  per-process/per-message transparency vectors (named levels, a
  priority ladder, seeded random samples), enumerated in one
  deterministic numbered order;
* :mod:`repro.dse.archive` — the epsilon-dominance Pareto archive
  over (worst-case schedule length, transparency degree, FT memory
  overhead), one frontier per fault budget; the final frontier is a
  set function of the evaluated points, so merges are exact;
* :mod:`repro.dse.explorer` — the driver: candidate chunks fan out as
  pure jobs through the :mod:`repro.engine` batch engine (process-pool
  parallelism, resumable JSONL checkpoints, byte-identical serial vs
  parallel frontiers), each chunk sharing one
  :class:`~repro.engine.cache.EstimationCache` across its synthesis
  calls.

See ``docs/dse.md`` for the full picture and
:mod:`repro.experiments.pareto` for the multi-workload sweep built on
top.
"""

from repro.dse.archive import DesignPoint, ParetoArchive, dominates
from repro.dse.explorer import (
    CHUNK_RUNNER,
    DEFAULT_EPSILONS,
    OBJECTIVE_NAMES,
    DseConfig,
    DseReport,
    apply_checkpoint_counts,
    certify_frontier,
    dse_jobs,
    evaluate_candidate,
    merge_dse_cells,
    run_dse,
    run_dse_chunk,
)
from repro.dse.space import (
    DSE_STRATEGIES,
    Candidate,
    SpaceConfig,
    TransparencySpec,
    enumerate_candidates,
    space_size,
    transparency_specs,
)

__all__ = [
    "CHUNK_RUNNER",
    "DEFAULT_EPSILONS",
    "DSE_STRATEGIES",
    "OBJECTIVE_NAMES",
    "Candidate",
    "DesignPoint",
    "DseConfig",
    "DseReport",
    "ParetoArchive",
    "SpaceConfig",
    "TransparencySpec",
    "apply_checkpoint_counts",
    "certify_frontier",
    "dominates",
    "dse_jobs",
    "enumerate_candidates",
    "evaluate_candidate",
    "merge_dse_cells",
    "run_dse",
    "run_dse_chunk",
    "space_size",
    "transparency_specs",
]
