"""The epsilon-dominance Pareto archive of the design-space explorer.

Objectives are a fixed-length vector, **all minimized**; callers
convert "bigger is better" axes before insertion (the explorer stores
``opacity = 1 - transparency_degree``). Designs with different fault
budgets are incomparable — a ``k = 1`` design beating a ``k = 2``
design on length says nothing — so every point carries a ``group``
key and dominance is only ever tested within a group: the archive
maintains one frontier per fault budget.

Two layers, chosen so the final frontier is a **set function** of the
evaluated points — independent of insertion order, of how candidates
were chunked across engine jobs, and of how many workers ran them:

1. the archive itself keeps exactly the raw Pareto-optimal points.
   Weak dominance removes a point; exact-objective duplicates keep the
   lowest candidate index. Both rules are transitive, which is what
   makes chunk-local pruning safe: a chunk's local archive can drop a
   dominated point early because the surviving witness (or a chain of
   witnesses ending in one) reaches the merge and would have removed
   it anyway;
2. :meth:`ParetoArchive.frontier` applies epsilon sparsification on
   top: objective space is gridded into boxes of size ``epsilons`` and
   each box keeps one representative — the point closest to the box's
   lower corner (scaled Euclidean), candidate index breaking ties.
   Per-box selection is again a pure function of the archived set.

This is the same discipline as :mod:`repro.campaigns.stats`: chunk
results merge exactly, in any grouping, so ``--workers 8`` and
``--chunks 16`` produce byte-identical reports to a serial run.

>>> archive = ParetoArchive(epsilons=(1.0, 0.1))
>>> _ = archive.insert(DesignPoint(0, {"id": "a"}, (10.0, 0.5), "k=2"))
>>> _ = archive.insert(DesignPoint(1, {"id": "b"}, (12.0, 0.2), "k=2"))
>>> archive.insert(DesignPoint(2, {"id": "c"}, (11.0, 0.6), "k=2"))
False
>>> [p.candidate["id"] for p in archive.points()]
['a', 'b']
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: objectives plus its full description.

    ``index`` is the candidate's global enumeration index (the
    deterministic merge key); ``candidate`` and ``extras`` are
    JSON-able payloads carried through to reports untouched.
    """

    index: int
    candidate: dict
    objectives: tuple[float, ...]
    group: str
    extras: dict = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        """Plain-dict form (checkpoint/report round-trip)."""
        return {
            "index": self.index,
            "candidate": self.candidate,
            "objectives": list(self.objectives),
            "group": self.group,
            "extras": self.extras,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "DesignPoint":
        """Rebuild a point from its plain-dict form."""
        return cls(
            index=int(data["index"]),
            candidate=dict(data["candidate"]),
            objectives=tuple(float(o) for o in data["objectives"]),
            group=str(data["group"]),
            extras=dict(data.get("extras", {})),
        )


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Strict Pareto dominance (minimization): ``a <= b``, one ``<``."""
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def _removes(winner: DesignPoint, loser: DesignPoint) -> bool:
    """Whether ``winner`` evicts ``loser`` from the raw Pareto set.

    Weak dominance with a strict component, or an exact objective
    duplicate with a lower candidate index. Transitive by
    construction (see module docstring).
    """
    if dominates(winner.objectives, loser.objectives):
        return True
    return (winner.objectives == loser.objectives
            and winner.index < loser.index)


class ParetoArchive:
    """Per-group raw Pareto set with epsilon-sparsified frontier."""

    def __init__(self, epsilons: Sequence[float],
                 points: Iterable[DesignPoint] = ()) -> None:
        if not epsilons or any(e <= 0 for e in epsilons):
            raise ValueError(
                f"epsilons must be positive, got {tuple(epsilons)}")
        self._epsilons = tuple(float(e) for e in epsilons)
        self._points: list[DesignPoint] = []
        for point in points:
            self.insert(point)

    @property
    def epsilons(self) -> tuple[float, ...]:
        """Box edge lengths of the sparsification grid."""
        return self._epsilons

    def __len__(self) -> int:
        return len(self._points)

    def _check(self, point: DesignPoint) -> None:
        if len(point.objectives) != len(self._epsilons):
            raise ValueError(
                f"point has {len(point.objectives)} objectives, "
                f"archive expects {len(self._epsilons)}")

    def insert(self, point: DesignPoint) -> bool:
        """Offer one point; True when it enters the archive.

        Rejected when an archived point of the same group removes it;
        otherwise it evicts every archived point it removes.
        """
        self._check(point)
        for existing in self._points:
            if existing.group == point.group \
                    and _removes(existing, point):
                return False
        self._points = [p for p in self._points
                        if p.group != point.group
                        or not _removes(point, p)]
        self._points.append(point)
        return True

    def points(self) -> tuple[DesignPoint, ...]:
        """The raw Pareto set, sorted by candidate index."""
        return tuple(sorted(self._points, key=lambda p: p.index))

    def groups(self) -> tuple[str, ...]:
        """Archived groups, sorted."""
        return tuple(sorted({p.group for p in self._points}))

    # -- epsilon sparsification ------------------------------------------------

    def _box(self, objectives: Sequence[float]) -> tuple[int, ...]:
        return tuple(math.floor(o / e + 1e-12)
                     for o, e in zip(objectives, self._epsilons))

    def _corner_distance(self, point: DesignPoint) -> float:
        box = self._box(point.objectives)
        return sum(((o - b * e) / e) ** 2
                   for o, b, e in zip(point.objectives, box,
                                      self._epsilons))

    def frontier(self, group: str | None = None,
                 ) -> tuple[DesignPoint, ...]:
        """Epsilon-sparsified frontier, sorted by candidate index.

        One representative per occupied epsilon-box per group: the
        point nearest the box's lower corner, index breaking ties —
        a pure function of the archived set.
        """
        best: dict[tuple, DesignPoint] = {}
        for point in self._points:
            if group is not None and point.group != group:
                continue
            key = (point.group, self._box(point.objectives))
            incumbent = best.get(key)
            if incumbent is None:
                best[key] = point
                continue
            challenger = (self._corner_distance(point), point.index)
            holder = (self._corner_distance(incumbent),
                      incumbent.index)
            if challenger < holder:
                best[key] = point
        return tuple(sorted(best.values(), key=lambda p: p.index))

    # -- serialization ---------------------------------------------------------

    def to_jsonable(self) -> dict:
        """Plain-dict form (points in index order)."""
        return {
            "epsilons": list(self._epsilons),
            "points": [p.to_jsonable() for p in self.points()],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ParetoArchive":
        """Rebuild an archive from its plain-dict form."""
        return cls(
            epsilons=tuple(float(e) for e in data["epsilons"]),
            points=(DesignPoint.from_jsonable(p)
                    for p in data["points"]),
        )

    @classmethod
    def merged(cls, epsilons: Sequence[float],
               point_sets: Iterable[Iterable[DesignPoint]],
               ) -> "ParetoArchive":
        """Fold several point sets into one archive.

        Points are inserted in global candidate-index order, but the
        result does not depend on it (the raw Pareto set is a set
        function); sorting just keeps the walk deterministic.
        """
        pool = [p for points in point_sets for p in points]
        pool.sort(key=lambda p: p.index)
        return cls(epsilons, pool)
