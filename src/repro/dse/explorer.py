"""The Pareto design-space explorer (``repro dse``).

Turns the one-design-at-a-time synthesis flow into a multi-objective
search: enumerate the candidate space (:mod:`repro.dse.space`),
evaluate every candidate **exactly** — strategy synthesis for its
(strategy, k) pair, the checkpoint-count transform applied through the
same :class:`~repro.synthesis.moves.PolicyMove` the tabu search uses,
then the exact conditional scheduler under the candidate's
transparency — and keep the epsilon-Pareto frontier over

* worst-case schedule length (``ScheduleSet.worst_case_length`` — the
  tables' own certified worst case, not the estimate),
* transparency degree (stored minimized as ``opacity = 1 - degree``),
* checkpoint/replication memory overhead
  (:func:`repro.schedule.metrics.ft_memory_overhead`).

Execution model — same discipline as :mod:`repro.campaigns`: the
candidate list is split into ``chunks`` stride slices; each chunk is
one pure :class:`~repro.engine.jobs.BatchJob` through the
:class:`~repro.engine.runner.BatchEngine` (process-pool parallelism,
resumable JSONL checkpoints). A chunk re-derives the workload and the
full candidate list from the config, synthesizes each (strategy, k)
design once behind one shared :class:`~repro.eval.EvaluatorPool`
(whose deeper tiers also dedupe exact schedules and design metrics
across candidates that collapse to the same design), and streams
its slice into a local raw-Pareto archive. The parent merges chunk
archives with :meth:`ParetoArchive.merged` — a set function, so the
frontier is byte-identical across worker counts *and* chunk layouts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from collections.abc import Mapping

from repro.campaigns.runner import load_campaign_workload
from repro.campaigns.sampling import chunk_slice
from repro.dse.archive import DesignPoint, ParetoArchive
from repro.dse.space import (
    Candidate,
    SpaceConfig,
    TransparencySpec,
    enumerate_candidates,
)
from repro.engine import journal
from repro.engine.cache import Evaluator, EvaluatorPool
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob
from repro.engine.runner import (
    BatchEngine,
    EngineConfig,
    ProgressCallback,
)
from repro.errors import ReproError
from repro.kernels import kernels_info
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.fault_model import FaultModel
from repro.policies.types import PolicyAssignment
from repro.schedule.mapping import CopyMapping
from repro.synthesis.moves import PolicyMove
from repro.synthesis.strategies import StrategyResult, synthesize
from repro.synthesis.tabu import TabuSettings
from repro.utils.rng import derive_seed
from repro.utils.textgrid import TextGrid

#: Import-path runner reference resolved by engine workers.
CHUNK_RUNNER = "repro.dse.explorer:run_dse_chunk"

#: Default epsilon-box edges per objective: (length time units,
#: opacity fraction, memory bytes).
DEFAULT_EPSILONS = (4.0, 0.04, 32.0)

#: Default tabu budget: small on purpose — every candidate is
#: re-evaluated exactly, the search only seeds the designs.
DEFAULT_SETTINGS = TabuSettings(iterations=8, neighborhood=8,
                                bus_contention=False)

#: Objective names, in vector order (all minimized).
OBJECTIVE_NAMES = ("length", "opacity", "memory_bytes")


@dataclass(frozen=True)
class DseConfig:
    """One exploration: a workload, a space, and an archive grid.

    ``workload`` uses the same declarative spec as campaigns
    (:func:`repro.campaigns.runner.load_campaign_workload`):
    ``{"preset": <name>}`` or generator knobs
    ``{"processes": .., "nodes": .., "seed": ..}``.
    """

    workload: Mapping[str, object] = field(
        default_factory=lambda: {"processes": 8, "nodes": 2, "seed": 1})
    space: SpaceConfig = field(default_factory=SpaceConfig)
    epsilons: tuple[float, float, float] = DEFAULT_EPSILONS
    chunks: int = 4
    seed: int = 0
    settings: TabuSettings = field(
        default_factory=lambda: DEFAULT_SETTINGS)
    max_contexts: int = 200_000
    #: Certify the merged frontier: every frontier design is
    #: exhaustively verified (:mod:`repro.verify`) and flagged
    #: ``certified`` true/false in JSON/CSV — or ``None`` when its
    #: scenario count exceeds ``verify_max_scenarios``.
    verify_frontier: bool = False
    verify_max_scenarios: int = 20_000

    def __post_init__(self) -> None:
        if self.chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {self.chunks}")
        if self.verify_max_scenarios < 1:
            raise ValueError(
                f"verify_max_scenarios must be >= 1, got "
                f"{self.verify_max_scenarios}")
        if len(self.epsilons) != len(OBJECTIVE_NAMES):
            raise ValueError(
                f"need {len(OBJECTIVE_NAMES)} epsilons "
                f"{OBJECTIVE_NAMES}, got {self.epsilons}")
        if any(e <= 0 for e in self.epsilons):
            raise ValueError(
                f"epsilons must be positive, got {self.epsilons}")

    @property
    def label(self) -> str:
        """Stable id component naming the workload."""
        preset = self.workload.get("preset")
        if preset is not None:
            return str(preset)
        return (f"gen{self.workload.get('processes', 8)}p"
                f"{self.workload.get('nodes', 2)}n"
                f"s{self.workload.get('seed', 1)}")


def dse_jobs(config: DseConfig) -> list[BatchJob]:
    """One engine job per candidate chunk."""
    return grid_jobs(
        CHUNK_RUNNER,
        {"chunk": tuple(range(config.chunks))},
        prefix=f"dse/{config.label}",
        common={
            "workload": dict(config.workload),
            "space": config.space.to_jsonable(),
            "epsilons": list(config.epsilons),
            "chunks": config.chunks,
            "seed": config.seed,
            "settings": asdict(config.settings),
            "max_contexts": config.max_contexts,
        },
    )


def apply_checkpoint_counts(
    app: Application,
    policies: PolicyAssignment,
    mapping: CopyMapping,
    count: int,
) -> tuple[PolicyAssignment, CopyMapping]:
    """Re-checkpoint every recovering copy at a uniform count.

    ``count == 0`` keeps the design as synthesized. Otherwise each copy
    with recoveries switches to rollback recovery with ``count``
    equidistant checkpoints; replicas without recoveries are untouched
    (a checkpoint without a recovery to use it is dead memory). The
    change is applied through :class:`PolicyMove` — the same value
    object the tabu search walks — so mapping bookkeeping has a single
    implementation.
    """
    if count == 0:
        return policies, mapping
    solution = (policies, mapping)
    for name, policy in policies.items():
        changed = policy
        for copy_index, plan in enumerate(policy.copies):
            if plan.recoveries > 0 and plan.checkpoints != count:
                changed = changed.with_copy(
                    copy_index, plan.with_checkpoints(count))
        if changed is policy:
            continue
        move = PolicyMove(name, changed)
        if move.applies_to(solution):
            solution = move.apply(solution, app)
    return solution


def evaluate_candidate(
    app: Application,
    arch: Architecture,
    candidate: Candidate,
    design: StrategyResult,
    *,
    max_contexts: int,
    evaluator: Evaluator | None = None,
) -> DesignPoint:
    """Evaluate one candidate exactly and package it as an archive point.

    Raises :class:`~repro.errors.ReproError` subclasses when the exact
    scheduler cannot handle the candidate (context explosion, frozen
    fixpoint divergence); the chunk runner records those as skipped.

    ``evaluator`` (the per-``k`` :class:`~repro.eval.Evaluator` of the
    chunk's pool) caches the exact schedule and metrics bundle, so
    candidates that collapse to the same design — e.g. the synthesized
    checkpoint count re-applied explicitly — are scheduled once.
    """
    policies, mapping = apply_checkpoint_counts(
        app, design.policies, design.mapping, candidate.checkpoints)
    transparency = candidate.transparency.build()
    transparency.validate(app)
    if evaluator is None:
        pool = EvaluatorPool()
        evaluator = pool.evaluator_for(app, arch,
                                       FaultModel(k=candidate.k))
    evaluation = evaluator.evaluate_design(
        policies, mapping, transparency, max_contexts=max_contexts)
    schedule = evaluation.schedule
    metrics = evaluation.metrics
    memory = evaluation.memory
    degree = evaluation.transparency_degree
    objectives = (
        float(schedule.worst_case_length),
        round(1.0 - degree, 12),
        float(memory.total_bytes),
    )
    return DesignPoint(
        index=candidate.index,
        candidate=candidate.describe(),
        objectives=objectives,
        group=f"k={candidate.k}",
        extras={
            "transparency_degree": degree,
            "checkpoint_bytes": memory.checkpoint_bytes,
            "replication_bytes": memory.replication_bytes,
            "table_memory_bytes": metrics.total_memory_bytes,
            "scenarios": metrics.scenario_count,
            "distinct_guards": metrics.distinct_guards,
            "fault_free_length": schedule.fault_free_length,
            "estimate": design.estimate.schedule_length,
            "meets_deadline": bool(schedule.meets_deadline),
        },
    )


def run_dse_chunk(params: Mapping[str, object]) -> dict:
    """One chunk: synthesize per (strategy, k), evaluate a slice.

    Pure function of its params (the engine's worker contract): the
    workload, candidate list and tabu seed all derive from the config,
    so every chunk enumerates the identical space and only its stride
    slice differs. Designs are memoized per (strategy, k) behind one
    shared estimation cache; candidates whose exact scheduling fails
    are counted as skipped, never dropped silently.

    Checkpoint-insensitive designs (no recovering copies — e.g. pure
    replication from MR) are identical under every checkpoint count,
    so only the first count of the axis is evaluated; the rest are
    counted as duplicates. This is exactly the set the archive would
    discard as exact duplicates anyway (the first count has the lowest
    index in the row-major enumeration), so the frontier is unchanged
    — the expensive exact scheduling is just not repeated.
    """
    app, arch = load_campaign_workload(params["workload"])
    space = SpaceConfig.from_jsonable(params["space"])
    epsilons = tuple(float(e) for e in params["epsilons"])
    base = TabuSettings(**params["settings"])
    settings = replace(base, seed=derive_seed(
        int(params["seed"]), "dse-tabu", base.seed))
    max_contexts = int(params["max_contexts"])

    candidates = enumerate_candidates(app, arch, space)
    slice_candidates = chunk_slice(candidates, int(params["chunk"]),
                                   int(params["chunks"]))

    pool = EvaluatorPool()
    designs: dict[tuple[str, int], StrategyResult] = {}

    def design_for(strategy: str, k: int) -> StrategyResult:
        key = (strategy, k)
        if key not in designs:
            designs[key] = synthesize(
                app, arch, FaultModel(k=k), strategy,
                settings=settings, cache=pool)
        return designs[key]

    def checkpoint_insensitive(design: StrategyResult) -> bool:
        return not any(plan.recoveries > 0
                       for __, policy in design.policies.items()
                       for plan in policy.copies)

    first_count = space.checkpoint_counts[0]
    archive = ParetoArchive(epsilons)
    evaluated = 0
    duplicates = 0
    skipped: list[dict] = []
    for candidate in slice_candidates:
        design = design_for(candidate.strategy, candidate.k)
        if candidate.checkpoints != first_count \
                and checkpoint_insensitive(design):
            duplicates += 1
            continue
        try:
            point = evaluate_candidate(
                app, arch, candidate, design,
                max_contexts=max_contexts,
                evaluator=pool.evaluator_for(
                    app, arch, FaultModel(k=candidate.k)))
        except ReproError as error:
            skipped.append({
                "index": candidate.index,
                "id": candidate.candidate_id,
                "error": f"{type(error).__name__}: {error}",
            })
            continue
        evaluated += 1
        archive.insert(point)

    stats = pool.stats()
    return {
        "chunk": int(params["chunk"]),
        "candidates_total": len(candidates),
        "evaluated": evaluated,
        "duplicates": duplicates,
        "skipped": skipped,
        "archive": archive.to_jsonable(),
        "designs_synthesized": len(designs),
        "cache_hits": stats.estimates.hits,
        "cache_misses": stats.estimates.misses,
        "cache_entries": stats.estimates.entries,
        "schedule_cache_hits": stats.schedules.hits,
        "schedule_cache_misses": stats.schedules.misses,
        "processes": len(app.process_names),
        "nodes": len(arch.node_names),
        "deadline": app.deadline,
    }


#: Scalars every chunk of one exploration must agree on; a mismatch
#: means a chunk runner broke purity (same discipline as campaigns).
_CONSISTENT_KEYS = ("candidates_total", "processes", "nodes",
                    "deadline")


@dataclass
class DseReport:
    """Merged outcome of one exploration (all chunks)."""

    config: DseConfig
    archive: ParetoArchive
    candidates_total: int
    evaluated: int
    duplicates: int
    skipped: tuple[dict, ...]
    processes: int
    nodes: int
    deadline: float
    cache_hits: int = 0
    cache_misses: int = 0
    schedule_cache_hits: int = 0
    schedule_cache_misses: int = 0
    executed_chunks: int = 0
    resumed_chunks: int = 0

    @property
    def frontier(self) -> tuple[DesignPoint, ...]:
        """The epsilon-sparsified frontier over all groups."""
        return self.archive.frontier()

    @property
    def cache_hit_rate(self) -> float:
        """Estimation-cache hit rate over all chunks, in percent."""
        lookups = self.cache_hits + self.cache_misses
        return (self.cache_hits / lookups * 100.0) if lookups else 0.0

    # -- deterministic exports -------------------------------------------------

    def to_jsonable(self) -> dict:
        """Timing-free report payload (byte-stable across runs)."""
        return {
            "dse": {
                "workload": self.config.label,
                "space": self.config.space.to_jsonable(),
                "epsilons": list(self.config.epsilons),
                "chunks": self.config.chunks,
                "seed": self.config.seed,
                "verify_frontier": self.config.verify_frontier,
            },
            "instance": {
                "processes": self.processes,
                "nodes": self.nodes,
                "deadline": self.deadline,
            },
            "candidates_total": self.candidates_total,
            "evaluated": self.evaluated,
            "duplicates": self.duplicates,
            "skipped": [dict(s) for s in self.skipped],
            "objectives": list(OBJECTIVE_NAMES),
            "archive": self.archive.to_jsonable(),
            "frontier": [p.to_jsonable() for p in self.frontier],
            # One table set per design; DSE evaluates estimates only
            # (deterministic shape, not live counters).
            "kernels": kernels_info(compiled_tables=1,
                                    batched_scenarios=0),
        }

    def to_json(self) -> str:
        """Canonical JSON text of the report."""
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> None:
        """Write the canonical JSON report (atomic replace)."""
        journal.write_atomic_text(path, self.to_json() + "\n")

    def write_csv(self, path: str | Path) -> None:
        """Write one CSV row per frontier point (atomic replace)."""
        import csv
        import io
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["index", "id", "group", *OBJECTIVE_NAMES,
             "transparency_degree", "checkpoint_bytes",
             "replication_bytes", "table_memory_bytes",
             "meets_deadline", "certified",
             "verified_scenarios"])
        for point in self.frontier:
            extras = point.extras
            writer.writerow([
                point.index,
                point.candidate["id"],
                point.group,
                *point.objectives,
                extras.get("transparency_degree"),
                extras.get("checkpoint_bytes"),
                extras.get("replication_bytes"),
                extras.get("table_memory_bytes"),
                extras.get("meets_deadline"),
                extras.get("certified"),
                extras.get("verified_scenarios"),
            ])
        journal.write_atomic_text(path, buffer.getvalue())

    def frontier_table(self) -> str:
        """The frontier as an aligned text table (CLI output).

        Deadline-missing designs stay on the frontier (the surface is
        informative either way — "this much transparency cannot be
        had within the deadline" is a result) but are flagged, so the
        table never presents an unschedulable design as a silent
        recommendation.
        """
        grid = TextGrid(["group", "design", "worst case",
                         "transparency %", "FT mem B", "table mem B",
                         "deadline", "cert"])
        for point in self.frontier:
            extras = point.extras
            certified = extras.get("certified")
            grid.add_row([
                point.group,
                point.candidate["id"],
                f"{point.objectives[0]:.1f}",
                f"{extras.get('transparency_degree', 0.0) * 100:.0f}",
                f"{int(point.objectives[2])}",
                f"{extras.get('table_memory_bytes', 0)}",
                "ok" if extras.get("meets_deadline", True) else "MISS",
                ("-" if certified is None
                 else "yes" if certified else "FAIL"),
            ])
        return grid.render()

    def summary_lines(self) -> list[str]:
        """Human-readable aggregate summary (CLI output)."""
        frontier = self.frontier
        misses = sum(1 for p in frontier
                     if not p.extras.get("meets_deadline", True))
        lines = [
            f"workload {self.config.label}: {self.processes} processes "
            f"on {self.nodes} nodes, deadline {self.deadline:.1f}",
            f"{self.candidates_total} candidates "
            f"({self.evaluated} evaluated, {self.duplicates} "
            f"checkpoint-insensitive duplicates, {len(self.skipped)} "
            f"skipped) over strategies "
            f"{'/'.join(self.config.space.strategies)}, "
            f"k in {{{', '.join(str(k) for k in self.config.space.k_values)}}}, "
            f"checkpoints in "
            f"{{{', '.join(str(c) for c in self.config.space.checkpoint_counts)}}}"
            f" ({self.executed_chunks} chunk(s) executed, "
            f"{self.resumed_chunks} resumed)",
            f"archive: {len(self.archive)} non-dominated designs, "
            f"frontier after epsilon sparsification: {len(frontier)}",
            f"estimation cache hit rate {self.cache_hit_rate:.1f} % "
            f"({self.cache_hits} hits / {self.cache_misses} misses); "
            f"exact-schedule cache {self.schedule_cache_hits} hits / "
            f"{self.schedule_cache_misses} misses",
        ]
        if misses:
            lines.append(
                f"WARNING: {misses} frontier design(s) miss the "
                f"deadline (flagged in the table)")
        if self.config.verify_frontier:
            certified = sum(
                1 for p in frontier
                if p.extras.get("certified") is True)
            failed = sum(1 for p in frontier
                         if p.extras.get("certified") is False)
            skipped = sum(1 for p in frontier
                          if p.extras.get("certified") is None)
            lines.append(
                f"frontier certification: {certified} certified, "
                f"{failed} failed, {skipped} beyond the scenario "
                f"budget")
            if failed:
                lines.append(
                    f"WARNING: {failed} frontier design(s) FAILED "
                    f"exhaustive verification")
        return lines


def merge_dse_cells(config: DseConfig, cells: list[dict],
                    executed: int = 0, resumed: int = 0) -> DseReport:
    """Fold chunk results into one report (exposed for sweeps).

    Verifies the chunks agree on every shared scalar, then merges the
    chunk archives as a set function — the result is independent of
    chunk layout and worker count.
    """
    first = cells[0]
    for cell in cells[1:]:
        for key in _CONSISTENT_KEYS:
            if cell[key] != first[key]:
                raise RuntimeError(
                    f"dse chunks disagree on {key!r}: "
                    f"{cell[key]!r} != {first[key]!r} — a chunk "
                    "runner is not a pure function of the config")
    archive = ParetoArchive.merged(
        config.epsilons,
        ([DesignPoint.from_jsonable(p) for p in cell["archive"]["points"]]
         for cell in cells))
    skipped = sorted(
        (s for cell in cells for s in cell["skipped"]),
        key=lambda s: s["index"])
    return DseReport(
        config=config,
        archive=archive,
        candidates_total=int(first["candidates_total"]),
        evaluated=sum(int(c["evaluated"]) for c in cells),
        duplicates=sum(int(c.get("duplicates", 0)) for c in cells),
        skipped=tuple(skipped),
        processes=int(first["processes"]),
        nodes=int(first["nodes"]),
        deadline=float(first["deadline"]),
        cache_hits=sum(int(c["cache_hits"]) for c in cells),
        cache_misses=sum(int(c["cache_misses"]) for c in cells),
        schedule_cache_hits=sum(
            int(c.get("schedule_cache_hits", 0)) for c in cells),
        schedule_cache_misses=sum(
            int(c.get("schedule_cache_misses", 0)) for c in cells),
        executed_chunks=executed,
        resumed_chunks=resumed,
    )


def certify_frontier(config: DseConfig, report: DseReport) -> None:
    """Exhaustively verify every frontier design (``--verify-frontier``).

    Re-derives each frontier candidate's design exactly as the chunk
    runners did (same tabu seed derivation, same checkpoint-count
    transform, same transparency vector), sweeps **all** its fault
    scenarios through the prefix-reuse verifier and annotates the
    point in place:

    * ``extras["certified"]`` — True/False, or None when the
      scenario count exceeds ``config.verify_max_scenarios`` (the
      design stays on the frontier, explicitly un-certified);
    * ``extras["verified_scenarios"]`` — scenarios simulated.

    Frontier points are shared with the archive, so the flags appear
    in both the ``frontier`` and ``archive`` report sections.
    """
    from repro.ftcpg.scenarios import count_fault_plans
    from repro.verify.core import ScenarioSweep
    from repro.verify.stats import VerificationStats

    app, arch = load_campaign_workload(config.workload)
    settings = replace(config.settings, seed=derive_seed(
        config.seed, "dse-tabu", config.settings.seed))
    pool = EvaluatorPool()
    designs: dict[tuple[str, int], StrategyResult] = {}
    for point in report.frontier:
        candidate = point.candidate
        strategy = str(candidate["strategy"])
        k = int(candidate["k"])
        key = (strategy, k)
        if key not in designs:
            designs[key] = synthesize(
                app, arch, FaultModel(k=k), strategy,
                settings=settings, cache=pool)
        design = designs[key]
        policies, mapping = apply_checkpoint_counts(
            app, design.policies, design.mapping,
            int(candidate["checkpoints"]))
        transparency = TransparencySpec.from_jsonable(
            candidate["transparency"]).build()
        total = count_fault_plans(app, policies, k)
        if total > config.verify_max_scenarios:
            point.extras["certified"] = None
            point.extras["verified_scenarios"] = 0
            continue
        fault_model = FaultModel(k=k)
        evaluator = pool.evaluator_for(app, arch, fault_model)
        schedule = evaluator.exact_schedule(
            policies, mapping, transparency,
            max_contexts=config.max_contexts)
        sweep = ScenarioSweep(app, arch, mapping, policies,
                              fault_model, schedule)
        stats = VerificationStats()
        for outcome in sweep.results():
            stats.observe(outcome, transparency)
        point.extras["certified"] = stats.ok
        point.extras["verified_scenarios"] = stats.scenarios


def run_dse(config: DseConfig, *,
            engine_config: EngineConfig | None = None,
            progress: ProgressCallback | None = None) -> DseReport:
    """Run (or resume) one exploration through the batch engine.

    With ``config.verify_frontier`` the merged frontier additionally
    passes through :func:`certify_frontier`.
    """
    engine = BatchEngine(engine_config or EngineConfig())
    batch = engine.run(dse_jobs(config), progress=progress)
    report = merge_dse_cells(config, batch.results(),
                             executed=batch.executed,
                             resumed=batch.resumed)
    if config.verify_frontier:
        certify_frontier(config, report)
    return report
