"""Crash-safety contracts: atomic persistence and honest failure.

The engine's whole resume story rests on two invariants: every
persistent file is either an append-only flushed journal or a
tmp-then-``os.replace`` atomic write (both owned by
``engine/journal.py`` and ``eval/diskcache.py``), and exceptions are
only swallowed where degradation is an explicit, documented contract.
These rules make both invariants structural.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.core import LintContext, Rule, Violation

#: The blessed persistence helpers: the only modules that may write
#: files directly. ``journal.py`` owns the flushed-append and
#: atomic-replace primitives; ``diskcache.py`` owns the cache's
#: tmp + ``os.replace`` entry writes.
BLESSED_WRITERS: tuple[str, ...] = (
    "repro/engine/journal.py",
    "repro/eval/diskcache.py",
)

#: Stream-dump calls that imply a non-atomic open file handle.
_DUMP_CALLS: frozenset[str] = frozenset({
    "json.dump", "pickle.dump", "marshal.dump",
})


class NonAtomicWriteRule(Rule):
    """REP004: direct file writes outside the blessed helpers."""

    rule_id = "REP004"
    title = ("files are written only through the blessed atomic "
             "helpers (engine/journal.py, eval/diskcache.py)")

    _MESSAGE = ("non-atomic write: a crash mid-write leaves a torn "
                "file; route it through repro.engine.journal "
                "(write_atomic_text / append_record) or annotate "
                "why torn output is acceptable here")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.module_matches(BLESSED_WRITERS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_write_open(node):
                yield self.violation(ctx, node, self._MESSAGE)
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("write_text",
                                           "write_bytes"):
                yield self.violation(ctx, node, self._MESSAGE)
            elif isinstance(node.func, (ast.Attribute, ast.Name)) \
                    and ctx.resolved(node.func) in _DUMP_CALLS:
                yield self.violation(ctx, node, self._MESSAGE)

    @classmethod
    def _is_write_open(cls, node: ast.Call) -> bool:
        opener = (isinstance(node.func, ast.Name)
                  and node.func.id == "open") \
            or (isinstance(node.func, ast.Attribute)
                and node.func.attr == "open")
        if not opener:
            return False
        mode = cls._mode_of(node)
        return mode is not None \
            and any(flag in mode for flag in "wx+")

    @staticmethod
    def _mode_of(node: ast.Call) -> str | None:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                value = keyword.value
                if isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    return value.value
                return None
        if len(node.args) >= 2:
            arg = node.args[1]
            if isinstance(arg, ast.Constant) \
                    and isinstance(arg.value, str):
                return arg.value
            return None
        return None  # default mode "r": a read


class SwallowedExceptionRule(Rule):
    """REP005: broad exception handlers that never re-raise."""

    rule_id = "REP005"
    title = ("except Exception handlers must re-raise or carry an "
             "annotated degradation contract")

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if any(isinstance(sub, ast.Raise)
                   for stmt in node.body
                   for sub in ast.walk(stmt)):
                continue
            yield self.violation(
                ctx, node,
                "broad exception handler swallows everything "
                "(including the bugs this repo's oracles exist to "
                "surface); narrow the types, re-raise, or annotate "
                "the intended degradation")

    @classmethod
    def _is_broad(cls, node: ast.expr | None) -> bool:
        if node is None:
            return True  # bare ``except:``
        if isinstance(node, ast.Name):
            return node.id in cls._BROAD
        if isinstance(node, ast.Tuple):
            return any(cls._is_broad(element)
                       for element in node.elts)
        return False
