"""Suppression pragmas: ``# repro: allow[REP00x] <reason>``.

A pragma suppresses the named rules on its own line — or, when the
comment stands alone on its line, on the next code line — and must
carry a reason: the reader of an annotated site should learn *why*
the contract does not apply there, not merely that someone silenced
the checker. Reasonless, malformed or unused pragmas never suppress
anything; they are themselves reported under the meta rule
``REP000``, so a suppression cannot rot silently.

Comments are found with :mod:`tokenize` rather than a regex over raw
lines, so pragma-shaped *text inside string literals* (documentation,
fixture snippets) is never mistaken for a live pragma.

>>> pragmas, problems = collect_pragmas(
...     "x = 1  # repro: allow[REP003] fixture uses raw randomness\\n")
>>> (pragmas[0].rules, pragmas[0].target, problems)
(('REP003',), 1, [])
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: ``# repro: <directive>`` comments; anything else is a plain comment.
_PRAGMA = re.compile(r"#\s*repro:\s*(?P<directive>.*)$")
#: The one understood directive: ``allow[RULE, ...] reason``.
_ALLOW = re.compile(r"allow\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$")

#: Token types that carry no code (a pragma above them keeps looking
#: further down for its target line).
_NON_CODE_TOKENS = frozenset({
    tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
    tokenize.DEDENT, tokenize.ENCODING, tokenize.ENDMARKER,
})


@dataclass
class Pragma:
    """One parsed ``allow`` pragma."""

    #: Line the comment sits on (1-based).
    line: int
    #: Line whose violations it suppresses (the comment's own line, or
    #: the next code line for a standalone comment).
    target: int
    rules: tuple[str, ...]
    reason: str
    #: Rule ids that actually suppressed a violation (filled by the
    #: driver; a pragma none of whose rules fired is reported unused).
    used: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class PragmaProblem:
    """A pragma-shaped comment the parser rejected."""

    line: int
    message: str


def collect_pragmas(
        source: str) -> tuple[list[Pragma], list[PragmaProblem]]:
    """All ``repro:`` pragmas of a module, plus the malformed ones.

    The source is assumed to be syntactically valid Python (the
    caller parses it first); a tokenizer failure is reported as a
    single problem rather than raised.
    """
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError) as exc:
        return [], [PragmaProblem(1, f"tokenizer failed: {exc}")]

    code_lines = sorted({token.start[0] for token in tokens
                         if token.type not in _NON_CODE_TOKENS})
    lines = source.splitlines()

    pragmas: list[Pragma] = []
    problems: list[PragmaProblem] = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.match(token.string)
        if match is None:
            continue
        line, column = token.start
        allow = _ALLOW.match(match.group("directive"))
        if allow is None:
            problems.append(PragmaProblem(
                line, "malformed repro pragma (expected "
                      "'# repro: allow[REP00x] <reason>')"))
            continue
        rules = tuple(part.strip()
                      for part in allow.group("rules").split(",")
                      if part.strip())
        if not rules:
            problems.append(PragmaProblem(
                line, "repro pragma names no rules"))
            continue
        standalone = (line <= len(lines)
                      and not lines[line - 1][:column].strip())
        target = line
        if standalone:
            below = [code for code in code_lines if code > line]
            target = below[0] if below else line
        pragmas.append(Pragma(line=line, target=target, rules=rules,
                              reason=allow.group("reason").strip()))
    return pragmas, problems
