"""Static contract checking: the repo's determinism, seeded-RNG and
crash-safe-I/O conventions as machine-checked rules.

Every guarantee the reproduction makes — byte-identical reports
across engine backends, bit-identical incremental-vs-oracle
evaluation, crash-safe lease and journal protocols — depends on
conventions that no general-purpose linter knows about: sorted
iteration in report producers, all randomness flowing through
``derive_seed``, persistent writes only via the atomic journal
helpers, honest exception handling. :mod:`repro.lint` encodes those
conventions as eight AST-based rules (REP001–REP008, plus the
``REP000`` pragma-hygiene meta rule), with precise spans and a
scoped, reason-carrying suppression pragma::

    # repro: allow[REP005] pickle raises arbitrary types on corrupt
    # entries; degradation to a miss is the documented contract

Run it as ``repro lint src/repro scripts`` (text or ``--format
json``; the exit code is the violation count, capped). The rule
catalogue with the rationale behind each contract lives in
``docs/lint.md``.
"""

from repro.lint.core import META_RULE, LintContext, Rule, Violation
from repro.lint.pragmas import Pragma, PragmaProblem, collect_pragmas
from repro.lint.report import render_json, render_text
from repro.lint.runner import (
    ALL_RULES,
    EXIT_CAP,
    RULE_IDS,
    LintReport,
    discover_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_RULES",
    "EXIT_CAP",
    "LintContext",
    "LintReport",
    "META_RULE",
    "Pragma",
    "PragmaProblem",
    "RULE_IDS",
    "Rule",
    "Violation",
    "collect_pragmas",
    "discover_files",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
