"""Lint primitives: violations, the per-module analysis context, and
the rule base class.

Every checker is a :class:`Rule` working over one parsed module
through a shared :class:`LintContext` — the parse tree, a child →
parent map (for "is this call wrapped in ``sorted(...)``"-style
questions), and an import-alias table that resolves attribute chains
to canonical dotted names (``from datetime import datetime as dt;
dt.now`` resolves to ``datetime.datetime.now``), so the checkers see
through the usual aliasing tricks without real type inference.

Scoping is by module-path *suffix*: rules that only apply to certain
modules (report producers, blessed I/O helpers) match the linted
file's posix path against suffix lists, which works identically for
the real tree and for fixture files placed under a mirrored relative
path in a temporary directory.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

#: The meta rule: pragma hygiene and unparseable sources. Not
#: suppressible — a pragma problem must be fixed, not silenced.
META_RULE = "REP000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, ordered for deterministic reports."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The one-line text form (``path:line:col: RULE message``)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")


def dotted_name(node: ast.expr) -> str | None:
    """The literal dotted form of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_tables(
        tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """(local name → module, local name → module.member) alias maps."""
    modules: dict[str, str] = {}
    members: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    modules[alias.asname] = alias.name
                else:
                    # ``import os.path`` binds ``os``.
                    head = alias.name.split(".", 1)[0]
                    modules[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                members[local] = f"{node.module}.{alias.name}"
    return modules, members


class LintContext:
    """Everything the rules need to know about one module."""

    def __init__(self, tree: ast.Module, module: str,
                 source: str) -> None:
        self.tree = tree
        #: Posix path used for scope matching and reporting.
        self.module = module
        self.lines = source.splitlines()
        self.parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(tree)
            for child in ast.iter_child_nodes(parent)
        }
        self.module_aliases, self.member_aliases = _import_tables(tree)

    def resolved(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a Name/Attribute chain.

        Resolves the chain's head through the module's import aliases,
        so local renames do not hide a banned call.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, sep, rest = name.partition(".")
        base = self.member_aliases.get(
            head, self.module_aliases.get(head, head))
        return f"{base}{sep}{rest}" if sep else base

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The parent chain of a node, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def module_matches(self, suffixes: Iterable[str]) -> bool:
        """True when this module's path ends with any given suffix."""
        return any(self.module.endswith(suffix) for suffix in suffixes)

    def wrapped_in_sorted(self, node: ast.AST) -> bool:
        """True when an ancestor expression is a ``sorted(...)`` call."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return False
            if isinstance(ancestor, ast.Call) \
                    and isinstance(ancestor.func, ast.Name) \
                    and ancestor.func.id == "sorted":
                return True
        return False


class Rule:
    """One contract checker. Subclasses set the metadata and
    implement :meth:`check`."""

    #: Stable identifier (``REP00x``) named by pragmas and filters.
    rule_id: str = ""
    #: One-line summary shown in ``--help``-style listings.
    title: str = ""

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Yield every violation of this rule in one module."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the signature a generator

    def violation(self, ctx: LintContext, node: ast.AST,
                  message: str) -> Violation:
        """A violation anchored at a node's source span."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Violation(path=ctx.module, line=line, col=col,
                         rule=self.rule_id, message=message)
