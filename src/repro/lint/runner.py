"""The lint driver: rule registry, per-module analysis with pragma
suppression, and the file walker behind ``repro lint``.

>>> report = lint_source("import random\\n", "pkg/mod.py")
>>> [v.rule for v in report]
['REP003']
>>> lint_source(
...     "import random  # repro: allow[REP003] fixture stream\\n",
...     "pkg/mod.py")
[]
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import ast

from repro.lint.core import META_RULE, LintContext, Rule, Violation
from repro.lint.pragmas import Pragma, collect_pragmas
from repro.lint.rules_determinism import (
    ChunkRunnerPurityRule,
    EntropyRule,
    IdentityOrderingRule,
    StrayRandomnessRule,
    UnorderedIterationRule,
    UnsortedEnumerationRule,
)
from repro.lint.rules_safety import (
    NonAtomicWriteRule,
    SwallowedExceptionRule,
)

#: Exit codes are capped here so a very dirty tree still exits with a
#: well-defined small status (shells truncate codes to one byte).
EXIT_CAP = 100

#: Every checker, in rule-id order.
ALL_RULES: tuple[Rule, ...] = (
    UnorderedIterationRule(),
    EntropyRule(),
    StrayRandomnessRule(),
    NonAtomicWriteRule(),
    SwallowedExceptionRule(),
    ChunkRunnerPurityRule(),
    IdentityOrderingRule(),
    UnsortedEnumerationRule(),
)

#: Rule ids accepted by ``--rule`` filters and pragmas (the meta rule
#: included: it is filterable, though never suppressible).
RULE_IDS: tuple[str, ...] = (
    META_RULE, *(rule.rule_id for rule in ALL_RULES))


def lint_source(source: str, path: str | Path, *,
                rules: Iterable[str] | None = None) -> list[Violation]:
    """All unsuppressed violations of one module's source.

    ``path`` only names the module — nothing is read from disk — so
    fixture snippets can be linted under any synthetic path (scoped
    rules match on path suffixes). ``rules`` restricts checking to
    the given rule ids; pragma-hygiene findings (``REP000``) are
    emitted unless filtered out, but *unused*-pragma findings are
    only meaningful (and only produced) under the full rule set.
    """
    module = Path(path).as_posix()
    selected = (None if rules is None
                else {rule for rule in rules})
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        broken = [Violation(
            path=module, line=exc.lineno or 1,
            col=(exc.offset or 0) or 1, rule=META_RULE,
            message=f"syntax error: {exc.msg}")]
        return _filtered(broken, selected)

    pragmas, problems = collect_pragmas(source)
    ctx = LintContext(tree, module, source)
    raw: list[Violation] = []
    for rule in ALL_RULES:
        if selected is None or rule.rule_id in selected:
            raw.extend(rule.check(ctx))

    kept = _apply_pragmas(raw, pragmas)
    meta = [Violation(path=module, line=problem.line, col=1,
                      rule=META_RULE, message=problem.message)
            for problem in problems]
    meta.extend(_pragma_hygiene(module, pragmas,
                                full_run=selected is None))
    return sorted(_filtered(kept + meta, selected))


def _filtered(violations: list[Violation],
              selected: set[str] | None) -> list[Violation]:
    if selected is None:
        return violations
    return [violation for violation in violations
            if violation.rule in selected]


def _apply_pragmas(violations: list[Violation],
                   pragmas: list[Pragma]) -> list[Violation]:
    """Drop violations covered by a reasoned pragma on their line."""
    by_target: dict[int, list[Pragma]] = {}
    for pragma in pragmas:
        by_target.setdefault(pragma.target, []).append(pragma)
    kept: list[Violation] = []
    for violation in violations:
        suppressor = next(
            (pragma
             for pragma in by_target.get(violation.line, [])
             if violation.rule in pragma.rules and pragma.reason),
            None)
        if suppressor is None:
            kept.append(violation)
        else:
            suppressor.used.add(violation.rule)
    return kept


def _pragma_hygiene(module: str, pragmas: list[Pragma], *,
                    full_run: bool) -> list[Violation]:
    """REP000 findings: reasonless, unknown-rule or unused pragmas."""
    known = set(RULE_IDS)
    findings: list[Violation] = []
    for pragma in pragmas:
        if not pragma.reason:
            findings.append(Violation(
                path=module, line=pragma.line, col=1, rule=META_RULE,
                message=f"suppression of "
                        f"{', '.join(pragma.rules)} carries no "
                        f"reason — it is ignored; explain why the "
                        f"contract does not apply"))
            continue
        unknown = [rule for rule in pragma.rules
                   if rule not in known or rule == META_RULE]
        for rule in unknown:
            findings.append(Violation(
                path=module, line=pragma.line, col=1, rule=META_RULE,
                message=(f"pragma names unknown rule id {rule!r}"
                         if rule != META_RULE else
                         f"pragma names {META_RULE}, which is not "
                         f"suppressible")))
        if not full_run:
            continue
        unused = [rule for rule in pragma.rules
                  if rule in known and rule != META_RULE
                  and rule not in pragma.used]
        if unused:
            findings.append(Violation(
                path=module, line=pragma.line, col=1, rule=META_RULE,
                message=f"unused suppression pragma for "
                        f"{', '.join(unused)}: nothing on the "
                        f"target line violates it — delete the "
                        f"pragma"))
    return findings


@dataclass
class LintReport:
    """The outcome of one lint run over a set of paths."""

    violations: list[Violation] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def total(self) -> int:
        """Unsuppressed violation count."""
        return len(self.violations)

    @property
    def exit_code(self) -> int:
        """The CLI exit status: the count, capped at EXIT_CAP."""
        return min(self.total, EXIT_CAP)

    def counts(self) -> dict[str, int]:
        """Violations per rule id (only rules that fired)."""
        tally: dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_jsonable(self) -> dict:
        """Canonical JSON payload of the report."""
        return {
            "files_scanned": self.files_scanned,
            "total": self.total,
            "counts": self.counts(),
            "violations": [
                {
                    "path": violation.path,
                    "line": violation.line,
                    "col": violation.col,
                    "rule": violation.rule,
                    "message": violation.message,
                }
                for violation in self.violations
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, stable across runs)."""
        return json.dumps(self.to_jsonable(), indent=2,
                          sort_keys=True)


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """The Python files under the given files/directories, sorted.

    Directories are walked recursively; duplicates (overlapping
    arguments) are dropped while keeping the first occurrence.
    """
    found: dict[Path, None] = {}
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            for file in sorted(root.rglob("*.py")):
                found.setdefault(file, None)
        elif root.suffix == ".py":
            found.setdefault(root, None)
        else:
            raise FileNotFoundError(
                f"lint target {root} is neither a directory nor a "
                f".py file")
    return list(found)


def lint_paths(paths: Sequence[str | Path], *,
               rules: Iterable[str] | None = None,
               path_filters: Sequence[str] | None = None,
               ) -> LintReport:
    """Lint every Python file under ``paths``.

    ``rules`` restricts to specific rule ids; ``path_filters`` keeps
    only files whose posix path contains any of the given substrings.
    """
    files = discover_files(paths)
    if path_filters:
        files = [file for file in files
                 if any(fragment in file.as_posix()
                        for fragment in path_filters)]
    violations: list[Violation] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        violations.extend(lint_source(source, file, rules=rules))
    return LintReport(violations=sorted(violations),
                      files_scanned=len(files))
