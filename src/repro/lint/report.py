"""Rendering of lint reports: flake8-style text and canonical JSON.

Both forms are deterministic: violations arrive sorted by
(path, line, col, rule), the JSON is sorted-keys, and the summary
counts are rule-id ordered — so the output of ``repro lint`` is
itself a pure function of the tree, the way every other report in
this repo is.
"""

from __future__ import annotations

from repro.lint.runner import LintReport


def render_text(report: LintReport) -> str:
    """The human-readable report: one line per violation + summary."""
    lines = [violation.render() for violation in report.violations]
    if report.total:
        per_rule = ", ".join(f"{rule}: {count}" for rule, count
                             in report.counts().items())
        lines.append(f"{report.total} violation(s) across "
                     f"{len({v.path for v in report.violations})} "
                     f"file(s) [{per_rule}]")
    else:
        lines.append(f"clean: {report.files_scanned} file(s) "
                     f"scanned, 0 violations")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The canonical JSON report."""
    return report.to_json()
