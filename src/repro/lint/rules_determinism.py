"""Determinism contracts: the rules that keep reports, fingerprints
and search trajectories byte-identical across runs, processes and
hosts.

The guarantees these encode are the load-bearing ones of the
reproduction: serial/process/workdir engine backends must produce
byte-identical reports, incremental evaluation must replay to the
exact bits of the full path, and every stochastic choice must be a
pure function of the experiment seed. Each rule below turns one way
of silently breaking that into a machine-checked finding.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.core import LintContext, Rule, Violation

#: Modules whose byte output *is* the deliverable: canonical reports,
#: CSV/JSON exports, content fingerprints. REP001 applies only here —
#: elsewhere, insertion-ordered iteration is a legitimate idiom.
REPORT_MODULES: tuple[str, ...] = (
    "repro/engine/jobs.py",
    "repro/engine/runner.py",
    "repro/engine/journal.py",
    "repro/experiments/reporting.py",
    "repro/experiments/fig7.py",
    "repro/experiments/fig8.py",
    "repro/experiments/campaign.py",
    "repro/experiments/pareto.py",
    "repro/verify/stats.py",
    "repro/verify/runner.py",
    "repro/campaigns/stats.py",
    "repro/campaigns/runner.py",
    "repro/dse/archive.py",
    "repro/dse/explorer.py",
    "repro/eval/problem.py",
    "repro/schedule/serialization.py",
)

#: Wall-clock / entropy reads that are never a function of the seed.
#: ``time.perf_counter``/``time.monotonic`` are deliberately absent:
#: they feed elapsed-time fields that the canonical reports exclude.
ENTROPY_CALLS: frozenset[str] = frozenset({
    "time.time",
    "time.time_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid3",
    "uuid.uuid4",
    "uuid.uuid5",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "random.SystemRandom",
})
#: Everything under these modules is an entropy source wholesale.
ENTROPY_PREFIXES: tuple[str, ...] = ("secrets.",)

#: Modules allowed to read the wall clock / entropy, with the reason
#: the contract does not apply (documented in docs/lint.md):
#: lease-staleness ages compare ``time.time`` against file mtimes
#: (the filesystem's clock domain), and worker identities / temp-file
#: names need uniqueness, not reproducibility — neither ever reaches
#: a report.
REP002_ALLOWED_MODULES: dict[str, str] = {
    "repro/engine/workdir.py":
        "lease heartbeats age against file mtimes; worker ids and "
        "tmp names need uniqueness, never determinism",
    "repro/eval/diskcache.py":
        "unique tmp names for atomic replace; cache contents stay "
        "bit-identical to recomputes",
}

#: The one module allowed to touch :mod:`random` directly; everything
#: else derives streams via ``derive_seed``/``DeterministicRng``.
RNG_MODULE = "repro/utils/rng.py"

#: Filesystem enumeration calls whose order the OS does not define.
_FS_OS_CALLS: frozenset[str] = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_PATH_METHODS: frozenset[str] = frozenset({
    "iterdir", "glob", "rglob",
})

#: Engine job runners (``run_*_chunk`` / ``run_*_cell``) — the pure
#: functions every executor backend may run anywhere, any number of
#: times.
_CHUNK_RUNNER = re.compile(r"run_\w+_(chunk|cell)")

#: Environment keys chunk runners may read: the repo's own switches,
#: which are part of the documented execution contract.
_ENV_PREFIX = "REPRO_"


class UnorderedIterationRule(Rule):
    """REP001: unordered iteration in report/fingerprint modules."""

    rule_id = "REP001"
    title = ("iteration over set/frozenset/dict views in "
             "report-producing modules must be sorted")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_matches(REPORT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                label = self._unordered(candidate)
                if label is not None:
                    yield self.violation(
                        ctx, candidate,
                        f"iteration over {label} is not a sorted "
                        f"function of its contents; wrap it in "
                        f"sorted(...) — this module's bytes are the "
                        f"deliverable")

    @staticmethod
    def _unordered(node: ast.expr) -> str | None:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return f"{node.func.id}(...)"
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("keys", "values") \
                    and not node.args and not node.keywords:
                return f".{node.func.attr}()"
        return None


class EntropyRule(Rule):
    """REP002: wall-clock/entropy reads outside the allowlist."""

    rule_id = "REP002"
    title = ("wall-clock and entropy reads (time.time, datetime.now, "
             "os.urandom, uuid) are confined to allowlisted modules")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.module_matches(REP002_ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    full = f"{node.module}.{alias.name}"
                    if self._banned(full):
                        yield self.violation(
                            ctx, node,
                            f"import of entropy source '{full}' — "
                            f"results must be a function of the seed")
            elif isinstance(node, (ast.Attribute, ast.Name)):
                resolved = ctx.resolved(node)
                if resolved is not None and self._banned(resolved) \
                        and not self._inside_banned_parent(ctx, node):
                    yield self.violation(
                        ctx, node,
                        f"'{resolved}' reads the wall clock or "
                        f"entropy pool; results must be a function "
                        f"of the seed (see docs/lint.md for the "
                        f"allowlist)")

    @staticmethod
    def _banned(name: str) -> bool:
        return name in ENTROPY_CALLS \
            or name.startswith(ENTROPY_PREFIXES)

    def _inside_banned_parent(self, ctx: LintContext,
                              node: ast.AST) -> bool:
        """True for the inner links of an already-reported chain."""
        parent = ctx.parents.get(node)
        if isinstance(parent, ast.Attribute):
            resolved = ctx.resolved(parent)
            return resolved is not None and self._banned(resolved)
        return False


class StrayRandomnessRule(Rule):
    """REP003: direct ``random`` use outside ``utils/rng.py``."""

    rule_id = "REP003"
    title = ("the random module is touched only by utils/rng.py; "
             "all other randomness flows through derive_seed")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.module.endswith(RNG_MODULE):
            return
        message = ("direct use of the random module; derive a stream "
                   "via repro.utils.rng.derive_seed / "
                   "DeterministicRng instead")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(alias.name == "random"
                       or alias.name.startswith("random.")
                       for alias in node.names):
                    yield self.violation(ctx, node, message)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random" \
                        or (node.module or "").startswith("random."):
                    yield self.violation(ctx, node, message)
            elif isinstance(node, ast.Attribute):
                resolved = ctx.resolved(node)
                if resolved is not None \
                        and resolved.startswith("random."):
                    yield self.violation(ctx, node, message)


class IdentityOrderingRule(Rule):
    """REP007: ordering keyed by ``id()`` or builtin ``hash()``."""

    rule_id = "REP007"
    title = ("sort keys must not use id() or hash() — both vary "
             "across interpreter runs")

    _ORDERING_BUILTINS = frozenset({"sorted", "min", "max"})

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name):
                if node.func.id not in self._ORDERING_BUILTINS:
                    continue
            elif isinstance(node.func, ast.Attribute):
                if node.func.attr != "sort":
                    continue
            else:
                continue
            for keyword in node.keywords:
                if keyword.arg == "key" \
                        and self._identity_key(keyword.value):
                    yield self.violation(
                        ctx, keyword.value,
                        "ordering keyed by id()/hash(): both are "
                        "per-process values, so the order is not "
                        "reproducible — key on content instead")

    @staticmethod
    def _identity_key(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id in ("id", "hash"):
            return True
        if isinstance(node, ast.Lambda):
            return any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("id", "hash")
                for sub in ast.walk(node.body))
        return False


class UnsortedEnumerationRule(Rule):
    """REP008: filesystem enumeration not wrapped in ``sorted``."""

    rule_id = "REP008"
    title = ("os.listdir/glob/Path.iterdir results must pass through "
             "sorted(...) — the OS defines no order")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._enumeration(ctx, node)
            if label is None or ctx.wrapped_in_sorted(node):
                continue
            yield self.violation(
                ctx, node,
                f"'{label}' enumerates the filesystem in an "
                f"OS-defined order; wrap the call in sorted(...) so "
                f"downstream behavior is a function of the "
                f"directory's contents")

    @staticmethod
    def _enumeration(ctx: LintContext,
                     node: ast.Call) -> str | None:
        resolved = (ctx.resolved(node.func)
                    if isinstance(node.func,
                                  (ast.Attribute, ast.Name))
                    else None)
        if resolved in _FS_OS_CALLS:
            return resolved
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _FS_PATH_METHODS:
            return f".{node.func.attr}()"
        return None


class ChunkRunnerPurityRule(Rule):
    """REP006: engine chunk runners stay pure and relocatable."""

    rule_id = "REP006"
    title = ("run_*_chunk / run_*_cell runners: no mutable defaults, "
             "no non-REPRO_ environment reads, no global rebinding")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not _CHUNK_RUNNER.fullmatch(node.name):
                continue
            yield from self._check_runner(ctx, node)

    def _check_runner(
            self, ctx: LintContext,
            fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        defaults = [*fn.args.defaults,
                    *(d for d in fn.args.kw_defaults
                      if d is not None)]
        for default in defaults:
            if self._mutable(default):
                yield self.violation(
                    ctx, default,
                    f"mutable default argument in chunk runner "
                    f"'{fn.name}': state would leak between jobs "
                    f"executed in one worker process")
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Global):
                yield self.violation(
                    ctx, sub,
                    f"chunk runner '{fn.name}' rebinds module "
                    f"globals; runners must be pure so every "
                    f"backend may re-run them anywhere")
            elif isinstance(sub, ast.Call) \
                    and isinstance(sub.func,
                                   (ast.Attribute, ast.Name)) \
                    and ctx.resolved(sub.func) == "os.getenv":
                key = sub.args[0] if sub.args else None
                if not self._repro_key(key):
                    yield self.violation(
                        ctx, sub,
                        f"chunk runner '{fn.name}' reads the "
                        f"environment outside the {_ENV_PREFIX}* "
                        f"contract; pass configuration through job "
                        f"params instead")
            elif isinstance(sub, (ast.Attribute, ast.Name)) \
                    and ctx.resolved(sub) == "os.environ":
                yield from self._check_environ_use(ctx, fn, sub)

    def _check_environ_use(
            self, ctx: LintContext,
            fn: ast.FunctionDef | ast.AsyncFunctionDef,
            node: ast.AST) -> Iterator[Violation]:
        key: ast.expr | None = None
        parent = ctx.parents.get(node)
        if isinstance(parent, ast.Subscript) and parent.value is node:
            key = parent.slice
        elif isinstance(parent, ast.Attribute) \
                and parent.attr in ("get", "__getitem__"):
            grand = ctx.parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent \
                    and grand.args:
                key = grand.args[0]
        if not self._repro_key(key):
            yield self.violation(
                ctx, node,
                f"chunk runner '{fn.name}' reads os.environ outside "
                f"the {_ENV_PREFIX}* contract; pass configuration "
                f"through job params instead")

    @staticmethod
    def _repro_key(key: ast.expr | None) -> bool:
        return (isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and key.value.startswith(_ENV_PREFIX))

    @staticmethod
    def _mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp,
                             ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "dict", "set",
                                     "bytearray"))
