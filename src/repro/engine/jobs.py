"""Batch jobs: the unit of work the engine fans out.

A :class:`BatchJob` is a pure, picklable description of one sweep
cell: a stable ``job_id``, a ``runner`` reference of the form
``"package.module:function"``, and a parameter mapping.  The runner
is resolved by import path (not by an in-process registry) so a
``ProcessPoolExecutor`` worker can execute jobs without any setup
beyond having the package importable — and so checkpoint files remain
meaningful across interpreter restarts.

Parameters are stored as canonical JSON text (sorted keys), which
makes jobs hashable, picklable, and round-trip-exact with the JSONL
checkpoint file — a job's params always compare equal to what a
resumed run reads back.  The JSON contract is enforced at creation
time: unserializable params fail fast, and tuples are normalized to
lists up front (JSON semantics) rather than silently on first resume.

Runners are plain functions ``(params: dict) -> dict``; results must
be JSON-serializable too, because they stream to the checkpoint file
and the JSON/CSV reports.  Seeds for stochastic work inside a job
should be derived with :func:`repro.utils.rng.derive_seed` from the
sweep seed and the job's grid coordinates, which keeps every job
reproducible in isolation and independent of execution order.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass
from collections.abc import Callable, Mapping

JobRunner = Callable[[Mapping[str, object]], dict]


@dataclass(frozen=True)
class BatchJob:
    """One independent cell of a sweep grid."""

    job_id: str
    runner: str
    params_json: str

    @classmethod
    def create(cls, job_id: str, runner: str,
               **params: object) -> "BatchJob":
        """Build a job from keyword parameters."""
        if ":" not in runner:
            raise ValueError(
                f"runner must be 'module:function', got {runner!r}")
        try:
            encoded = json.dumps(params, sort_keys=True)
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"job {job_id!r} params must be JSON-serializable: "
                f"{error}") from None
        return cls(job_id=job_id, runner=runner, params_json=encoded)

    def params_dict(self) -> dict:
        """The job parameters as a plain dict."""
        return json.loads(self.params_json)


def resolve_runner(reference: str) -> JobRunner:
    """Import and return the runner a job references."""
    module_name, _, attribute = reference.partition(":")
    if not module_name or not attribute:
        raise ValueError(
            f"runner must be 'module:function', got {reference!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError:
        raise ValueError(
            f"module {module_name!r} has no runner {attribute!r}"
        ) from None


def run_job(job: BatchJob) -> dict:
    """Execute one job in the current process and return its result."""
    runner = resolve_runner(job.runner)
    result = runner(job.params_dict())
    if not isinstance(result, dict):
        raise TypeError(
            f"runner {job.runner!r} returned {type(result).__name__}, "
            "expected a JSON-serializable dict")
    return result
