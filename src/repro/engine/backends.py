"""Executor backends: how one batch run's pending jobs get executed.

The :class:`~repro.engine.runner.BatchEngine` owns *what* runs (job
dedup, checkpoint restore, report assembly in submission order); an
:class:`ExecutorBackend` owns *where* it runs. Three conforming
implementations ship:

``serial``
    In-process, zero-dependency — the debugging path and the oracle
    every other backend's report must be byte-identical to.
``process``
    A single-host ``ProcessPoolExecutor`` fan-out (the engine's
    historical behaviour for ``workers > 1``).
``workdir``
    Multi-host work stealing over a shared directory: the coordinator
    and any number of ``repro worker`` processes claim chunk leases
    via atomic renames and journal results per worker
    (:mod:`repro.engine.workdir`). The workdir doubles as the
    checkpoint — re-running the coordinator resumes from the flushed
    results.

The conformance contract (enforced by ``tests/test_backends.py``):
every backend calls ``record`` exactly once per pending job with the
job's result and elapsed time, in any order — the engine's
order-insensitive recording plus its ordered report assembly is what
makes all backends byte-identical in their JSON/CSV output.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING
from collections.abc import Callable, Sequence

from repro.engine.jobs import BatchJob, run_job
from repro.engine.workdir import Workdir, default_worker_id, work

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.runner import EngineConfig

#: The registered backend names, in documentation order.
BACKENDS = ("serial", "process", "workdir")

#: ``record(job, result, elapsed)`` — the engine's recording hook
#: (checkpoint append, progress callback, report bookkeeping).
RecordCallback = Callable[[BatchJob, dict, float], None]


def execute_job(job: BatchJob) -> tuple[str, dict, float]:
    """Run one job and time it (the worker entry point)."""
    started = time.perf_counter()
    result = run_job(job)
    return job.job_id, result, time.perf_counter() - started


class ExecutorBackend:
    """Where pending jobs execute; see the module docstring."""

    #: The registry name (one of :data:`BACKENDS`).
    name: str

    def restore(self, jobs: Sequence[BatchJob],
                ) -> dict[str, tuple[dict, float]]:
        """Backend-held completed cells, validated against ``jobs``.

        Called before execution so the engine can subtract already-
        finished cells (the workdir backend's own resume path — the
        directory is its checkpoint). Local backends hold no state.
        """
        return {}

    def execute(self, pending: Sequence[BatchJob],
                record: RecordCallback) -> None:
        """Execute every pending job, calling ``record`` per job."""
        raise NotImplementedError


class SerialBackend(ExecutorBackend):
    """In-process execution, one job at a time."""

    name = "serial"

    def __init__(self, config: "EngineConfig") -> None:
        self._config = config

    def execute(self, pending: Sequence[BatchJob],
                record: RecordCallback) -> None:
        for job in pending:
            __, result, elapsed = execute_job(job)
            record(job, result, elapsed)


class ProcessBackend(ExecutorBackend):
    """Single-host ``ProcessPoolExecutor`` fan-out."""

    name = "process"

    def __init__(self, config: "EngineConfig") -> None:
        self._config = config

    def execute(self, pending: Sequence[BatchJob],
                record: RecordCallback) -> None:
        by_id = {job.job_id: job for job in pending}
        with ProcessPoolExecutor(
                max_workers=max(1, self._config.workers)) as pool:
            futures = {pool.submit(execute_job, job)
                       for job in pending}
            while futures:
                done, futures = wait(futures,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    job_id, result, elapsed = future.result()
                    record(by_id[job_id], result, elapsed)


class WorkdirBackend(ExecutorBackend):
    """Multi-host work stealing over a shared directory.

    The coordinator is itself a worker: it publishes the job list,
    drains leases alongside any external ``repro worker`` processes,
    reclaims stale leases, and waits until every chunk is done. Cells
    executed by other workers are recorded from the merged result
    journals; cells whose records went missing (a torn tail on a
    killed worker) are re-executed locally, so the run always
    completes with one validated record per job.
    """

    name = "workdir"

    def __init__(self, config: "EngineConfig") -> None:
        if config.workdir is None:
            raise ValueError(
                "the workdir backend needs a shared directory "
                "(EngineConfig.workdir)")
        self._config = config
        self._workdir = Workdir(config.workdir)

    def restore(self, jobs: Sequence[BatchJob],
                ) -> dict[str, tuple[dict, float]]:
        self._workdir.initialize(
            jobs, lease_size=self._config.lease_size,
            fresh=not self._config.resume)
        if not self._config.resume:
            return {}
        return self._workdir.load_results(jobs)

    def execute(self, pending: Sequence[BatchJob],
                record: RecordCallback) -> None:
        config = self._config
        worker_id = config.worker_id or default_worker_id()
        recorded: set[str] = set()

        def local_outcome(job: BatchJob, result: dict,
                          elapsed: float) -> None:
            recorded.add(job.job_id)
            record(job, result, elapsed)

        work(self._workdir.root, worker_id=worker_id,
             lease_timeout=config.lease_timeout,
             on_outcome=local_outcome)

        remote = self._workdir.load_results(pending)
        for job in pending:
            if job.job_id in recorded:
                continue
            if job.job_id in remote:
                result, elapsed = remote[job.job_id]
            else:
                # A worker completed the lease but its record was
                # lost (torn tail at the kill instant): re-run the
                # cell locally rather than fail the sweep.
                __, result, elapsed = execute_job(job)
                self._workdir.append_result(worker_id, job, result,
                                            elapsed)
            record(job, result, elapsed)


def create_backend(config: "EngineConfig") -> ExecutorBackend:
    """Instantiate the backend an :class:`EngineConfig` resolves to."""
    name = config.backend_name
    if name == "serial":
        return SerialBackend(config)
    if name == "process":
        return ProcessBackend(config)
    if name == "workdir":
        return WorkdirBackend(config)
    raise ValueError(
        f"unknown backend {name!r}; choose one of "
        f"{', '.join(BACKENDS)}")
