"""Batch experiment engine: parallel sweeps with estimation caching.

The paper's evaluation figures are sweeps over grids of synthetic
applications; this package turns such sweeps into first-class batch
runs:

* :mod:`repro.engine.jobs` — the unit of work: a picklable, pure
  :class:`~repro.engine.jobs.BatchJob` referencing its runner by
  import path;
* :mod:`repro.engine.grid` — cartesian axis expansion into jobs with
  stable ids;
* :mod:`repro.engine.runner` — the :class:`~repro.engine.runner.
  BatchEngine`: serial or process-pool execution, JSONL checkpointing
  of completed cells, resume, and deterministic JSON/CSV reports;
* :mod:`repro.engine.cache` — the evaluation caches: every sweep cell
  shares one :class:`~repro.eval.EvaluatorPool` (the unified
  evaluation core of :mod:`repro.eval`) memoizing the slack-sharing
  schedule estimate behind a canonical solution fingerprint — the
  dominant cost inside every cell — plus exact schedules and design
  metrics in deeper tiers.

The Fig. 7 / Fig. 8 harnesses of :mod:`repro.experiments` route
through this engine (``repro batch`` on the command line).
"""

from repro.engine.cache import (
    CacheStats,
    EstimationCache,
    Evaluator,
    EvaluatorPool,
    EvaluatorStats,
    solution_fingerprint,
)
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob, resolve_runner, run_job
from repro.engine.runner import (
    BatchEngine,
    BatchReport,
    EngineConfig,
    JobOutcome,
    run_batch,
)

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "CacheStats",
    "EngineConfig",
    "EstimationCache",
    "Evaluator",
    "EvaluatorPool",
    "EvaluatorStats",
    "JobOutcome",
    "grid_jobs",
    "resolve_runner",
    "run_batch",
    "run_job",
    "solution_fingerprint",
]
