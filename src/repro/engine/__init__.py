"""Batch experiment engine: parallel sweeps with estimation caching.

The paper's evaluation figures are sweeps over grids of synthetic
applications; this package turns such sweeps into first-class batch
runs:

* :mod:`repro.engine.jobs` — the unit of work: a picklable, pure
  :class:`~repro.engine.jobs.BatchJob` referencing its runner by
  import path;
* :mod:`repro.engine.grid` — cartesian axis expansion into jobs with
  stable ids;
* :mod:`repro.engine.runner` — the :class:`~repro.engine.runner.
  BatchEngine`: pluggable execution backends, JSONL checkpointing of
  completed cells, resume, and deterministic JSON/CSV reports;
* :mod:`repro.engine.backends` — where jobs execute: ``serial``
  (in-process), ``process`` (single-host pool) and ``workdir``
  (multi-host work stealing over a shared directory,
  :mod:`repro.engine.workdir`); all three produce byte-identical
  reports;
* :mod:`repro.engine.journal` — torn-tail-safe JSONL journals shared
  by the checkpoint file and the workdir result files;
* :mod:`repro.engine.cache` — the evaluation caches: every sweep cell
  shares one :class:`~repro.eval.EvaluatorPool` (the unified
  evaluation core of :mod:`repro.eval`) memoizing the slack-sharing
  schedule estimate behind a canonical solution fingerprint — the
  dominant cost inside every cell — plus exact schedules and design
  metrics in deeper tiers.

The Fig. 7 / Fig. 8 harnesses of :mod:`repro.experiments` route
through this engine (``repro batch`` on the command line).
"""

from repro.engine.backends import (
    BACKENDS,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    WorkdirBackend,
    create_backend,
)
from repro.engine.cache import (
    CacheStats,
    EstimationCache,
    Evaluator,
    EvaluatorPool,
    EvaluatorStats,
    solution_fingerprint,
)
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob, resolve_runner, run_job
from repro.engine.runner import (
    BatchEngine,
    BatchReport,
    EngineConfig,
    JobOutcome,
    run_batch,
)
from repro.engine.workdir import Workdir, WorkerSummary, work

__all__ = [
    "BACKENDS",
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "CacheStats",
    "EngineConfig",
    "EstimationCache",
    "Evaluator",
    "EvaluatorPool",
    "EvaluatorStats",
    "ExecutorBackend",
    "JobOutcome",
    "ProcessBackend",
    "SerialBackend",
    "Workdir",
    "WorkdirBackend",
    "WorkerSummary",
    "create_backend",
    "grid_jobs",
    "resolve_runner",
    "run_batch",
    "run_job",
    "solution_fingerprint",
    "work",
]
