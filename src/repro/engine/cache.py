"""Estimation caching, re-exported as part of the engine API.

The implementation lives in :mod:`repro.schedule.estimation_cache`
(the cache wraps a schedule-level function and is consumed by the
synthesis layer, which must not depend on the batch engine); the
engine package re-exports it because per-cell estimation caching is
one of the engine's pillars.
"""

from repro.schedule.estimation_cache import (
    DEFAULT_MAX_ENTRIES,
    CacheStats,
    EstimationCache,
    solution_fingerprint,
)

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "CacheStats",
    "EstimationCache",
    "solution_fingerprint",
]
