"""Evaluation caching, re-exported as part of the engine API.

Per-cell estimation caching is one of the engine's pillars; the
implementation now lives in the unified evaluation core
(:mod:`repro.eval` — fingerprinted problems behind a tiered,
incremental :class:`~repro.eval.Evaluator`). Sweep cells share one
:class:`~repro.eval.EvaluatorPool` per workload; the legacy
:class:`~repro.schedule.estimation_cache.EstimationCache` is kept as
a deprecated shim over the same core.
"""

from repro.eval.core import (
    DEFAULT_MAX_ENTRIES,
    CacheStats,
    Evaluator,
    EvaluatorPool,
    EvaluatorStats,
)
from repro.schedule.estimation import solution_fingerprint
from repro.schedule.estimation_cache import EstimationCache

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "CacheStats",
    "EstimationCache",
    "Evaluator",
    "EvaluatorPool",
    "EvaluatorStats",
    "solution_fingerprint",
]
