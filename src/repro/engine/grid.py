"""Sweep grids: cartesian products of axes expanded into jobs.

The Fig. 7 / Fig. 8 sweeps — and every future batch experiment — are
grids: a few named axes (application size, generator seed, strategy
set), each cell independent of every other.  :func:`grid_jobs` expands
the axes in deterministic row-major order (first axis slowest) into
:class:`~repro.engine.jobs.BatchJob` instances with stable, readable
job ids, so serial and parallel runs enumerate identical work and
checkpoint files survive re-expansion of the same configuration.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from itertools import product

from repro.engine.jobs import BatchJob


def grid_jobs(
    runner: str,
    axes: Mapping[str, Sequence[object]],
    *,
    prefix: str,
    common: Mapping[str, object] | None = None,
) -> list[BatchJob]:
    """Expand named axes into one job per grid cell.

    ``axes`` maps axis names to value sequences; every combination
    becomes one job whose params hold the axis values plus the
    ``common`` parameters shared by all cells.  The job id is
    ``prefix/axis0=v0/axis1=v1/...`` in axis order.
    """
    if not axes:
        raise ValueError("a sweep grid needs at least one axis")
    names = list(axes)
    for name in names:
        if not axes[name]:
            raise ValueError(f"axis {name!r} has no values")
    jobs: list[BatchJob] = []
    for values in product(*(axes[name] for name in names)):
        cell = dict(common or {})
        cell.update(zip(names, values))
        suffix = "/".join(f"{name}={value}"
                          for name, value in zip(names, values))
        jobs.append(BatchJob.create(f"{prefix}/{suffix}", runner, **cell))
    return jobs
