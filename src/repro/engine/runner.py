"""The batch engine: fan jobs out, checkpoint, stream results.

Execution model
---------------

* every :class:`~repro.engine.jobs.BatchJob` is independent and pure,
  so the engine may run them serially (``workers <= 1``) or across a
  ``ProcessPoolExecutor`` — the report is assembled in job submission
  order either way, which makes serial and parallel runs byte-identical
  in their JSON/CSV output;
* each completed cell is appended to a JSONL checkpoint file the
  moment it finishes (flushed per line), so an interrupted sweep loses
  at most the in-flight cells;
* a resumed run loads the checkpoint, verifies each recorded cell
  still matches the job's parameters (a changed configuration
  invalidates the record, never silently reuses it) and only executes
  the remainder.

Timing is kept out of the result files on purpose: wall-clock numbers
live in the :class:`BatchReport` (and the checkpoint lines) where they
cannot break output reproducibility.
"""

from __future__ import annotations

import csv
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence

from repro.engine.jobs import BatchJob, run_job

#: Called once per cell as it completes (or is restored), for live
#: progress reporting. Parallel cells report in completion order.
ProgressCallback = Callable[["JobOutcome"], None]


@dataclass(frozen=True)
class EngineConfig:
    """How one batch run executes."""

    #: ``<= 1`` runs serially in-process; ``N > 1`` uses a process pool.
    workers: int = 1
    #: JSONL file recording completed cells (None disables).
    checkpoint_path: str | Path | None = None
    #: Load the checkpoint and skip already-completed cells.
    resume: bool = True


@dataclass
class JobOutcome:
    """One executed (or resumed) cell."""

    job: BatchJob
    result: dict
    elapsed: float
    from_checkpoint: bool = False


@dataclass
class BatchReport:
    """All outcomes of one engine run, in job submission order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    wall_time: float = 0.0
    #: Caller-attached summary payload (e.g. merged cache statistics)
    #: included in the JSON export when non-empty. Must itself be
    #: deterministic for the export to stay byte-stable.
    extra_info: dict = field(default_factory=dict)

    @property
    def executed(self) -> int:
        """Cells computed in this run."""
        return sum(1 for o in self.outcomes if not o.from_checkpoint)

    @property
    def resumed(self) -> int:
        """Cells restored from the checkpoint file."""
        return sum(1 for o in self.outcomes if o.from_checkpoint)

    def results(self) -> list[dict]:
        """The per-cell result dicts, in job order."""
        return [outcome.result for outcome in self.outcomes]

    def result_of(self, job_id: str) -> dict:
        """The result of one cell by id."""
        for outcome in self.outcomes:
            if outcome.job.job_id == job_id:
                return outcome.result
        raise KeyError(f"no outcome for job {job_id!r}")

    # -- deterministic exports ------------------------------------------------

    def to_jsonable(self) -> dict:
        """Timing-free report payload (stable across runs)."""
        payload = {
            "jobs": [
                {
                    "job_id": outcome.job.job_id,
                    "runner": outcome.job.runner,
                    "params": outcome.job.params_dict(),
                    "result": outcome.result,
                }
                for outcome in self.outcomes
            ],
        }
        if self.extra_info:
            payload["extra_info"] = dict(self.extra_info)
        return payload

    def to_json(self) -> str:
        """Canonical JSON text of the report."""
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> None:
        """Write the canonical JSON report."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def write_csv(self, path: str | Path) -> None:
        """Write one CSV row per cell (nested keys dotted, sorted)."""
        rows = [_flatten(outcome.result) for outcome in self.outcomes]
        columns = sorted({key for row in rows for key in row})
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["job_id", *columns])
            for outcome, row in zip(self.outcomes, rows):
                writer.writerow(
                    [outcome.job.job_id]
                    + [_cell(row.get(column)) for column in columns])


def _flatten(result: dict, prefix: str = "") -> dict:
    flat: dict = {}
    for key, value in result.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat


def _cell(value: object) -> str:
    if value is None:
        return ""
    return str(value)


def _execute(job: BatchJob) -> tuple[str, dict, float]:
    """Worker entry point: run one job and time it."""
    started = time.perf_counter()
    result = run_job(job)
    return job.job_id, result, time.perf_counter() - started


class BatchEngine:
    """Runs a list of jobs under one :class:`EngineConfig`."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self._config = config or EngineConfig()

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    def run(self, jobs: Sequence[BatchJob], *,
            progress: ProgressCallback | None = None) -> BatchReport:
        """Execute (or resume) all jobs and return the ordered report.

        ``progress`` is invoked live — restored cells first (in job
        order), then executed cells as each one finishes — so long
        sweeps can report while running.
        """
        seen: set[str] = set()
        for job in jobs:
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)

        started = time.perf_counter()
        if self._config.checkpoint_path is not None:
            # Fail on an unwritable location before any cell runs,
            # not after the first one finishes.
            Path(self._config.checkpoint_path).parent.mkdir(
                parents=True, exist_ok=True)
            self._repair_checkpoint()
        restored = self._load_checkpoint(jobs)
        if progress is not None:
            for job in jobs:
                if job.job_id in restored:
                    result, elapsed = restored[job.job_id]
                    progress(JobOutcome(job, result, elapsed,
                                        from_checkpoint=True))
        pending = [job for job in jobs if job.job_id not in restored]

        executed: dict[str, tuple[dict, float]] = {}
        if pending:
            if self._config.workers > 1:
                self._run_parallel(pending, executed, progress)
            else:
                self._run_serial(pending, executed, progress)

        outcomes: list[JobOutcome] = []
        for job in jobs:
            if job.job_id in restored:
                result, elapsed = restored[job.job_id]
                outcomes.append(JobOutcome(job, result, elapsed,
                                           from_checkpoint=True))
            else:
                result, elapsed = executed[job.job_id]
                outcomes.append(JobOutcome(job, result, elapsed))
        return BatchReport(outcomes=outcomes,
                           wall_time=time.perf_counter() - started)

    # -- execution paths ------------------------------------------------------

    def _record(self, job: BatchJob, result: dict, elapsed: float,
                executed: dict[str, tuple[dict, float]],
                progress: ProgressCallback | None) -> None:
        executed[job.job_id] = (result, elapsed)
        self._append_checkpoint(job, result, elapsed)
        if progress is not None:
            progress(JobOutcome(job, result, elapsed))

    def _run_serial(self, pending: Sequence[BatchJob],
                    executed: dict[str, tuple[dict, float]],
                    progress: ProgressCallback | None) -> None:
        for job in pending:
            __, result, elapsed = _execute(job)
            self._record(job, result, elapsed, executed, progress)

    def _run_parallel(self, pending: Sequence[BatchJob],
                      executed: dict[str, tuple[dict, float]],
                      progress: ProgressCallback | None) -> None:
        by_id = {job.job_id: job for job in pending}
        with ProcessPoolExecutor(
                max_workers=self._config.workers) as pool:
            futures = {pool.submit(_execute, job) for job in pending}
            while futures:
                done, futures = wait(futures,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    job_id, result, elapsed = future.result()
                    self._record(by_id[job_id], result, elapsed,
                                 executed, progress)

    # -- checkpointing --------------------------------------------------------

    def _repair_checkpoint(self) -> None:
        """Drop a torn final line left by a killed writer.

        Appends are flushed per line, so a crash can leave at most one
        record without its terminating newline. That torn tail must be
        removed *before* this run appends: ``open(..., "a")`` would
        otherwise glue the next completed record onto it, producing one
        unparseable line that silently loses a *valid* cell on the next
        resume. The torn record itself is unparseable anyway; its job
        simply re-runs.
        """
        path = Path(self._config.checkpoint_path)
        if not path.exists():
            return
        data = path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1  # 0 when the only line is torn
        # Truncate in place rather than rewriting the file: truncation
        # only ever drops the torn tail, so a crash *during* repair
        # cannot lose the valid records a full rewrite would be
        # holding in flight.
        with open(path, "r+b") as handle:
            handle.truncate(cut)

    def _load_checkpoint(self, jobs: Sequence[BatchJob],
                         ) -> dict[str, tuple[dict, float]]:
        path = self._config.checkpoint_path
        if path is None or not self._config.resume:
            return {}
        path = Path(path)
        if not path.exists():
            return {}
        params_by_id = {job.job_id: job.params_dict() for job in jobs}
        restored: dict[str, tuple[dict, float]] = {}
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn or corrupted line: drop, re-run
            if not isinstance(record, dict):
                continue  # valid JSON but not a record
            job_id = record.get("job_id")
            if job_id not in params_by_id:
                continue
            if record.get("params") != params_by_id[job_id]:
                continue  # configuration changed since the checkpoint
            result = record.get("result")
            if not isinstance(result, dict):
                continue
            elapsed = record.get("elapsed", 0.0)
            if not isinstance(elapsed, (int, float)):
                elapsed = 0.0  # corrupted timing never blocks a resume
            restored[job_id] = (result, float(elapsed))
        return restored

    def _append_checkpoint(self, job: BatchJob, result: dict,
                           elapsed: float) -> None:
        path = self._config.checkpoint_path
        if path is None:
            return
        record = {
            "job_id": job.job_id,
            "params": job.params_dict(),
            "result": result,
            "elapsed": elapsed,
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()


def run_batch(jobs: Sequence[BatchJob],
              config: EngineConfig | None = None, *,
              progress: ProgressCallback | None = None) -> BatchReport:
    """Convenience wrapper: run jobs under a config."""
    return BatchEngine(config).run(jobs, progress=progress)
