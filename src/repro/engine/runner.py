"""The batch engine: fan jobs out, checkpoint, stream results.

Execution model
---------------

* every :class:`~repro.engine.jobs.BatchJob` is independent and pure,
  so the engine may hand them to any :mod:`executor backend
  <repro.engine.backends>` — in-process ``serial``, single-host
  ``process`` pool, or multi-host ``workdir`` work stealing — the
  report is assembled in job submission order either way, which makes
  every backend's JSON/CSV output byte-identical;
* each completed cell is appended to a JSONL checkpoint file the
  moment it finishes (flushed per line, torn-tail-safe via
  :mod:`repro.engine.journal`), so an interrupted sweep loses at most
  the in-flight cells;
* a resumed run loads the checkpoint (and, for the workdir backend,
  the workdir's own result journals), verifies each recorded cell
  still matches the job's parameters (a changed configuration
  invalidates the record, never silently reuses it) and only executes
  the remainder.

Timing is kept out of the result files on purpose: wall-clock numbers
live in the :class:`BatchReport` (and the checkpoint lines) where they
cannot break output reproducibility.
"""

from __future__ import annotations

import csv
import io
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence

from repro.engine import journal
from repro.engine.backends import BACKENDS, create_backend, execute_job
from repro.engine.jobs import BatchJob
from repro.engine.workdir import (
    DEFAULT_LEASE_SIZE,
    DEFAULT_LEASE_TIMEOUT,
)

#: Called once per cell as it completes (or is restored), for live
#: progress reporting. Parallel cells report in completion order.
ProgressCallback = Callable[["JobOutcome"], None]


@dataclass(frozen=True)
class EngineConfig:
    """How one batch run executes.

    ``backend`` selects the executor explicitly; when ``None`` the
    engine auto-selects — ``workdir`` when a workdir is given,
    ``process`` for ``workers > 1``, ``serial`` otherwise. Invalid
    combinations fail at construction time, not mid-sweep.
    """

    #: ``<= 1`` runs serially in-process; ``N > 1`` uses a process
    #: pool (ignored by the serial and workdir backends).
    workers: int = 1
    #: JSONL file recording completed cells (None disables). Mutually
    #: exclusive with ``workdir`` — the workdir *is* the checkpoint.
    checkpoint_path: str | Path | None = None
    #: Load the checkpoint and skip already-completed cells.
    resume: bool = True
    #: Explicit backend name (one of :data:`~repro.engine.backends.
    #: BACKENDS`) or None for auto-selection.
    backend: str | None = None
    #: Shared directory of the workdir backend (its job list, chunk
    #: leases and per-worker result journals).
    workdir: str | Path | None = None
    #: Jobs per workdir lease (the work-stealing granularity).
    lease_size: int = DEFAULT_LEASE_SIZE
    #: Reclaim a workdir lease whose heartbeat is older than this;
    #: must exceed the longest single job.
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    #: Stable workdir worker identity (None: host-pid-random).
    worker_id: str | None = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose one of "
                f"{', '.join(BACKENDS)}")
        if self.lease_size < 1:
            raise ValueError(
                f"lease_size must be >= 1, got {self.lease_size}")
        if self.lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be > 0, got {self.lease_timeout}")
        if self.backend_name == "workdir":
            if self.workdir is None:
                raise ValueError(
                    "the workdir backend needs a shared directory: "
                    "set workdir=... (it holds the job list, leases "
                    "and result journals)")
            if self.checkpoint_path is not None:
                raise ValueError(
                    "checkpoint_path conflicts with the workdir "
                    "backend: the workdir is the checkpoint (results "
                    "live in <workdir>/results)")
        elif self.workdir is not None:
            raise ValueError(
                f"workdir is only used by the workdir backend, not "
                f"{self.backend_name!r}")

    @property
    def backend_name(self) -> str:
        """The resolved backend name (auto-selected when unset)."""
        if self.backend is not None:
            return self.backend
        if self.workdir is not None:
            return "workdir"
        return "process" if self.workers > 1 else "serial"


@dataclass
class JobOutcome:
    """One executed (or resumed) cell."""

    job: BatchJob
    result: dict
    elapsed: float
    from_checkpoint: bool = False


@dataclass
class BatchReport:
    """All outcomes of one engine run, in job submission order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    wall_time: float = 0.0
    #: Caller-attached summary payload (e.g. merged cache statistics)
    #: included in the JSON export when non-empty. Must itself be
    #: deterministic for the export to stay byte-stable.
    extra_info: dict = field(default_factory=dict)

    @property
    def executed(self) -> int:
        """Cells computed in this run."""
        return sum(1 for o in self.outcomes if not o.from_checkpoint)

    @property
    def resumed(self) -> int:
        """Cells restored from the checkpoint file."""
        return sum(1 for o in self.outcomes if o.from_checkpoint)

    def results(self) -> list[dict]:
        """The per-cell result dicts, in job order."""
        return [outcome.result for outcome in self.outcomes]

    def result_of(self, job_id: str) -> dict:
        """The result of one cell by id."""
        for outcome in self.outcomes:
            if outcome.job.job_id == job_id:
                return outcome.result
        raise KeyError(f"no outcome for job {job_id!r}")

    # -- deterministic exports ------------------------------------------------

    def to_jsonable(self) -> dict:
        """Timing-free report payload (stable across runs)."""
        payload = {
            "jobs": [
                {
                    "job_id": outcome.job.job_id,
                    "runner": outcome.job.runner,
                    "params": outcome.job.params_dict(),
                    "result": outcome.result,
                }
                for outcome in self.outcomes
            ],
        }
        if self.extra_info:
            payload["extra_info"] = dict(self.extra_info)
        return payload

    def to_json(self) -> str:
        """Canonical JSON text of the report."""
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> None:
        """Write the canonical JSON report (atomic replace)."""
        journal.write_atomic_text(path, self.to_json() + "\n")

    def write_csv(self, path: str | Path) -> None:
        """Write one CSV row per cell (nested keys dotted, sorted).

        Rendered in memory and atomically replaced, so a crash
        mid-export never leaves a torn CSV next to a valid JSON
        report.
        """
        rows = [_flatten(outcome.result) for outcome in self.outcomes]
        columns = sorted({key for row in rows for key in row})
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["job_id", *columns])
        for outcome, row in zip(self.outcomes, rows):
            writer.writerow(
                [outcome.job.job_id]
                + [_cell(row.get(column)) for column in columns])
        journal.write_atomic_text(path, buffer.getvalue())


def _flatten(result: dict, prefix: str = "") -> dict:
    flat: dict = {}
    for key, value in result.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat


def _cell(value: object) -> str:
    if value is None:
        return ""
    return str(value)


#: Backwards-compatible alias; the worker entry point lives in
#: :mod:`repro.engine.backends` now.
_execute = execute_job


class BatchEngine:
    """Runs a list of jobs under one :class:`EngineConfig`."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self._config = config or EngineConfig()

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    def run(self, jobs: Sequence[BatchJob], *,
            progress: ProgressCallback | None = None) -> BatchReport:
        """Execute (or resume) all jobs and return the ordered report.

        ``progress`` is invoked live — restored cells first (in job
        order), then executed cells as each one finishes — so long
        sweeps can report while running.
        """
        seen: set[str] = set()
        for job in jobs:
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)

        started = time.perf_counter()
        backend = create_backend(self._config)
        if self._config.checkpoint_path is not None:
            # Fail on an unwritable location before any cell runs,
            # not after the first one finishes.
            Path(self._config.checkpoint_path).parent.mkdir(
                parents=True, exist_ok=True)
            journal.repair_torn_tail(self._config.checkpoint_path)
        restored = self._load_checkpoint(jobs)
        restored.update(backend.restore(jobs))
        if progress is not None:
            for job in jobs:
                if job.job_id in restored:
                    result, elapsed = restored[job.job_id]
                    progress(JobOutcome(job, result, elapsed,
                                        from_checkpoint=True))
        pending = [job for job in jobs if job.job_id not in restored]

        executed: dict[str, tuple[dict, float]] = {}
        if pending:
            backend.execute(
                pending,
                lambda job, result, elapsed: self._record(
                    job, result, elapsed, executed, progress))

        outcomes: list[JobOutcome] = []
        for job in jobs:
            if job.job_id in restored:
                result, elapsed = restored[job.job_id]
                outcomes.append(JobOutcome(job, result, elapsed,
                                           from_checkpoint=True))
            else:
                result, elapsed = executed[job.job_id]
                outcomes.append(JobOutcome(job, result, elapsed))
        return BatchReport(outcomes=outcomes,
                           wall_time=time.perf_counter() - started)

    # -- execution paths ------------------------------------------------------

    def _record(self, job: BatchJob, result: dict, elapsed: float,
                executed: dict[str, tuple[dict, float]],
                progress: ProgressCallback | None) -> None:
        executed[job.job_id] = (result, elapsed)
        self._append_checkpoint(job, result, elapsed)
        if progress is not None:
            progress(JobOutcome(job, result, elapsed))

    # -- checkpointing --------------------------------------------------------

    def _load_checkpoint(self, jobs: Sequence[BatchJob],
                         ) -> dict[str, tuple[dict, float]]:
        path = self._config.checkpoint_path
        if path is None or not self._config.resume:
            return {}
        params_by_id = {job.job_id: job.params_dict() for job in jobs}
        return journal.load_cells(path, params_by_id)

    def _append_checkpoint(self, job: BatchJob, result: dict,
                           elapsed: float) -> None:
        path = self._config.checkpoint_path
        if path is None:
            return
        journal.append_record(path, {
            "job_id": job.job_id,
            "params": job.params_dict(),
            "result": result,
            "elapsed": elapsed,
        })


def run_batch(jobs: Sequence[BatchJob],
              config: EngineConfig | None = None, *,
              progress: ProgressCallback | None = None) -> BatchReport:
    """Convenience wrapper: run jobs under a config."""
    return BatchEngine(config).run(jobs, progress=progress)
