"""The shared-directory work-stealing protocol of the workdir backend.

N independent worker processes — potentially on different machines
sharing one filesystem — drain one job list cooperatively with no
coordinator connection, no locks and no daemon. All coordination is
files in one directory:

::

    <workdir>/
        meta.json             # format, job count, lease size
        jobs.jsonl            # the full job list, in submission order
        leases/
            chunk-000003.todo                # up for grabs
            chunk-000004.claimed-<worker>    # being executed
            chunk-000005.done                # all results flushed
        results/<worker>.jsonl               # per-worker journal

Protocol invariants
-------------------

* **Claiming is an atomic rename.** A worker claims a chunk by
  renaming ``chunk-N.todo`` to ``chunk-N.claimed-<worker>``; the
  filesystem guarantees exactly one renamer wins, the losers get
  ``FileNotFoundError`` and move on. No partial claims exist.
* **Liveness is the claim file's mtime.** A worker touches its claim
  file after every job; any process may rename a claim whose mtime is
  older than the lease timeout back to ``.todo`` (stale-lease
  reclamation). A worker that loses its claim this way abandons the
  chunk — the jobs it already flushed are kept, the rest re-run under
  the new owner.
* **Results are torn-tail-safe journals** (:mod:`repro.engine.
  journal`): each worker appends to its own file only, one flushed
  line per job, so a ``kill -9`` costs at most the in-flight record.
* **The merge is order-free and duplicate-free.** Jobs are pure, so
  two workers that executed the same job (a reclaimed chunk's overlap)
  wrote equal records; the merge dedups by job id over the sorted
  results files and the engine assembles the report in job submission
  order — byte-identical to a serial run.

The lease timeout must exceed the longest single job: heartbeats
happen between jobs, so a job that runs longer than the timeout looks
dead and gets its chunk stolen (harmless for correctness — results
merge and dedup — but it wastes work).
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Sequence

from repro.engine import journal
from repro.engine.jobs import BatchJob, run_job

#: On-disk protocol version; bump on incompatible layout changes.
WORKDIR_FORMAT = 1

#: Reclaim a claimed lease when its heartbeat is older than this.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Jobs per lease (the work-stealing granularity).
DEFAULT_LEASE_SIZE = 1

_META_FILE = "meta.json"
_JOBS_FILE = "jobs.jsonl"
_LEASES_DIR = "leases"
_RESULTS_DIR = "results"


def default_worker_id() -> str:
    """A collision-free worker identity: host, pid and a random tag."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:8]}")


@dataclass(frozen=True)
class Lease:
    """One claimed contiguous chunk of the job list."""

    index: int
    start: int
    stop: int
    path: Path  # the ``.claimed-<worker>`` file while held


@dataclass
class WorkerSummary:
    """What one :func:`work` loop did."""

    worker_id: str
    claimed: int = 0
    executed: int = 0
    skipped: int = 0
    reclaimed: int = 0
    lost: int = 0  # leases stolen mid-chunk (stale reclamation)


class Workdir:
    """One shared work-stealing directory (see the module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_path = self.root / _JOBS_FILE
        self.meta_path = self.root / _META_FILE
        self.leases_dir = self.root / _LEASES_DIR
        self.results_dir = self.root / _RESULTS_DIR

    # -- initialisation (coordinator side) ------------------------------------

    def initialize(self, jobs: Sequence[BatchJob], *,
                   lease_size: int = DEFAULT_LEASE_SIZE,
                   fresh: bool = False) -> None:
        """Publish the job list and create any missing lease files.

        Re-initialising an existing workdir with the *same* job list
        is a resume: done leases and flushed results are kept. A
        different job list is refused (a workdir describes exactly one
        sweep); ``fresh=True`` wipes leases and results first.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.leases_dir.mkdir(exist_ok=True)
        self.results_dir.mkdir(exist_ok=True)
        if fresh:
            for stale in (*sorted(self.leases_dir.iterdir()),
                          *sorted(self.results_dir.iterdir())):
                stale.unlink()
            self.jobs_path.unlink(missing_ok=True)
            self.meta_path.unlink(missing_ok=True)

        if self.jobs_path.exists():
            existing = self.load_jobs()
            if list(existing) != list(jobs):
                raise ValueError(
                    f"workdir {self.root} already holds a different "
                    f"job list ({len(existing)} job(s)); a workdir "
                    "describes exactly one sweep — use a fresh "
                    "directory or resume=False")
        else:
            self._write_atomic(self.meta_path, json.dumps({
                "format": WORKDIR_FORMAT,
                "jobs": len(jobs),
                "lease_size": int(lease_size),
            }, sort_keys=True) + "\n")
            lines = [json.dumps({"job_id": job.job_id,
                                 "runner": job.runner,
                                 "params": job.params_dict()},
                                sort_keys=True)
                     for job in jobs]
            self._write_atomic(self.jobs_path,
                               "\n".join(lines) + ("\n" if lines else ""))

        present = {self._index_of(path.name)
                   for path in sorted(self.leases_dir.iterdir())}
        for index in range(self.chunk_count()):
            if index in present:
                continue
            todo = self.leases_dir / f"chunk-{index:06d}.todo"
            try:
                todo.touch(exist_ok=False)
            except FileExistsError:
                pass  # another coordinator won the race

    def _write_atomic(self, path: Path, text: str) -> None:
        journal.write_atomic_text(path, text)

    # -- shared state ---------------------------------------------------------

    def meta(self) -> dict:
        meta = json.loads(self.meta_path.read_text(encoding="utf-8"))
        if meta.get("format") != WORKDIR_FORMAT:
            raise ValueError(
                f"workdir {self.root} uses protocol format "
                f"{meta.get('format')!r}, this build speaks "
                f"{WORKDIR_FORMAT}")
        return meta

    def load_jobs(self) -> list[BatchJob]:
        """The published job list, in submission order."""
        jobs = []
        for record in journal.iter_records(self.jobs_path):
            jobs.append(BatchJob(
                job_id=record["job_id"], runner=record["runner"],
                params_json=json.dumps(record["params"],
                                       sort_keys=True)))
        return jobs

    def chunk_count(self) -> int:
        meta = self.meta()
        total, size = meta["jobs"], meta["lease_size"]
        return (total + size - 1) // size if total else 0

    def chunk_bounds(self, index: int) -> tuple[int, int]:
        meta = self.meta()
        size = meta["lease_size"]
        return index * size, min(meta["jobs"], (index + 1) * size)

    @staticmethod
    def _index_of(name: str) -> int:
        # "chunk-000042.todo" / ".claimed-<worker>" / ".done"
        return int(name.split(".", 1)[0].split("-", 1)[1])

    # -- the lease protocol ---------------------------------------------------

    def claim_next(self, worker_id: str) -> Lease | None:
        """Claim the lowest-numbered open chunk, or None.

        The rename is the whole claim: losing a race surfaces as
        ``FileNotFoundError`` and the next candidate is tried — a
        duplicate claim cannot exist.
        """
        for todo in sorted(self.leases_dir.glob("chunk-*.todo")):
            index = self._index_of(todo.name)
            claimed = todo.with_name(
                f"chunk-{index:06d}.claimed-{worker_id}")
            try:
                os.rename(todo, claimed)
            except FileNotFoundError:
                continue  # lost the race for this chunk
            # The rename keeps the .todo file's old mtime; stamp the
            # claim now so it does not instantly look stale.
            os.utime(claimed)
            start, stop = self.chunk_bounds(index)
            return Lease(index=index, start=start, stop=stop,
                         path=claimed)
        return None

    def heartbeat(self, lease: Lease) -> bool:
        """Refresh the claim's liveness; False when it was stolen."""
        try:
            os.utime(lease.path)
        except FileNotFoundError:
            return False
        return True

    def complete(self, lease: Lease) -> bool:
        """Mark a claimed chunk done; False when it was stolen."""
        done = lease.path.with_name(f"chunk-{lease.index:06d}.done")
        try:
            os.rename(lease.path, done)
        except FileNotFoundError:
            return False
        return True

    def reclaim_stale(self,
                      timeout: float = DEFAULT_LEASE_TIMEOUT,
                      ) -> list[int]:
        """Return stale claims (heartbeat older than timeout) to todo."""
        reclaimed: list[int] = []
        now = time.time()
        for claim in sorted(self.leases_dir.glob("chunk-*.claimed-*")):
            try:
                age = now - claim.stat().st_mtime
            except FileNotFoundError:
                continue  # completed or already reclaimed
            if age <= timeout:
                continue
            index = self._index_of(claim.name)
            todo = claim.with_name(f"chunk-{index:06d}.todo")
            try:
                os.rename(claim, todo)
            except FileNotFoundError:
                continue  # someone else got there first
            reclaimed.append(index)
        return reclaimed

    def all_done(self) -> bool:
        """True when every chunk's lease reached ``.done``."""
        # repro: allow[REP008] counting matches is order-free
        done = sum(1 for _ in self.leases_dir.glob("chunk-*.done"))
        return done >= self.chunk_count()

    # -- results --------------------------------------------------------------

    def results_path(self, worker_id: str) -> Path:
        return self.results_dir / f"{worker_id}.jsonl"

    def append_result(self, worker_id: str, job: BatchJob,
                      result: dict, elapsed: float) -> None:
        journal.append_record(self.results_path(worker_id), {
            "job_id": job.job_id,
            "params": job.params_dict(),
            "result": result,
            "elapsed": elapsed,
            "worker": worker_id,
        })

    def load_results(self, jobs: Sequence[BatchJob],
                     ) -> dict[str, tuple[dict, float]]:
        """Merge all workers' journals, validated and deduped.

        Files are read in sorted name order and the first record per
        job wins — deterministic, and since jobs are pure any
        duplicate records hold equal results anyway.
        """
        params_by_id = {job.job_id: job.params_dict() for job in jobs}
        merged: dict[str, tuple[dict, float]] = {}
        for path in sorted(self.results_dir.glob("*.jsonl")):
            for job_id, cell in journal.load_cells(
                    path, params_by_id).items():
                merged.setdefault(job_id, cell)
        return merged


def work(root: str | Path, *,
         worker_id: str | None = None,
         lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
         poll_interval: float = 0.2,
         max_idle: float | None = None,
         wait_for_jobs: float = 0.0,
         on_outcome: Callable[[BatchJob, dict, float], None]
         | None = None) -> WorkerSummary:
    """Drain a workdir: claim leases, run jobs, journal results.

    This one loop is both the standalone ``repro worker`` process and
    the coordinator's own execution path. It returns when every chunk
    is done, or — with ``max_idle`` — after that many consecutive
    seconds without a claimable lease (lets helpers drain and leave
    while the coordinator keeps waiting).

    ``wait_for_jobs`` tolerates workers starting before the
    coordinator published the job list. A failing job propagates its
    exception (the lease stays claimed and times out, so the chunk
    eventually re-runs — and re-fails — under the coordinator, which
    is where the error belongs).
    """
    wd = Workdir(root)
    worker = worker_id or default_worker_id()
    deadline = time.monotonic() + wait_for_jobs
    while not (wd.jobs_path.exists() and wd.meta_path.exists()):
        if time.monotonic() >= deadline:
            raise FileNotFoundError(
                f"no job list in workdir {wd.root} (is the "
                "coordinator running with --backend workdir?)")
        time.sleep(poll_interval)

    jobs = wd.load_jobs()
    done_ids = set(wd.load_results(jobs))  # resumed cells never re-run
    summary = WorkerSummary(worker_id=worker)
    idle = 0.0
    while True:
        summary.reclaimed += len(wd.reclaim_stale(lease_timeout))
        lease = wd.claim_next(worker)
        if lease is None:
            if wd.all_done():
                break
            if max_idle is not None and idle >= max_idle:
                break
            time.sleep(poll_interval)
            idle += poll_interval
            continue
        idle = 0.0
        summary.claimed += 1
        stolen = False
        for job in jobs[lease.start:lease.stop]:
            if job.job_id in done_ids:
                summary.skipped += 1
                continue
            started = time.perf_counter()
            result = run_job(job)
            elapsed = time.perf_counter() - started
            wd.append_result(worker, job, result, elapsed)
            done_ids.add(job.job_id)
            summary.executed += 1
            if on_outcome is not None:
                on_outcome(job, result, elapsed)
            if not wd.heartbeat(lease):
                stolen = True  # reclaimed under us: abandon the rest
                break
        if stolen or not wd.complete(lease):
            summary.lost += 1
    return summary
