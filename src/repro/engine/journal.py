"""Torn-tail-safe JSONL journals.

Both the engine's checkpoint file and the workdir backend's per-worker
results files are append-only JSONL journals written by processes that
may be killed at any instant. Three operations make that safe:

* :func:`append_record` — one flushed line per record, so a crash can
  leave at most one record without its terminating newline;
* :func:`repair_torn_tail` — truncate that torn final line in place
  *before* appending again, so the next record is never glued onto it
  (which would turn one torn record into one unparseable line that
  silently swallows a valid cell);
* :func:`iter_records` — tolerant reading: unparseable or non-dict
  lines are skipped, never fatal, because a torn line only means its
  cell re-runs.

Truncation (rather than rewriting the file) is deliberate: repair only
ever drops the torn tail, so a crash *during* repair cannot lose the
valid records a full rewrite would be holding in flight.

Whole-file artifacts (reports, CSV exports, workdir metadata) have a
fourth operation, :func:`write_atomic_text`: write to a unique temp
file, then ``os.replace`` — the reader only ever sees the old
contents or the new, never a torn mix, and concurrent writers both
produce valid files (last replace wins). Every persistent write in
the repo goes through this module or the disk cache's equivalent
(``repro lint`` rule REP004 enforces it).
"""

from __future__ import annotations

import itertools
import json
import os
import socket
from pathlib import Path
from collections.abc import Iterator


def repair_torn_tail(path: str | Path) -> bool:
    """Drop a torn final line left by a killed writer.

    Returns True when a torn tail was found and truncated. A missing
    file, an empty file, or a file ending in a newline is left alone.
    """
    path = Path(path)
    if not path.exists():
        return False
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return False
    cut = data.rfind(b"\n") + 1  # 0 when the only line is torn
    with open(path, "r+b") as handle:
        handle.truncate(cut)
    return True


#: Per-process tmp-name sequence: host + pid + counter is unique
#: without consuming entropy (rule REP002 bans ``uuid`` here).
_TMP_IDS = itertools.count()


def write_atomic_text(path: str | Path, text: str, *,
                      encoding: str = "utf-8") -> None:
    """Atomically replace a file's contents (tmp + ``os.replace``).

    A crash at any byte leaves the destination either untouched or
    fully written. The text is written verbatim (no newline
    translation), so exports stay byte-identical across platforms.
    I/O failures propagate — a report that cannot be written is an
    error, not a degradation — but the temp file never outlives them.
    """
    path = Path(path)
    tmp = path.with_name(
        f".{path.name}.{socket.gethostname()}-{os.getpid()}-"
        f"{next(_TMP_IDS)}.tmp")
    try:
        tmp.write_text(text, encoding=encoding, newline="")
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass  # the tmp file itself never got created
        raise


def append_record(path: str | Path, record: dict) -> None:
    """Append one canonical-JSON record as a flushed line."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()


def iter_records(path: str | Path) -> Iterator[dict]:
    """Yield every parseable record of a journal, in file order.

    Torn, corrupted, or non-dict lines are skipped — the journal
    contract is that a dropped line only costs a re-run, never
    correctness.
    """
    path = Path(path)
    if not path.exists():
        return
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn or corrupted line: drop, re-run
        if isinstance(record, dict):
            yield record


def load_cells(path: str | Path,
               params_by_id: dict[str, dict],
               ) -> dict[str, tuple[dict, float]]:
    """Validated completed cells of a checkpoint/results journal.

    A record is only restored when its ``job_id`` is known *and* its
    recorded params still match the job's current params — a changed
    configuration invalidates the record, never silently reuses it.
    Later duplicates of a job are ignored (first record wins; the
    journal is append-only, so the first record is the oldest).
    """
    restored: dict[str, tuple[dict, float]] = {}
    for record in iter_records(path):
        job_id = record.get("job_id")
        if job_id not in params_by_id or job_id in restored:
            continue
        if record.get("params") != params_by_id[job_id]:
            continue  # configuration changed since the record
        result = record.get("result")
        if not isinstance(result, dict):
            continue
        elapsed = record.get("elapsed", 0.0)
        if not isinstance(elapsed, (int, float)):
            elapsed = 0.0  # corrupted timing never blocks a resume
        restored[job_id] = (result, float(elapsed))
    return restored
