"""Execution-time arithmetic for checkpointing and re-execution
(paper §3.1, Fig. 1).

Timeline of one copy with ``n >= 1`` checkpoints (``n`` segments of
``C / n`` each; a checkpoint is saved before each segment, the first
stores the initial inputs):

```
[χ seg1 α] [χ seg2 α] ... [χ segn α]                 fault-free
[χ seg1 α] [μ seg1 α] ...                            retry after fault
```

* χ (checkpointing overhead) is paid once per segment, before its
  first attempt; retries restore the already-saved checkpoint instead
  (cost μ, the recovery overhead).
* α (error-detection overhead) ends **every** attempt *except* an
  attempt that provably cannot fail because the remaining system-wide
  fault budget is zero — the paper's Fig. 1c note ("the error-detection
  overhead α is not considered in the last recovery").

Pure re-execution (``checkpoints == 0``) is the same automaton with a
single segment of the full WCET and no χ.

With all ``k`` system faults hitting one copy with ``n`` checkpoints,
the worst-case duration is ``C + n(α + χ) + k(C/n + μ + α) − α``, the
formula minimized by :func:`repro.policies.checkpoints.local_optimal_checkpoints`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.policies.types import CopyPlan


@dataclass(frozen=True)
class CopyExecution:
    """Execution-time calculator for one copy of one process.

    Parameters
    ----------
    wcet:
        WCET ``C`` of the process on the copy's node.
    plan:
        The copy's :class:`CopyPlan`.
    alpha, mu, chi:
        The process overheads (§3).
    """

    wcet: float
    plan: CopyPlan
    alpha: float
    mu: float
    chi: float

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise PolicyError(f"wcet must be positive, got {self.wcet}")
        for label, value in (("alpha", self.alpha), ("mu", self.mu),
                             ("chi", self.chi)):
            if value < 0:
                raise PolicyError(f"{label} must be >= 0, got {value}")

    @property
    def segments(self) -> int:
        """Number of execution segments."""
        return self.plan.segments

    @property
    def segment_time(self) -> float:
        """Duration of one execution segment (χ/α/μ excluded)."""
        return self.wcet / self.plan.segments

    def attempt_duration(self, attempt: int, *, can_fail: bool) -> float:
        """Duration of the ``attempt``-th attempt (1-based) of a segment.

        The first attempt pays χ (saving the checkpoint) when
        checkpointing is used; retries pay μ (restoring it). α is paid
        iff the attempt can still fail (``can_fail``).
        """
        if attempt < 1:
            raise PolicyError(f"attempt index must be >= 1, got {attempt}")
        duration = self.segment_time
        if attempt == 1:
            if self.plan.uses_checkpointing:
                duration += self.chi
        else:
            duration += self.mu
        if can_fail:
            duration += self.alpha
        return duration

    def fault_free_duration(self) -> float:
        """Duration when no fault occurs (fault budget available).

        ``C + α`` for re-execution, ``C + n(α + χ)`` for checkpointing.
        """
        n = self.segments
        per_segment_overhead = self.alpha
        if self.plan.uses_checkpointing:
            per_segment_overhead += self.chi
        return self.wcet + n * per_segment_overhead

    def worst_case_duration(self, budget: int) -> float:
        """Worst-case duration when up to ``budget`` system faults may
        strike and this copy absorbs as many as it can recover from.

        Implements ``C + n(α + χ) + f(C/n + μ + α) − α`` with
        ``f = min(R, budget)``; the final −α applies when the copy's
        last retry exhausts the whole system budget (it cannot fail, so
        detection is skipped, as in Fig. 1c).
        """
        if budget < 0:
            raise PolicyError(f"budget must be >= 0, got {budget}")
        faults = min(self.plan.recoveries, budget)
        duration = self.fault_free_duration()
        duration += faults * (self.segment_time + self.mu + self.alpha)
        if faults > 0 and faults == budget:
            duration -= self.alpha
        if budget == 0:
            # No fault can occur at all: no detection anywhere.
            duration -= self.segments * self.alpha
        return duration

    def recovery_slack(self, budget: int) -> float:
        """Extra time beyond fault-free needed to absorb faults.

        This is the per-copy recovery slack shared on a processor by
        the estimation scheduler (paper §6 / [13]). Zero when the copy
        has no recoveries or the budget is zero.
        """
        if budget == 0:
            return 0.0
        return self.worst_case_duration(budget) - self.fault_free_duration()
