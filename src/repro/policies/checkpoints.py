"""Per-process optimal checkpoint count — the paper's [27] baseline.

Punnekkat/Burns/Davis-style analysis: considering a process **in
isolation**, with all ``k`` faults hitting it, the worst-case duration
with ``n`` equidistant checkpoints is

```
E(n) = C + n(α + χ) + k(C/n + μ + α) − α
```

(:meth:`repro.policies.recovery.CopyExecution.worst_case_duration`).
Dropping the constant terms, ``E`` is minimized over real ``n`` at
``n⁰ = sqrt(k·C / (α + χ))``; the optimal integer count is whichever of
the two neighbouring integers gives the smaller ``E``.

The paper's Fig. 8 shows that applying this per-process optimum
everywhere is *not* globally optimal — checkpoints cost fault-free time
on the processor while the recovery time they save is shared slack —
which is what :mod:`repro.synthesis.checkpoint_opt` exploits.
"""

from __future__ import annotations

import math

from repro.errors import PolicyError
from repro.policies.recovery import CopyExecution
from repro.policies.types import CopyPlan


def worst_case_in_isolation(wcet: float, k: int, alpha: float, mu: float,
                            chi: float, checkpoints: int) -> float:
    """``E(n)``: worst-case duration with all ``k`` faults on this
    process and ``checkpoints`` equidistant checkpoints."""
    if checkpoints < 1:
        raise PolicyError("worst_case_in_isolation needs checkpoints >= 1")
    execution = CopyExecution(
        wcet=wcet,
        plan=CopyPlan(recoveries=k, checkpoints=checkpoints),
        alpha=alpha, mu=mu, chi=chi,
    )
    return execution.worst_case_duration(budget=k)


def local_optimal_checkpoints(wcet: float, k: int, alpha: float, chi: float,
                              *, mu: float = 0.0,
                              max_checkpoints: int | None = None) -> int:
    """The [27]-style per-process optimal number of checkpoints.

    Parameters
    ----------
    wcet:
        Process WCET ``C`` on its node.
    k:
        Fault budget assumed to hit this process alone.
    alpha, chi, mu:
        Overheads; only ``α + χ`` influences the optimum (μ is paid
        once per fault regardless of ``n``) but μ participates in tie
        evaluation through the full formula.
    max_checkpoints:
        Optional upper bound (e.g. memory for checkpoint storage).

    Returns at least 1. For ``k == 0`` checkpoints are pure overhead,
    so 1 (the minimum that still provides rollback) is returned.
    """
    if wcet <= 0:
        raise PolicyError(f"wcet must be positive, got {wcet}")
    if k < 0:
        raise PolicyError(f"k must be >= 0, got {k}")
    ceiling = max_checkpoints if max_checkpoints is not None else 10_000
    if ceiling < 1:
        raise PolicyError("max_checkpoints must be >= 1")
    if k == 0:
        return 1

    overhead = alpha + chi
    if overhead <= 0:
        # Checkpoints are free: more is always (weakly) better for the
        # worst case, but beyond k per fault budget there is no gain —
        # the k retries redo at most k segments.
        return min(ceiling, max(1, k))

    ideal = math.sqrt(k * wcet / overhead)
    candidates = {
        max(1, min(ceiling, math.floor(ideal))),
        max(1, min(ceiling, math.ceil(ideal))),
    }

    def cost(n: int) -> float:
        return worst_case_in_isolation(wcet, k, alpha, mu, chi, n)

    return min(sorted(candidates), key=cost)
