"""Fault-tolerance policies (paper §3 and §4).

The combination of fault-tolerance techniques applied to each process
is captured by the four functions of §4:

* ``P`` — replication, checkpointing, or both (:class:`PolicyKind`);
* ``Q`` — number of replicas;
* ``R`` — number of recoveries per copy;
* ``X`` — number of checkpoints per copy.

Here the four functions collapse into one value object per process:
:class:`ProcessPolicy` is a tuple of :class:`CopyPlan` (one per placed
copy, original included), each with its recovery and checkpoint counts.
:class:`PolicyAssignment` maps every process of an application to its
policy and validates the k-fault-tolerance condition
``sum_j (R_j + 1) >= k + 1``.

:mod:`repro.policies.recovery` holds the execution-time arithmetic of
§3.1 (segments, overheads, worst cases) and
:mod:`repro.policies.checkpoints` the per-process optimal checkpoint
count used as the [27] baseline in the paper's Fig. 8.
"""

from repro.policies.types import (
    CopyPlan,
    PolicyAssignment,
    PolicyKind,
    ProcessPolicy,
)
from repro.policies.recovery import CopyExecution
from repro.policies.checkpoints import (
    local_optimal_checkpoints,
    worst_case_in_isolation,
)

__all__ = [
    "CopyExecution",
    "CopyPlan",
    "PolicyAssignment",
    "PolicyKind",
    "ProcessPolicy",
    "local_optimal_checkpoints",
    "worst_case_in_isolation",
]
