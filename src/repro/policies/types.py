"""Policy value objects: ``F = <P, Q, R, X>`` (paper §4).

Conventions used throughout the library:

* A *copy* is one placed instance of a process. Copy ``0`` is the
  original; copies ``1..Q`` are the replicas of the paper's ``VR``.
* ``CopyPlan.checkpoints == 0`` means **pure re-execution**: one
  execution segment of the full WCET, recovery restores the initial
  inputs (cost μ) and no checkpointing overhead χ is paid. The paper
  treats re-execution as rollback recovery with a single checkpoint;
  we additionally keep the χ-free variant because the policy-assignment
  experiments of [13] (paper Fig. 7) use plain re-execution.
* ``CopyPlan.checkpoints == n >= 1`` means equidistant checkpointing
  with ``n`` checkpoints / ``n`` execution segments (paper Fig. 1b: two
  checkpoints produce two segments; the first checkpoint stores the
  initial state).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.errors import PolicyError
from repro.model.application import Application


class PolicyKind(enum.Enum):
    """The ``P`` function of paper §4 (plus the k=0 degenerate case)."""

    NONE = "none"
    CHECKPOINTING = "checkpointing"
    REPLICATION = "replication"
    REPLICATION_AND_CHECKPOINTING = "replication+checkpointing"


@dataclass(frozen=True)
class CopyPlan:
    """Recovery plan of one process copy.

    Parameters
    ----------
    recoveries:
        ``R`` — how many faults this copy can recover from. Once
        exceeded, the copy fails silently (relevant for replicas).
    checkpoints:
        ``X`` — number of equidistant checkpoints; ``0`` selects pure
        re-execution (see module docstring).
    """

    recoveries: int = 0
    checkpoints: int = 0

    def __post_init__(self) -> None:
        if self.recoveries < 0:
            raise PolicyError(f"recoveries must be >= 0, got {self.recoveries}")
        if self.checkpoints < 0:
            raise PolicyError(f"checkpoints must be >= 0, got {self.checkpoints}")

    @property
    def segments(self) -> int:
        """Number of execution segments (>= 1)."""
        return max(1, self.checkpoints)

    @property
    def uses_checkpointing(self) -> bool:
        """True when χ-cost checkpoints are saved."""
        return self.checkpoints >= 1

    def with_checkpoints(self, checkpoints: int) -> "CopyPlan":
        """Copy of this plan with a different checkpoint count."""
        return CopyPlan(recoveries=self.recoveries, checkpoints=checkpoints)


@dataclass(frozen=True)
class ProcessPolicy:
    """Fault-tolerance policy of one process: a tuple of copy plans."""

    copies: tuple[CopyPlan, ...]

    def __post_init__(self) -> None:
        if not self.copies:
            raise PolicyError("a policy needs at least one copy")

    # -- constructors mirroring the paper's P values -------------------------

    @classmethod
    def none(cls) -> "ProcessPolicy":
        """No fault tolerance (k = 0 baselines)."""
        return cls((CopyPlan(0, 0),))

    @classmethod
    def re_execution(cls, k: int) -> "ProcessPolicy":
        """Pure re-execution: one copy, ``k`` recoveries, no χ."""
        return cls((CopyPlan(recoveries=k, checkpoints=0),))

    @classmethod
    def checkpointing(cls, k: int, checkpoints: int) -> "ProcessPolicy":
        """Rollback recovery with ``checkpoints`` equidistant checkpoints."""
        if checkpoints < 1:
            raise PolicyError("checkpointing needs at least one checkpoint")
        return cls((CopyPlan(recoveries=k, checkpoints=checkpoints),))

    @classmethod
    def replication(cls, k: int) -> "ProcessPolicy":
        """Active replication: ``k`` replicas, no recoveries (Fig. 4b)."""
        return cls(tuple(CopyPlan(0, 0) for _ in range(k + 1)))

    @classmethod
    def replication_and_checkpointing(
        cls, k: int, replicas: int, *, checkpoints: int = 0,
    ) -> "ProcessPolicy":
        """Combined policy (Fig. 4c): ``replicas`` extra copies with no
        recoveries plus one recovering copy covering the remaining
        ``k - replicas`` faults."""
        if not 0 < replicas < k:
            raise PolicyError(
                f"combined policy requires 0 < Q < k, got Q={replicas}, k={k}"
            )
        recovering = CopyPlan(recoveries=k - replicas, checkpoints=checkpoints)
        plain = tuple(CopyPlan(0, 0) for _ in range(replicas))
        return cls((recovering,) + plain)

    # -- paper accessors ------------------------------------------------------

    @property
    def kind(self) -> PolicyKind:
        """The ``P`` function value."""
        if len(self.copies) == 1:
            if self.copies[0].recoveries == 0:
                return PolicyKind.NONE
            return PolicyKind.CHECKPOINTING
        if any(c.recoveries > 0 for c in self.copies):
            return PolicyKind.REPLICATION_AND_CHECKPOINTING
        return PolicyKind.REPLICATION

    @property
    def replica_count(self) -> int:
        """The ``Q`` function value (copies minus the original)."""
        return len(self.copies) - 1

    def recoveries_of(self, copy: int) -> int:
        """The ``R`` function value for one copy."""
        return self.copies[copy].recoveries

    def checkpoints_of(self, copy: int) -> int:
        """The ``X`` function value for one copy."""
        return self.copies[copy].checkpoints

    @property
    def tolerated_faults(self) -> int:
        """Max faults guaranteed survived: ``sum_j (R_j + 1) - 1``.

        An adversary must spend ``R_j + 1`` faults to kill copy ``j``;
        with this many faults or fewer, at least one copy completes.
        """
        return sum(c.recoveries + 1 for c in self.copies) - 1

    def tolerates(self, k: int) -> bool:
        """True when the policy survives any ``k`` faults."""
        return self.tolerated_faults >= k

    def with_copy(self, copy: int, plan: CopyPlan) -> "ProcessPolicy":
        """Copy of this policy with one copy plan replaced."""
        plans = list(self.copies)
        plans[copy] = plan
        return ProcessPolicy(tuple(plans))


class PolicyAssignment:
    """The complete ``F = <P, Q, R, X>`` over an application."""

    def __init__(self, policies: Mapping[str, ProcessPolicy]) -> None:
        self._policies = dict(policies)

    @classmethod
    def uniform(cls, app: Application, policy: ProcessPolicy,
                ) -> "PolicyAssignment":
        """Assign the same policy to every process."""
        return cls({name: policy for name in app.process_names})

    @classmethod
    def build(cls, app: Application, default: ProcessPolicy,
              overrides: Mapping[str, ProcessPolicy] | None = None,
              ) -> "PolicyAssignment":
        """Default policy everywhere, with per-process overrides."""
        policies = {name: default for name in app.process_names}
        for name, policy in (overrides or {}).items():
            if name not in policies:
                raise PolicyError(f"override for unknown process {name!r}")
            policies[name] = policy
        return cls(policies)

    def of(self, process: str) -> ProcessPolicy:
        """Policy of one process."""
        try:
            return self._policies[process]
        except KeyError:
            raise PolicyError(f"no policy assigned to {process!r}") from None

    def __contains__(self, process: str) -> bool:
        return process in self._policies

    def items(self) -> Iterable[tuple[str, ProcessPolicy]]:
        """(process, policy) pairs in assignment order."""
        return self._policies.items()

    def replaced(self, process: str, policy: ProcessPolicy,
                 ) -> "PolicyAssignment":
        """A new assignment with one process's policy replaced."""
        if process not in self._policies:
            raise PolicyError(f"no policy assigned to {process!r}")
        updated = dict(self._policies)
        updated[process] = policy
        return PolicyAssignment(updated)

    def validate(self, app: Application, k: int) -> None:
        """Check coverage and the k-fault-tolerance condition."""
        for name in app.process_names:
            if name not in self._policies:
                raise PolicyError(f"process {name!r} has no policy")
            policy = self._policies[name]
            if k > 0 and not policy.tolerates(k):
                raise PolicyError(
                    f"policy of {name!r} tolerates only "
                    f"{policy.tolerated_faults} faults, need {k} "
                    f"(sum of (R_j + 1) must be >= k + 1)"
                )
        extra = set(self._policies) - set(app.process_names)
        if extra:
            raise PolicyError(
                f"policies assigned to unknown processes {sorted(extra)}"
            )

    def copy_count(self, process: str) -> int:
        """Number of placed copies of a process."""
        return len(self.of(process).copies)

    def total_copies(self) -> int:
        """Total copies over all processes (sizing the copy graph)."""
        return sum(len(p.copies) for p in self._policies.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolicyAssignment({len(self._policies)} processes)"
