"""Single source of the package version.

The truth lives in ``pyproject.toml``. An installed distribution
carries it as importlib metadata; a plain source checkout (the
``PYTHONPATH=src`` workflow) reads the pyproject file directly, so
``repro --version`` and ``repro.__version__`` agree with the
packaging metadata in both setups instead of drifting like a
hand-maintained constant would.
"""

from __future__ import annotations

from pathlib import Path

#: The distribution name in pyproject.toml ([project] name).
DIST_NAME = "repro-ftes"

#: Last resort when neither metadata nor pyproject.toml is reachable
#: (e.g. a vendored source tree stripped of packaging files).
FALLBACK_VERSION = "0.0.0+unknown"


def detect_version() -> str:
    """The installed metadata version, else pyproject.toml's, else a
    sentinel."""
    from importlib import metadata

    try:
        return metadata.version(DIST_NAME)
    except metadata.PackageNotFoundError:
        pass
    import tomllib

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        return str(data["project"]["version"])
    except (OSError, KeyError, TypeError, tomllib.TOMLDecodeError):
        return FALLBACK_VERSION


__version__ = detect_version()
