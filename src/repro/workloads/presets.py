"""The paper's hand-drawn examples (Figures 1–6) and a realistic case
study.

All numbers that the paper states explicitly are used verbatim; where
the paper's figures are ambiguous (the DATE format omits some WCETs and
the exact application of Fig. 5a), the reconstruction documented in
DESIGN.md / EXPERIMENTS.md is used, chosen to be consistent with every
activation time visible in the paper's Fig. 6 schedule tables.
"""

from __future__ import annotations

from repro.model.application import Application
from repro.model.architecture import Architecture, BusSpec, Node
from repro.model.fault_model import FaultModel
from repro.model.message import Message
from repro.model.process import Process
from repro.model.transparency import Transparency
from repro.policies.types import CopyPlan
from repro.schedule.mapping import CopyMapping


def fig1_process() -> tuple[Process, CopyPlan]:
    """Paper Fig. 1: P1 with C=60, α=10, μ=10, χ=5, two checkpoints.

    Fault-free duration 90; with the single fault of Fig. 1c the worst
    case is 130 (α skipped in the last recovery).
    """
    process = Process("P1", {"N1": 60.0}, alpha=10.0, mu=10.0, chi=5.0)
    return process, CopyPlan(recoveries=1, checkpoints=2)


def fig3_example() -> tuple[Application, Architecture]:
    """Paper Fig. 3: five processes on two nodes with the printed WCET
    table (P3 restricted to N1).

    The figure's edge drawing is partly illegible in the DATE layout;
    the reconstruction uses the natural fork/join reading
    P1→{P2,P3}, P2→P4, P3→P5.
    """
    processes = [
        Process("P1", {"N1": 20.0, "N2": 30.0}),
        Process("P2", {"N1": 40.0, "N2": 60.0}),
        Process("P3", {"N1": 60.0}),  # "X" on N2
        Process("P4", {"N1": 40.0, "N2": 60.0}),
        Process("P5", {"N1": 40.0, "N2": 60.0}),
    ]
    messages = [
        Message("m1", "P1", "P2", size_bytes=8),
        Message("m2", "P1", "P3", size_bytes=8),
        Message("m3", "P2", "P4", size_bytes=8),
        Message("m4", "P3", "P5", size_bytes=8),
    ]
    app = Application(processes, messages, deadline=400.0,
                      name="paper-fig3")
    arch = Architecture(
        [Node("N1"), Node("N2")],
        BusSpec(slot_order=("N1", "N2"), slot_length=2.0),
        name="paper-fig3-arch",
    )
    return app, arch


def fig5_example() -> tuple[Application, Architecture, FaultModel,
                            Transparency, CopyMapping]:
    """Paper Fig. 5/6: four processes, k = 2, frozen {P3, m2, m3}.

    Reconstruction (consistent with every start time in Fig. 6):
    P1, P2 on N1; P3, P4 on N2; P1→P2 locally, P1→P4 via m1,
    P1→P3 via m2 (frozen), P2→P3 via m3 (frozen);
    C1=30, C2=20, C3=20, C4=30, μ=5, α=χ=0.
    The FT-CPG of this instance reproduces Fig. 5b's structure exactly:
    3 copies of P1, 6 of P2, 6 of P4, 3 of the frozen P3, and three
    synchronization nodes.
    """
    processes = [
        Process("P1", {"N1": 30.0, "N2": 30.0}, mu=5.0),
        Process("P2", {"N1": 20.0, "N2": 20.0}, mu=5.0),
        Process("P3", {"N1": 20.0, "N2": 20.0}, mu=5.0),
        Process("P4", {"N1": 30.0, "N2": 30.0}, mu=5.0),
    ]
    messages = [
        Message("m0", "P1", "P2", size_bytes=4),
        Message("m1", "P1", "P4", size_bytes=4),
        Message("m2", "P1", "P3", size_bytes=4),
        Message("m3", "P2", "P3", size_bytes=4),
    ]
    app = Application(processes, messages, deadline=300.0,
                      name="paper-fig5")
    arch = Architecture(
        [Node("N1"), Node("N2")],
        BusSpec(slot_order=("N1", "N2"), slot_length=2.0),
        name="paper-fig5-arch",
    )
    fault_model = FaultModel(k=2)
    transparency = Transparency(frozen_processes=("P3",),
                                frozen_messages=("m2", "m3"))
    process_map = {"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"}
    mapping = CopyMapping({(name, 0): node
                           for name, node in process_map.items()})
    return app, arch, fault_model, transparency, mapping


def brake_by_wire() -> tuple[Application, Architecture, Transparency]:
    """A brake-by-wire application on a 4-node TTP cluster — the
    safety-critical X-by-wire setting that motivates this research
    line (a TTP-based fault-tolerant platform, hard deadlines, sensors
    and actuators bound to their nodes).

    14 processes: pedal acquisition (duplicated sensors), pedal
    voting/plausibility, vehicle-dynamics input, brake-force
    computation, per-wheel force distribution and four wheel actuator
    commands, plus a monitor. The actuator commands are marked frozen
    (their release to the wheel nodes must be identical in every fault
    scenario — actuation jitter is itself a safety hazard), as is the
    global brake-force message.
    """
    def proc(name: str, base: float, *, fixed: str | None = None,
             ) -> Process:
        wcet = {n: round(base * f, 1)
                for n, f in zip(("N1", "N2", "N3", "N4"),
                                (1.0, 0.95, 1.05, 1.0))}
        return Process(name, wcet, alpha=base * 0.04, mu=base * 0.06,
                       chi=base * 0.04, fixed_node=fixed)

    processes = [
        proc("pedal_a", 8, fixed="N1"),
        proc("pedal_b", 8, fixed="N1"),
        proc("pedal_vote", 10),
        proc("dynamics_in", 12, fixed="N2"),
        proc("brake_force", 24),
        proc("distribute", 16),
        proc("wheel_fl_cmd", 9, fixed="N3"),
        proc("wheel_fr_cmd", 9, fixed="N3"),
        proc("wheel_rl_cmd", 9, fixed="N4"),
        proc("wheel_rr_cmd", 9, fixed="N4"),
        proc("abs_check", 14),
        proc("monitor", 8),
        proc("log_brake", 6),
        proc("hmi_lamp", 5),
    ]
    edges = [
        ("pedal_a", "pedal_vote"), ("pedal_b", "pedal_vote"),
        ("pedal_vote", "brake_force"), ("dynamics_in", "brake_force"),
        ("brake_force", "distribute"), ("dynamics_in", "abs_check"),
        ("abs_check", "distribute"),
        ("distribute", "wheel_fl_cmd"), ("distribute", "wheel_fr_cmd"),
        ("distribute", "wheel_rl_cmd"), ("distribute", "wheel_rr_cmd"),
        ("brake_force", "monitor"), ("monitor", "log_brake"),
        ("monitor", "hmi_lamp"),
    ]
    messages = [
        Message(f"m_{src}_{dst}", src, dst, size_bytes=6)
        for src, dst in edges
    ]
    app = Application(processes, messages, deadline=420.0,
                      name="brake-by-wire")
    arch = Architecture(
        [Node("N1"), Node("N2"), Node("N3"), Node("N4")],
        BusSpec(slot_order=("N1", "N2", "N3", "N4"), slot_length=1.0),
        name="bbw-arch",
    )
    transparency = Transparency(
        frozen_processes=("wheel_fl_cmd", "wheel_fr_cmd",
                          "wheel_rl_cmd", "wheel_rr_cmd"),
        frozen_messages=("m_brake_force_distribute",),
    )
    return app, arch, transparency


def cruise_controller() -> tuple[Application, Architecture]:
    """An adaptive cruise controller in the style of the case studies
    used throughout this research line (sensing → fusion → control →
    actuation plus diagnostics and HMI), 24 processes on 3 nodes.

    WCETs are in microseconds-scale abstract units; N1 hosts the
    sensor interfaces, N3 the actuators (fixed mappings), the rest is
    free for optimization.
    """
    def proc(name: str, base: float, *, fixed: str | None = None,
             only: tuple[str, ...] | None = None) -> Process:
        nodes = only or ("N1", "N2", "N3")
        wcet = {n: round(base * f, 1)
                for n, f in zip(nodes, (1.0, 0.9, 1.1))}
        return Process(name, wcet, alpha=base * 0.05, mu=base * 0.05,
                       chi=base * 0.04, fixed_node=fixed)

    processes = [
        proc("wheel_fl", 12, fixed="N1"),
        proc("wheel_fr", 12, fixed="N1"),
        proc("wheel_rl", 12, fixed="N1"),
        proc("wheel_rr", 12, fixed="N1"),
        proc("radar_acq", 30, fixed="N1"),
        proc("yaw_acq", 16, fixed="N1"),
        proc("driver_buttons", 8, fixed="N1"),
        proc("speed_filter", 20),
        proc("radar_filter", 34),
        proc("yaw_filter", 18),
        proc("target_tracker", 40),
        proc("speed_fusion", 26),
        proc("mode_logic", 14),
        proc("distance_ctrl", 38),
        proc("speed_ctrl", 32),
        proc("arbiter", 18),
        proc("traction_check", 22),
        proc("throttle_cmd", 16, fixed="N3"),
        proc("brake_cmd", 16, fixed="N3"),
        proc("gear_hint", 12, fixed="N3"),
        proc("diag_monitor", 24),
        proc("dash_update", 14),
        proc("event_logger", 10),
        proc("watchdog", 6),
    ]
    edges = [
        ("wheel_fl", "speed_filter"), ("wheel_fr", "speed_filter"),
        ("wheel_rl", "speed_filter"), ("wheel_rr", "speed_filter"),
        ("radar_acq", "radar_filter"), ("yaw_acq", "yaw_filter"),
        ("speed_filter", "speed_fusion"), ("yaw_filter", "speed_fusion"),
        ("radar_filter", "target_tracker"),
        ("speed_fusion", "target_tracker"),
        ("driver_buttons", "mode_logic"), ("speed_fusion", "mode_logic"),
        ("target_tracker", "distance_ctrl"),
        ("mode_logic", "distance_ctrl"),
        ("speed_fusion", "speed_ctrl"), ("mode_logic", "speed_ctrl"),
        ("distance_ctrl", "arbiter"), ("speed_ctrl", "arbiter"),
        ("speed_fusion", "traction_check"),
        ("arbiter", "throttle_cmd"), ("arbiter", "brake_cmd"),
        ("traction_check", "brake_cmd"), ("arbiter", "gear_hint"),
        ("speed_fusion", "diag_monitor"), ("radar_filter", "diag_monitor"),
        ("mode_logic", "dash_update"), ("arbiter", "dash_update"),
        ("diag_monitor", "event_logger"), ("diag_monitor", "watchdog"),
    ]
    messages = [
        Message(f"m_{src}_{dst}", src, dst, size_bytes=8)
        for src, dst in edges
    ]
    app = Application(processes, messages, deadline=900.0,
                      name="cruise-controller")
    arch = Architecture(
        [Node("N1"), Node("N2"), Node("N3")],
        BusSpec(slot_order=("N1", "N2", "N3"), slot_length=1.0),
        name="cc-arch",
    )
    return app, arch
