"""The paper's hand-drawn examples (Figures 1–6), realistic case
studies, and structurally extreme families for fault-injection
campaigns (:func:`deep_chain`, :func:`wide_fork_join`,
:func:`bursty_heterogeneous`).

All numbers that the paper states explicitly are used verbatim; where
the paper's figures are ambiguous (the DATE format omits some WCETs and
the exact application of Fig. 5a), the reconstruction documented in
DESIGN.md / EXPERIMENTS.md is used, chosen to be consistent with every
activation time visible in the paper's Fig. 6 schedule tables.
"""

from __future__ import annotations

from repro.model.application import Application
from repro.model.architecture import Architecture, BusSpec, Node
from repro.model.fault_model import FaultModel
from repro.model.message import Message
from repro.model.process import Process
from repro.model.transparency import Transparency
from repro.policies.types import CopyPlan
from repro.schedule.mapping import CopyMapping
from repro.utils.rng import DeterministicRng


def fig1_process() -> tuple[Process, CopyPlan]:
    """Paper Fig. 1: P1 with C=60, α=10, μ=10, χ=5, two checkpoints.

    Fault-free duration 90; with the single fault of Fig. 1c the worst
    case is 130 (α skipped in the last recovery).
    """
    process = Process("P1", {"N1": 60.0}, alpha=10.0, mu=10.0, chi=5.0)
    return process, CopyPlan(recoveries=1, checkpoints=2)


def fig3_example() -> tuple[Application, Architecture]:
    """Paper Fig. 3: five processes on two nodes with the printed WCET
    table (P3 restricted to N1).

    The figure's edge drawing is partly illegible in the DATE layout;
    the reconstruction uses the natural fork/join reading
    P1→{P2,P3}, P2→P4, P3→P5.
    """
    processes = [
        Process("P1", {"N1": 20.0, "N2": 30.0}),
        Process("P2", {"N1": 40.0, "N2": 60.0}),
        Process("P3", {"N1": 60.0}),  # "X" on N2
        Process("P4", {"N1": 40.0, "N2": 60.0}),
        Process("P5", {"N1": 40.0, "N2": 60.0}),
    ]
    messages = [
        Message("m1", "P1", "P2", size_bytes=8),
        Message("m2", "P1", "P3", size_bytes=8),
        Message("m3", "P2", "P4", size_bytes=8),
        Message("m4", "P3", "P5", size_bytes=8),
    ]
    app = Application(processes, messages, deadline=400.0,
                      name="paper-fig3")
    arch = Architecture(
        [Node("N1"), Node("N2")],
        BusSpec(slot_order=("N1", "N2"), slot_length=2.0),
        name="paper-fig3-arch",
    )
    return app, arch


def fig5_example() -> tuple[Application, Architecture, FaultModel,
                            Transparency, CopyMapping]:
    """Paper Fig. 5/6: four processes, k = 2, frozen {P3, m2, m3}.

    Reconstruction (consistent with every start time in Fig. 6):
    P1, P2 on N1; P3, P4 on N2; P1→P2 locally, P1→P4 via m1,
    P1→P3 via m2 (frozen), P2→P3 via m3 (frozen);
    C1=30, C2=20, C3=20, C4=30, μ=5, α=χ=0.
    The FT-CPG of this instance reproduces Fig. 5b's structure exactly:
    3 copies of P1, 6 of P2, 6 of P4, 3 of the frozen P3, and three
    synchronization nodes.
    """
    processes = [
        Process("P1", {"N1": 30.0, "N2": 30.0}, mu=5.0),
        Process("P2", {"N1": 20.0, "N2": 20.0}, mu=5.0),
        Process("P3", {"N1": 20.0, "N2": 20.0}, mu=5.0),
        Process("P4", {"N1": 30.0, "N2": 30.0}, mu=5.0),
    ]
    messages = [
        Message("m0", "P1", "P2", size_bytes=4),
        Message("m1", "P1", "P4", size_bytes=4),
        Message("m2", "P1", "P3", size_bytes=4),
        Message("m3", "P2", "P3", size_bytes=4),
    ]
    app = Application(processes, messages, deadline=300.0,
                      name="paper-fig5")
    arch = Architecture(
        [Node("N1"), Node("N2")],
        BusSpec(slot_order=("N1", "N2"), slot_length=2.0),
        name="paper-fig5-arch",
    )
    fault_model = FaultModel(k=2)
    transparency = Transparency(frozen_processes=("P3",),
                                frozen_messages=("m2", "m3"))
    process_map = {"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"}
    mapping = CopyMapping({(name, 0): node
                           for name, node in process_map.items()})
    return app, arch, fault_model, transparency, mapping


def brake_by_wire() -> tuple[Application, Architecture, Transparency]:
    """A brake-by-wire application on a 4-node TTP cluster — the
    safety-critical X-by-wire setting that motivates this research
    line (a TTP-based fault-tolerant platform, hard deadlines, sensors
    and actuators bound to their nodes).

    14 processes: pedal acquisition (duplicated sensors), pedal
    voting/plausibility, vehicle-dynamics input, brake-force
    computation, per-wheel force distribution and four wheel actuator
    commands, plus a monitor. The actuator commands are marked frozen
    (their release to the wheel nodes must be identical in every fault
    scenario — actuation jitter is itself a safety hazard), as is the
    global brake-force message.
    """
    def proc(name: str, base: float, *, fixed: str | None = None,
             ) -> Process:
        wcet = {n: round(base * f, 1)
                for n, f in zip(("N1", "N2", "N3", "N4"),
                                (1.0, 0.95, 1.05, 1.0))}
        return Process(name, wcet, alpha=base * 0.04, mu=base * 0.06,
                       chi=base * 0.04, fixed_node=fixed)

    processes = [
        proc("pedal_a", 8, fixed="N1"),
        proc("pedal_b", 8, fixed="N1"),
        proc("pedal_vote", 10),
        proc("dynamics_in", 12, fixed="N2"),
        proc("brake_force", 24),
        proc("distribute", 16),
        proc("wheel_fl_cmd", 9, fixed="N3"),
        proc("wheel_fr_cmd", 9, fixed="N3"),
        proc("wheel_rl_cmd", 9, fixed="N4"),
        proc("wheel_rr_cmd", 9, fixed="N4"),
        proc("abs_check", 14),
        proc("monitor", 8),
        proc("log_brake", 6),
        proc("hmi_lamp", 5),
    ]
    edges = [
        ("pedal_a", "pedal_vote"), ("pedal_b", "pedal_vote"),
        ("pedal_vote", "brake_force"), ("dynamics_in", "brake_force"),
        ("brake_force", "distribute"), ("dynamics_in", "abs_check"),
        ("abs_check", "distribute"),
        ("distribute", "wheel_fl_cmd"), ("distribute", "wheel_fr_cmd"),
        ("distribute", "wheel_rl_cmd"), ("distribute", "wheel_rr_cmd"),
        ("brake_force", "monitor"), ("monitor", "log_brake"),
        ("monitor", "hmi_lamp"),
    ]
    messages = [
        Message(f"m_{src}_{dst}", src, dst, size_bytes=6)
        for src, dst in edges
    ]
    app = Application(processes, messages, deadline=420.0,
                      name="brake-by-wire")
    arch = Architecture(
        [Node("N1"), Node("N2"), Node("N3"), Node("N4")],
        BusSpec(slot_order=("N1", "N2", "N3", "N4"), slot_length=1.0),
        name="bbw-arch",
    )
    transparency = Transparency(
        frozen_processes=("wheel_fl_cmd", "wheel_fr_cmd",
                          "wheel_rl_cmd", "wheel_rr_cmd"),
        frozen_messages=("m_brake_force_distribute",),
    )
    return app, arch, transparency


def deep_chain(length: int = 10, nodes: int = 2, *, seed: int = 1,
               ) -> tuple[Application, Architecture]:
    """A deep pipeline: ``length`` processes in one dependency chain.

    The structural opposite of the layered generator output — zero
    parallelism, so every recovery slack sits on the critical path and
    fault-injection campaigns observe the *serial* worst case: each
    additional fault pushes the finish by a full recovery. WCETs vary
    moderately (deterministically from ``seed``) so mapping still
    matters across the ``nodes`` TTP nodes.
    """
    if length < 2:
        raise ValueError(f"chain needs >= 2 processes, got {length}")
    rng = DeterministicRng(seed)
    node_names = tuple(f"N{i + 1}" for i in range(nodes))
    processes = []
    total_base = 0.0
    for index in range(length):
        base = round(rng.uniform(15.0, 45.0), 1)
        total_base += base
        wcet = {n: round(base * rng.uniform(0.9, 1.1), 1)
                for n in node_names}
        processes.append(Process(f"C{index + 1}", wcet,
                                 alpha=round(base * 0.05, 2),
                                 mu=round(base * 0.05, 2),
                                 chi=round(base * 0.05, 2)))
    messages = [
        Message(f"m{i + 1}", f"C{i + 1}", f"C{i + 2}", size_bytes=8)
        for i in range(length - 1)
    ]
    # The whole chain is the critical path; 4x leaves room for the
    # recovery slack of several faults without deadline pressure.
    app = Application(processes, messages, deadline=round(total_base * 4, 1),
                      name=f"deep-chain-{length}")
    arch = Architecture(
        [Node(n) for n in node_names],
        BusSpec(slot_order=node_names, slot_length=1.0),
        name=f"chain-arch-{nodes}n",
    )
    return app, arch


def wide_fork_join(width: int = 6, nodes: int = 3, *, seed: int = 2,
                   ) -> tuple[Application, Architecture]:
    """A source fanning out to ``width`` parallel workers and joining.

    Maximum parallelism between two synchronization points: the join
    waits for *every* worker, so a fault on any one of them moves the
    sink — the sharing of recovery slack across co-located workers
    (the core of the estimation model) is exactly what campaigns on
    this family stress.
    """
    if width < 2:
        raise ValueError(f"fork-join needs width >= 2, got {width}")
    rng = DeterministicRng(seed)
    node_names = tuple(f"N{i + 1}" for i in range(nodes))

    def proc(name: str, base: float) -> Process:
        wcet = {n: round(base * rng.uniform(0.85, 1.15), 1)
                for n in node_names}
        return Process(name, wcet, alpha=round(base * 0.04, 2),
                       mu=round(base * 0.06, 2),
                       chi=round(base * 0.04, 2))

    workers = [proc(f"W{i + 1}", round(rng.uniform(20.0, 50.0), 1))
               for i in range(width)]
    source = proc("fork", 12.0)
    sink = proc("join", 14.0)
    processes = [source, *workers, sink]
    messages = [Message(f"m_out{i + 1}", "fork", w.name, size_bytes=8)
                for i, w in enumerate(workers)]
    messages += [Message(f"m_in{i + 1}", w.name, "join", size_bytes=8)
                 for i, w in enumerate(workers)]
    mean_wcet = sum(sum(p.wcet.values()) / len(p.wcet)
                    for p in processes) / len(processes)
    deadline = round(6 * mean_wcet * (2 + width / nodes), 1)
    app = Application(processes, messages, deadline=deadline,
                      name=f"fork-join-{width}w")
    arch = Architecture(
        [Node(n) for n in node_names],
        BusSpec(slot_order=node_names, slot_length=1.0),
        name=f"forkjoin-arch-{nodes}n",
    )
    return app, arch


def bursty_heterogeneous(bursts: int = 3, burst_width: int = 3, *,
                         nodes: int = 3, seed: int = 7,
                         ) -> tuple[Application, Architecture]:
    """Bursts of short tasks funneled through heavy aggregators.

    ``bursts`` alternating stages: a wide layer of light processes
    (the burst) followed by one heavy aggregator consuming all of
    them. WCETs are strongly heterogeneous across nodes (up to 2x,
    deterministically from ``seed``), so the mapping choice dominates
    and the fault behaviour differs sharply between light and heavy
    processes — the mixed regime the uniform generator never
    produces.
    """
    if bursts < 1 or burst_width < 2:
        raise ValueError(
            f"need bursts >= 1 and burst_width >= 2, got "
            f"{bursts}x{burst_width}")
    rng = DeterministicRng(seed)
    node_names = tuple(f"N{i + 1}" for i in range(nodes))

    def proc(name: str, base: float) -> Process:
        # Strong heterogeneity: per-node factors in [0.6, 1.8].
        wcet = {n: round(base * rng.uniform(0.6, 1.8), 1)
                for n in node_names}
        return Process(name, wcet, alpha=round(base * 0.05, 2),
                       mu=round(base * 0.05, 2),
                       chi=round(base * 0.05, 2))

    processes: list[Process] = []
    messages: list[Message] = []
    previous_aggregator: str | None = None
    for burst in range(1, bursts + 1):
        light = [proc(f"B{burst}_{i + 1}",
                      round(rng.uniform(4.0, 10.0), 1))
                 for i in range(burst_width)]
        heavy = proc(f"A{burst}", round(rng.uniform(40.0, 70.0), 1))
        processes += [*light, heavy]
        for task in light:
            if previous_aggregator is not None:
                messages.append(Message(
                    f"m_{previous_aggregator}_{task.name}",
                    previous_aggregator, task.name, size_bytes=4))
            messages.append(Message(f"m_{task.name}_{heavy.name}",
                                    task.name, heavy.name,
                                    size_bytes=4))
        previous_aggregator = heavy.name
    mean_wcet = sum(sum(p.wcet.values()) / len(p.wcet)
                    for p in processes) / len(processes)
    deadline = round(6 * mean_wcet * bursts * 2, 1)
    app = Application(processes, messages, deadline=deadline,
                      name=f"bursty-{bursts}x{burst_width}")
    arch = Architecture(
        [Node(n) for n in node_names],
        BusSpec(slot_order=node_names, slot_length=1.0),
        name=f"bursty-arch-{nodes}n",
    )
    return app, arch


def cruise_controller() -> tuple[Application, Architecture]:
    """An adaptive cruise controller in the style of the case studies
    used throughout this research line (sensing → fusion → control →
    actuation plus diagnostics and HMI), 24 processes on 3 nodes.

    WCETs are in microseconds-scale abstract units; N1 hosts the
    sensor interfaces, N3 the actuators (fixed mappings), the rest is
    free for optimization.
    """
    def proc(name: str, base: float, *, fixed: str | None = None,
             only: tuple[str, ...] | None = None) -> Process:
        nodes = only or ("N1", "N2", "N3")
        wcet = {n: round(base * f, 1)
                for n, f in zip(nodes, (1.0, 0.9, 1.1))}
        return Process(name, wcet, alpha=base * 0.05, mu=base * 0.05,
                       chi=base * 0.04, fixed_node=fixed)

    processes = [
        proc("wheel_fl", 12, fixed="N1"),
        proc("wheel_fr", 12, fixed="N1"),
        proc("wheel_rl", 12, fixed="N1"),
        proc("wheel_rr", 12, fixed="N1"),
        proc("radar_acq", 30, fixed="N1"),
        proc("yaw_acq", 16, fixed="N1"),
        proc("driver_buttons", 8, fixed="N1"),
        proc("speed_filter", 20),
        proc("radar_filter", 34),
        proc("yaw_filter", 18),
        proc("target_tracker", 40),
        proc("speed_fusion", 26),
        proc("mode_logic", 14),
        proc("distance_ctrl", 38),
        proc("speed_ctrl", 32),
        proc("arbiter", 18),
        proc("traction_check", 22),
        proc("throttle_cmd", 16, fixed="N3"),
        proc("brake_cmd", 16, fixed="N3"),
        proc("gear_hint", 12, fixed="N3"),
        proc("diag_monitor", 24),
        proc("dash_update", 14),
        proc("event_logger", 10),
        proc("watchdog", 6),
    ]
    edges = [
        ("wheel_fl", "speed_filter"), ("wheel_fr", "speed_filter"),
        ("wheel_rl", "speed_filter"), ("wheel_rr", "speed_filter"),
        ("radar_acq", "radar_filter"), ("yaw_acq", "yaw_filter"),
        ("speed_filter", "speed_fusion"), ("yaw_filter", "speed_fusion"),
        ("radar_filter", "target_tracker"),
        ("speed_fusion", "target_tracker"),
        ("driver_buttons", "mode_logic"), ("speed_fusion", "mode_logic"),
        ("target_tracker", "distance_ctrl"),
        ("mode_logic", "distance_ctrl"),
        ("speed_fusion", "speed_ctrl"), ("mode_logic", "speed_ctrl"),
        ("distance_ctrl", "arbiter"), ("speed_ctrl", "arbiter"),
        ("speed_fusion", "traction_check"),
        ("arbiter", "throttle_cmd"), ("arbiter", "brake_cmd"),
        ("traction_check", "brake_cmd"), ("arbiter", "gear_hint"),
        ("speed_fusion", "diag_monitor"), ("radar_filter", "diag_monitor"),
        ("mode_logic", "dash_update"), ("arbiter", "dash_update"),
        ("diag_monitor", "event_logger"), ("diag_monitor", "watchdog"),
    ]
    messages = [
        Message(f"m_{src}_{dst}", src, dst, size_bytes=8)
        for src, dst in edges
    ]
    app = Application(processes, messages, deadline=900.0,
                      name="cruise-controller")
    arch = Architecture(
        [Node("N1"), Node("N2"), Node("N3")],
        BusSpec(slot_order=("N1", "N2", "N3"), slot_length=1.0),
        name="cc-arch",
    )
    return app, arch


#: Name -> loader for every preset that returns a plain
#: ``(Application, Architecture)`` pair — the single source of truth
#: shared by the CLI workload dispatch and the campaign runner, so the
#: two can never disagree on which presets exist. ``fig5`` (which also
#: returns a fault model, transparency and a fixed mapping) and
#: ``brake_by_wire`` (which returns a transparency) are dispatched
#: specially by their callers and stay out of this table.
SIMPLE_PRESETS = {
    "fig3": fig3_example,
    "cruise": cruise_controller,
    "chain": deep_chain,
    "forkjoin": wide_fork_join,
    "bursty": bursty_heterogeneous,
}
