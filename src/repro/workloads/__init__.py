"""Workloads: synthetic task graphs and the paper's examples.

* :mod:`repro.workloads.generator` — TGFF-style layered random DAGs
  with the size/connectivity/overhead ranges of the paper's
  experiments (20–100 processes, 2–6 nodes, k = 3–7);
* :mod:`repro.workloads.presets` — the hand-drawn examples of the
  paper's Figures 1–6 and an automotive cruise-controller case study
  in the style the authors use throughout this research line.
"""

from repro.workloads.generator import GeneratorConfig, generate_workload
from repro.workloads.presets import (
    SIMPLE_PRESETS,
    brake_by_wire,
    bursty_heterogeneous,
    cruise_controller,
    deep_chain,
    fig1_process,
    fig3_example,
    fig5_example,
    wide_fork_join,
)

__all__ = [
    "GeneratorConfig",
    "SIMPLE_PRESETS",
    "brake_by_wire",
    "bursty_heterogeneous",
    "cruise_controller",
    "deep_chain",
    "fig1_process",
    "fig3_example",
    "fig5_example",
    "generate_workload",
    "wide_fork_join",
]
