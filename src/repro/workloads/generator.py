"""TGFF-style synthetic workload generation.

The paper's experiments (§6) use randomly generated applications of
20–100 processes on architectures of 2–6 nodes. The authors' generator
is not public; this one reproduces the *statistical shape* that
matters for the comparisons:

* layered DAGs (series-parallel-ish) with bounded fan-in, every
  non-source process consuming 1..``max_in`` messages from earlier
  layers (locality-biased, so critical paths exist);
* per-process base WCETs uniform in a range, with bounded per-node
  heterogeneity (each node runs a process within ±``hetero`` of its
  base — mapping matters but no node dominates);
* detection/recovery/checkpointing overheads as small fractions of the
  base WCET, following the regimes used across [13]/[15] (overheads of
  a few percent of the computation time);
* a generous global deadline (the Fig. 7/8 metrics measure schedule
  *length*, not deadline stress).

Everything is derived deterministically from one integer seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.message import Message
from repro.model.process import Process
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic workload generator."""

    processes: int = 40
    nodes: int = 4
    seed: int = 1
    wcet_range: tuple[float, float] = (10.0, 100.0)
    hetero: float = 0.25
    layer_width: int = 6
    max_in: int = 3
    message_bytes: tuple[int, int] = (4, 24)
    alpha_fraction: float = 0.05
    mu_fraction: float = 0.05
    chi_fraction: float = 0.05
    slot_length: float = 1.0
    slot_payload_bytes: int = 32
    deadline_slack: float = 6.0

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValidationError("need at least one process")
        if self.nodes < 1:
            raise ValidationError("need at least one node")
        if self.wcet_range[0] <= 0 or self.wcet_range[1] < self.wcet_range[0]:
            raise ValidationError(f"bad wcet_range {self.wcet_range}")
        if not 0 <= self.hetero < 1:
            raise ValidationError("hetero must be in [0, 1)")
        if self.layer_width < 1 or self.max_in < 1:
            raise ValidationError("layer_width and max_in must be >= 1")
        for label, fraction in (("alpha_fraction", self.alpha_fraction),
                                ("mu_fraction", self.mu_fraction),
                                ("chi_fraction", self.chi_fraction)):
            if fraction < 0:
                raise ValidationError(
                    f"{label} must be >= 0, got {fraction}")
        low, high = self.message_bytes
        if low < 1 or high < low:
            raise ValidationError(
                f"bad message_bytes {self.message_bytes}: need "
                "1 <= min <= max")
        if self.deadline_slack <= 0:
            raise ValidationError(
                f"deadline_slack must be positive, got "
                f"{self.deadline_slack}")
        if self.slot_length <= 0:
            raise ValidationError(
                f"slot_length must be positive, got {self.slot_length}")
        if self.slot_payload_bytes < 1:
            raise ValidationError(
                f"slot_payload_bytes must be >= 1, got "
                f"{self.slot_payload_bytes}")


def generate_workload(config: GeneratorConfig,
                      ) -> tuple[Application, Architecture]:
    """Generate one (application, architecture) pair."""
    rng = DeterministicRng(config.seed)
    arch = Architecture.homogeneous(
        config.nodes,
        slot_length=config.slot_length,
        slot_payload_bytes=config.slot_payload_bytes,
    )
    node_names = arch.node_names

    # -- layered structure ----------------------------------------------------
    structure_rng = rng.substream("structure")
    layers: list[list[str]] = []
    remaining = config.processes
    index = 1
    while remaining > 0:
        width = min(remaining,
                    structure_rng.randint(1, config.layer_width))
        layers.append([f"P{index + i}" for i in range(width)])
        index += width
        remaining -= width

    # -- WCETs and overheads ----------------------------------------------------
    wcet_rng = rng.substream("wcet")
    processes: list[Process] = []
    for layer in layers:
        for name in layer:
            base = wcet_rng.uniform(*config.wcet_range)
            wcet = {
                node: round(base * wcet_rng.uniform(1 - config.hetero,
                                                    1 + config.hetero), 3)
                for node in node_names
            }
            processes.append(Process(
                name=name,
                wcet=wcet,
                alpha=round(base * config.alpha_fraction, 3),
                mu=round(base * config.mu_fraction, 3),
                chi=round(base * config.chi_fraction, 3),
            ))

    # -- edges -------------------------------------------------------------------
    edge_rng = rng.substream("edges")
    messages: list[Message] = []
    message_index = 1
    for layer_index in range(1, len(layers)):
        earlier = [name for layer in layers[:layer_index] for name in layer]
        for name in layers[layer_index]:
            fan_in = edge_rng.randint(1, config.max_in)
            # Bias towards recent layers: sample from the last few
            # layers first so critical paths are realistically deep.
            recent = [n for layer in layers[max(0, layer_index - 2):
                                            layer_index] for n in layer]
            pool = recent if recent else earlier
            chosen: set[str] = set()
            for _ in range(fan_in):
                source_pool = pool if edge_rng.random() < 0.8 else earlier
                chosen.add(edge_rng.choice(source_pool))
            for src in sorted(chosen):
                messages.append(Message(
                    name=f"m{message_index}",
                    src=src,
                    dst=name,
                    size_bytes=edge_rng.randint(*config.message_bytes),
                ))
                message_index += 1

    deadline = _deadline_estimate(processes, layers, config)
    app = Application(
        processes,
        messages,
        deadline=deadline,
        name=f"synthetic-{config.processes}p-{config.nodes}n-s{config.seed}",
    )
    return app, arch


def _deadline_estimate(processes: list[Process], layers: list[list[str]],
                       config: GeneratorConfig) -> float:
    """A deadline loose enough that FTO (not deadline pressure) is the
    observable, as in the paper's experiments.

    Besides the critical-path and load bounds, the heaviest single
    process must anchor the scale: under ``k`` faults that process
    re-executes up to ``k + 1`` times *serially*, so a mean-based
    deadline is infeasible by construction on small instances with one
    dominant process (a 3-process workload with WCETs 15/24/91 used to
    get a deadline below 3x91 — no schedule could tolerate two faults
    on the heavy process).
    """
    mean_wcet = sum(
        sum(p.wcet.values()) / len(p.wcet) for p in processes
    ) / len(processes)
    max_wcet = max(max(p.wcet.values()) for p in processes)
    critical_path = len(layers) * mean_wcet
    load_bound = len(processes) * mean_wcet / config.nodes
    return config.deadline_slack * max(critical_path, load_bound,
                                       max_wcet)


def paper_experiment_config(processes: int, seed: int,
                            ) -> tuple[GeneratorConfig, int]:
    """Workload + fault budget for one Fig. 7 data point.

    The paper draws architectures of 2..6 nodes and fault budgets of
    3..7; both are derived deterministically from the seed here.
    """
    rng = DeterministicRng(seed * 1000 + processes)
    nodes = rng.randint(2, 6)
    k = rng.randint(3, 7)
    config = GeneratorConfig(
        processes=processes,
        nodes=nodes,
        seed=seed * 7919 + processes,
        layer_width=max(2, int(math.sqrt(processes))),
    )
    return config, k
