"""Expansion of an application + policy assignment into an FT-CPG
(paper §5.1).

The expansion walks the application in topological order. For every
process copy it enumerates the *entry contexts* — the distinct upstream
fault scenarios, expressed as guards, under which the copy's first
attempt may start — and unfolds the copy's own attempt tree under each
entry context:

* an attempt that can fail **and** recover (local faults < R, guard
  faults < k) is a *conditional* node: its no-fault edge continues to
  the next segment (or exits the copy), its fault edge leads to a
  retry of the same segment;
* an attempt that cannot fail (system budget exhausted) or whose
  failure kills the copy (no recoveries left — fail-silent replicas)
  is a *regular* node.

Frozen processes and messages become synchronization nodes, which
collapse the entry contexts of everything downstream — exactly why the
paper's Fig. 5b has six copies of the non-frozen ``P2``/``P4`` but only
three of the frozen ``P3``. This module reproduces those counts (see
``tests/test_ftcpg_builder.py``).

Semantic note: condition literals are identified by
``(process, copy, segment, attempt)`` — *without* the entry context.
Two FT-CPG nodes in disjoint upstream scenarios may share a literal;
any two table columns using it are still distinguished by the upstream
literals themselves, and the runtime meaning ("the j-th attempt of
this segment failed") is scenario-independent, which is what the
distributed scheduler and the fault injector key on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ContextExplosionError, PolicyError
from repro.ftcpg.conditions import AttemptId, ConditionLiteral, Guard
from repro.ftcpg.graph import Ftcpg, FtcpgEdge, FtcpgNode, NodeKind
from repro.model.application import Application
from repro.model.fault_model import FaultModel
from repro.model.transparency import Transparency
from repro.policies.types import PolicyAssignment

#: Hard cap on generated nodes; the FT-CPG is an analysis artifact for
#: small instances (the schedulers do not materialize it).
DEFAULT_MAX_NODES = 20_000


@dataclass(frozen=True)
class _Exit:
    """A success exit of a copy: the node delivering the outputs."""

    guard: Guard
    node_id: str
    copy: int


def build_ftcpg(
    app: Application,
    policies: PolicyAssignment,
    fault_model: FaultModel,
    transparency: Transparency | None = None,
    *,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> Ftcpg:
    """Build the FT-CPG of an application under a policy assignment."""
    transparency = transparency or Transparency.none()
    transparency.validate(app)
    policies.validate(app, fault_model.k)
    builder = _Builder(app, policies, fault_model.k, transparency, max_nodes)
    return builder.build()


class _Builder:
    def __init__(self, app: Application, policies: PolicyAssignment,
                 k: int, transparency: Transparency, max_nodes: int) -> None:
        self._app = app
        self._policies = policies
        self._k = k
        self._transparency = transparency
        self._max_nodes = max_nodes
        self._graph = Ftcpg()
        #: process name -> list of exits across all copies.
        self._exits: dict[str, list[_Exit]] = {}
        #: message name -> sync node id (for frozen messages).
        self._message_sync: dict[str, str] = {}

    # -- helpers -------------------------------------------------------------

    def _new_node(self, node: FtcpgNode) -> FtcpgNode:
        if len(self._graph.nodes) >= self._max_nodes:
            raise ContextExplosionError(
                f"FT-CPG exceeded {self._max_nodes} nodes; reduce k or "
                "application size (the schedulers do not need this graph)"
            )
        return self._graph.add_node(node)

    def _delivery_alternatives(self, process: str) -> list[list[_Exit]]:
        """Alternative delivery scenarios of one producer process.

        Returns a list of alternatives; each alternative is the list of
        exits (one per copy) that are simultaneously live under the
        alternative's combined guard. Copies without conditional
        behaviour have a single exit and do not multiply alternatives.
        """
        exits = self._exits[process]
        per_copy: dict[int, list[_Exit]] = {}
        for exit_ in exits:
            per_copy.setdefault(exit_.copy, []).append(exit_)
        combos: list[list[_Exit]] = []
        for combo in itertools.product(*per_copy.values()):
            guard = Guard.TRUE
            compatible = True
            for exit_ in combo:
                if not guard.compatible_with(exit_.guard):
                    compatible = False
                    break
                guard = guard.union(exit_.guard)
            if compatible and guard.fault_count() <= self._k:
                combos.append(list(combo))
        return combos

    # -- main ----------------------------------------------------------------

    def build(self) -> Ftcpg:
        for process_name in self._app.topological_order:
            self._expand_process(process_name)
        self._graph.validate_acyclic()
        return self._graph

    def _expand_process(self, process_name: str) -> None:
        policy = self._policies.of(process_name)
        frozen = self._transparency.is_frozen_process(process_name)

        # 1. Gather entry contexts from the inputs.
        #    Each context: (guard, [(source node id, message name), ...])
        contexts: list[tuple[Guard, list[tuple[str, str | None]]]]
        contexts = [(Guard.TRUE, [])]
        for message in self._app.inputs_of(process_name):
            producer = message.src
            if self._transparency.is_frozen_message(message.name):
                sync_id = self._ensure_message_sync(message.name)
                contexts = [
                    (guard, sources + [(sync_id, message.name)])
                    for guard, sources in contexts
                ]
                continue
            alternatives = self._delivery_alternatives(producer)
            expanded = []
            for guard, sources in contexts:
                for alternative in alternatives:
                    alt_guard = guard
                    ok = True
                    for exit_ in alternative:
                        if not alt_guard.compatible_with(exit_.guard):
                            ok = False
                            break
                        alt_guard = alt_guard.union(exit_.guard)
                    if not ok or alt_guard.fault_count() > self._k:
                        continue
                    alt_sources = sources + [
                        (exit_.node_id, message.name) for exit_ in alternative
                    ]
                    expanded.append((alt_guard, alt_sources))
            contexts = _dedupe_contexts(expanded)
            if not contexts:
                raise PolicyError(
                    f"no consistent entry context for {process_name!r}"
                )

        # 2. A frozen process collapses all contexts through a sync node.
        if frozen:
            sync = self._new_node(FtcpgNode(
                node_id=f"sync:{process_name}",
                kind=NodeKind.SYNC_PROCESS,
                guard=Guard.TRUE,
                sync_ref=process_name,
            ))
            for guard, sources in contexts:
                for source_id, message_name in sources:
                    self._graph.add_edge(FtcpgEdge(
                        src=source_id, dst=sync.node_id, message=message_name))
            contexts = [(Guard.TRUE, [(sync.node_id, None)])]

        # 3. Expand every copy under every entry context.
        all_exits: list[_Exit] = []
        for copy_index, plan in enumerate(policy.copies):
            for entry_index, (guard, sources) in enumerate(contexts):
                exits = self._expand_copy(
                    process_name, copy_index, plan.recoveries,
                    plan.segments, entry_index, guard, sources,
                )
                all_exits.extend(exits)
        self._exits[process_name] = all_exits

        # 4. Route frozen output messages through their sync node now,
        #    so consumers of the frozen message see a single delivery.
        for message in self._app.outputs_of(process_name):
            if self._transparency.is_frozen_message(message.name):
                sync_id = self._ensure_message_sync(message.name)
                for exit_ in all_exits:
                    self._graph.add_edge(FtcpgEdge(
                        src=exit_.node_id, dst=sync_id, message=message.name))

    def _ensure_message_sync(self, message_name: str) -> str:
        if message_name not in self._message_sync:
            node = self._new_node(FtcpgNode(
                node_id=f"sync:{message_name}",
                kind=NodeKind.SYNC_MESSAGE,
                guard=Guard.TRUE,
                sync_ref=message_name,
            ))
            self._message_sync[message_name] = node.node_id
        return self._message_sync[message_name]

    def _expand_copy(
        self,
        process: str,
        copy: int,
        recoveries: int,
        segments: int,
        entry_index: int,
        entry_guard: Guard,
        sources: list[tuple[str, str | None]],
    ) -> list[_Exit]:
        """Unfold the attempt tree of one copy under one entry context."""
        exits: list[_Exit] = []
        counter = itertools.count()

        def expand(segment: int, attempt: int, local_faults: int,
                   guard: Guard, prev: tuple[str, ConditionLiteral | None],
                   ) -> None:
            attempt_id = AttemptId(process, copy, segment, attempt)
            can_recover = (local_faults < recoveries
                           and guard.fault_count() < self._k)
            kind = NodeKind.CONDITIONAL if can_recover else NodeKind.REGULAR
            # The tree index keeps ids unique: several paths may share
            # (segment, attempt, fault count) with different histories.
            node_id = (f"{process}/c{copy}/e{entry_index}"
                       f"/s{segment}/a{attempt}/n{next(counter)}")
            node = self._new_node(FtcpgNode(
                node_id=node_id, kind=kind, guard=guard, attempt=attempt_id))
            prev_id, condition = prev
            if prev_id is not None:
                self._graph.add_edge(FtcpgEdge(
                    src=prev_id, dst=node.node_id, condition=condition))
            else:
                for source_id, message_name in sources:
                    self._graph.add_edge(FtcpgEdge(
                        src=source_id, dst=node.node_id,
                        message=message_name))

            if can_recover:
                ok = ConditionLiteral(attempt_id, faulty=False)
                bad = ConditionLiteral(attempt_id, faulty=True)
                # No-fault continuation.
                if segment == segments:
                    exits.append(_Exit(guard.extended(ok), node.node_id, copy))
                else:
                    expand(segment + 1, 1, local_faults,
                           guard.extended(ok), (node.node_id, ok))
                # Fault: retry the same segment.
                expand(segment, attempt + 1, local_faults + 1,
                       guard.extended(bad), (node.node_id, bad))
            else:
                # Cannot branch: either it cannot fail (budget spent) or
                # failure is silent (copy death) — continue structurally.
                if segment == segments:
                    exits.append(_Exit(guard, node.node_id, copy))
                else:
                    expand(segment + 1, 1, local_faults, guard,
                           (node.node_id, None))

        expand(1, 1, 0, entry_guard, (None, None))  # type: ignore[arg-type]
        return exits


def _dedupe_contexts(
    contexts: list[tuple[Guard, list[tuple[str, str | None]]]],
) -> list[tuple[Guard, list[tuple[str, str | None]]]]:
    """Merge entry contexts with identical guards (their source sets
    are merged, keeping one edge per distinct source)."""
    merged: dict[Guard, dict[tuple[str, str | None], None]] = {}
    order: list[Guard] = []
    for guard, sources in contexts:
        if guard not in merged:
            merged[guard] = {}
            order.append(guard)
        for source in sources:
            merged[guard].setdefault(source, None)
    return [(guard, list(merged[guard])) for guard in order]
