"""Fault-Tolerant Conditional Process Graph (paper §5.1).

The FT-CPG captures every alternative execution scenario caused by
transient faults: a fault in an execution attempt is a *condition*;
conditional edges guard the alternative continuations; synchronization
nodes implement the designer's transparency (frozen) requirements.

* :mod:`repro.ftcpg.conditions` — attempt identifiers, condition
  literals ``F``/``!F`` and conjunctive guards;
* :mod:`repro.ftcpg.graph` — the graph structure (regular nodes,
  conditional nodes, synchronization nodes);
* :mod:`repro.ftcpg.builder` — expansion of an application + policy
  assignment into an FT-CPG;
* :mod:`repro.ftcpg.scenarios` — enumeration of concrete fault
  scenarios (used by the exhaustive tolerance verifier).
"""

from repro.ftcpg.conditions import AttemptId, ConditionLiteral, Guard
from repro.ftcpg.graph import Ftcpg, FtcpgEdge, FtcpgNode, NodeKind
from repro.ftcpg.builder import build_ftcpg
from repro.ftcpg.scenarios import (
    DesFaultPlan,
    FaultPlan,
    FaultWindow,
    SlotFault,
    count_fault_plans,
    iter_fault_plans,
)

__all__ = [
    "AttemptId",
    "ConditionLiteral",
    "DesFaultPlan",
    "FaultPlan",
    "FaultWindow",
    "Ftcpg",
    "FtcpgEdge",
    "FtcpgNode",
    "Guard",
    "NodeKind",
    "SlotFault",
    "build_ftcpg",
    "count_fault_plans",
    "iter_fault_plans",
]
