"""The FT-CPG data structure (paper §5.1).

``G(V_P ∪ V_C ∪ V_T, E_S ∪ E_C)``:

* regular nodes (``V_P``) — execution attempts whose outcome does not
  branch the schedule (they cannot fail, or fail silently);
* conditional nodes (``V_C``) — attempts that produce a condition
  (fault → retry, no fault → continue);
* synchronization nodes (``V_T``) — the frozen processes/messages;
* simple edges (``E_S``) and conditional edges (``E_C``, labelled with
  a condition literal).

Nodes carry the guard under which they exist, so the graph doubles as
a catalogue of execution scenarios for analysis and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.ftcpg.conditions import AttemptId, ConditionLiteral, Guard
from repro.utils.graphs import topological_order


class NodeKind(enum.Enum):
    """FT-CPG node categories."""

    REGULAR = "regular"
    CONDITIONAL = "conditional"
    SYNC_PROCESS = "sync-process"
    SYNC_MESSAGE = "sync-message"


@dataclass(frozen=True)
class FtcpgNode:
    """One FT-CPG node.

    For execution nodes, ``attempt`` identifies the attempt and
    ``guard`` the condition under which this execution happens. For
    synchronization nodes, ``sync_ref`` names the frozen process or
    message and ``attempt`` is ``None``.
    """

    node_id: str
    kind: NodeKind
    guard: Guard
    attempt: AttemptId | None = None
    sync_ref: str | None = None

    @property
    def is_execution(self) -> bool:
        """True for regular/conditional execution attempts."""
        return self.attempt is not None

    def label(self) -> str:
        """Display label (paper-style)."""
        if self.attempt is not None:
            return self.attempt.label()
        prefix = "S" if self.kind is NodeKind.SYNC_PROCESS else "Sm"
        return f"{prefix}[{self.sync_ref}]"


@dataclass(frozen=True)
class FtcpgEdge:
    """One FT-CPG edge; ``condition`` is set on conditional edges and
    ``message`` names the application message the edge carries (if
    any — same-node data flow and intra-copy sequencing carry none)."""

    src: str
    dst: str
    condition: ConditionLiteral | None = None
    message: str | None = None


@dataclass
class Ftcpg:
    """A built fault-tolerant conditional process graph."""

    nodes: dict[str, FtcpgNode] = field(default_factory=dict)
    edges: list[FtcpgEdge] = field(default_factory=list)

    def add_node(self, node: FtcpgNode) -> FtcpgNode:
        """Insert a node; node ids must be unique."""
        if node.node_id in self.nodes:
            raise ValidationError(f"duplicate FT-CPG node {node.node_id!r}")
        self.nodes[node.node_id] = node
        return node

    def add_edge(self, edge: FtcpgEdge) -> FtcpgEdge:
        """Insert an edge between existing nodes."""
        for end in (edge.src, edge.dst):
            if end not in self.nodes:
                raise ValidationError(f"FT-CPG edge references {end!r}")
        self.edges.append(edge)
        return edge

    # -- queries -------------------------------------------------------------

    def successors(self, node_id: str) -> list[FtcpgEdge]:
        """Outgoing edges of a node."""
        return [e for e in self.edges if e.src == node_id]

    def predecessors(self, node_id: str) -> list[FtcpgEdge]:
        """Incoming edges of a node."""
        return [e for e in self.edges if e.dst == node_id]

    def nodes_of_kind(self, kind: NodeKind) -> list[FtcpgNode]:
        """All nodes of one kind, in insertion order."""
        return [n for n in self.nodes.values() if n.kind is kind]

    def execution_nodes_of(self, process: str) -> list[FtcpgNode]:
        """All execution attempts of one application process."""
        return [n for n in self.nodes.values()
                if n.attempt is not None and n.attempt.process == process]

    @property
    def condition_count(self) -> int:
        """Number of conditions (conditional nodes)."""
        return len(self.nodes_of_kind(NodeKind.CONDITIONAL))

    def validate_acyclic(self) -> None:
        """Raise :class:`ValidationError` if the graph has a cycle."""
        succ: dict[str, list[str]] = {n: [] for n in self.nodes}
        for edge in self.edges:
            succ[edge.src].append(edge.dst)
        topological_order(list(self.nodes), succ)

    def stats(self) -> dict[str, int]:
        """Node/edge counts by category (used in reports and tests)."""
        return {
            "regular": len(self.nodes_of_kind(NodeKind.REGULAR)),
            "conditional": len(self.nodes_of_kind(NodeKind.CONDITIONAL)),
            "sync": (len(self.nodes_of_kind(NodeKind.SYNC_PROCESS))
                     + len(self.nodes_of_kind(NodeKind.SYNC_MESSAGE))),
            "simple_edges": sum(1 for e in self.edges if e.condition is None),
            "conditional_edges": sum(
                1 for e in self.edges if e.condition is not None),
        }
