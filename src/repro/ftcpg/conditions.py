"""Condition literals and guards (paper §5.1).

A *condition* is produced by a fault-prone execution attempt: it is
true (``F``) when the attempt experienced a fault and false (``!F``)
otherwise. A *guard* is a conjunction of condition literals; schedule
table columns are headed by guards (paper Fig. 6) and FT-CPG nodes
exist under a guard.

Notation: the paper writes ``P1^2`` for the second execution copy of
``P1`` and ``P1/2^2`` for the second execution of its second segment.
Here an attempt is fully identified by (process, copy, segment,
attempt) and rendered ``P1(2)^s/a`` — the copy suffix is omitted for
copy 0, the segment/attempt suffixes whenever they are 1, matching the
paper's shorthand for non-replicated, non-checkpointed processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping


@dataclass(frozen=True, order=True)
class AttemptId:
    """Identifies one execution attempt of one segment of one copy.

    ``segment`` and ``attempt`` are 1-based, ``copy`` is 0-based
    (copy 0 is the original process).
    """

    process: str
    copy: int
    segment: int
    attempt: int

    def label(self) -> str:
        """Paper-style shorthand, e.g. ``P1^2`` or ``P1(2)^1/3``."""
        text = self.process
        if self.copy > 0:
            text += f"({self.copy + 1})"
        if self.segment != 1 or self.attempt != 1:
            text += f"^{self.segment}"
            if self.attempt != 1:
                text += f"/{self.attempt}"
        return text

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.label()


@dataclass(frozen=True, order=True)
class ConditionLiteral:
    """``F`` (faulty=True) or ``!F`` (faulty=False) of one attempt."""

    attempt: AttemptId
    faulty: bool

    def negated(self) -> "ConditionLiteral":
        """The complementary literal."""
        return ConditionLiteral(self.attempt, not self.faulty)

    def __str__(self) -> str:
        mark = "F" if self.faulty else "!F"
        return f"{mark}[{self.attempt.label()}]"


class Guard:
    """A conjunction of condition literals, in chronological order.

    The empty guard is the constant ``true`` (the unconditional column
    of paper Fig. 6). Guards never contain two literals over the same
    attempt.
    """

    __slots__ = ("_literals", "_by_attempt")

    def __init__(self, literals: Iterable[ConditionLiteral] = ()) -> None:
        ordered: list[ConditionLiteral] = []
        by_attempt: dict[AttemptId, bool] = {}
        for literal in literals:
            if literal.attempt in by_attempt:
                if by_attempt[literal.attempt] != literal.faulty:
                    raise ValueError(
                        f"contradictory guard: {literal.attempt.label()} "
                        "required both faulty and non-faulty"
                    )
                continue
            by_attempt[literal.attempt] = literal.faulty
            ordered.append(literal)
        self._literals = tuple(ordered)
        self._by_attempt = by_attempt

    TRUE: "Guard"  # assigned below

    @property
    def literals(self) -> tuple[ConditionLiteral, ...]:
        """Literals in chronological order."""
        return self._literals

    @property
    def is_unconditional(self) -> bool:
        """True for the empty (always-true) guard."""
        return not self._literals

    def extended(self, literal: ConditionLiteral) -> "Guard":
        """This guard AND one more literal."""
        return Guard(self._literals + (literal,))

    def value_of(self, attempt: AttemptId) -> bool | None:
        """The required value of an attempt's condition, or ``None``."""
        return self._by_attempt.get(attempt)

    def compatible_with(self, other: "Guard") -> bool:
        """True when the conjunction of both guards is satisfiable."""
        small, large = (self, other) if len(self._literals) <= len(
            other._literals) else (other, self)
        for attempt, faulty in small._by_attempt.items():
            required = large._by_attempt.get(attempt)
            if required is not None and required != faulty:
                return False
        return True

    def union(self, other: "Guard") -> "Guard":
        """Conjunction of two compatible guards."""
        return Guard(self._literals + other._literals)

    def implies(self, other: "Guard") -> bool:
        """True when every assignment satisfying self satisfies other."""
        for attempt, faulty in other._by_attempt.items():
            if self._by_attempt.get(attempt) != faulty:
                return False
        return True

    def satisfied_by(self, values: Mapping[AttemptId, bool]) -> bool:
        """Evaluate under a complete-enough assignment.

        Raises ``KeyError`` when a required attempt is undecided; the
        runtime simulator uses this to detect non-executable tables.
        """
        return all(values[attempt] == faulty
                   for attempt, faulty in self._by_attempt.items())

    def decidable_with(self, values: Mapping[AttemptId, bool]) -> bool:
        """True when every literal's attempt has a known value."""
        return all(attempt in values for attempt in self._by_attempt)

    def fault_count(self) -> int:
        """Number of positive (faulty) literals."""
        return sum(1 for lit in self._literals if lit.faulty)

    def __len__(self) -> int:
        return len(self._literals)

    def __iter__(self):
        return iter(self._literals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Guard):
            return NotImplemented
        # Order-insensitive: a guard is a set of literals.
        return self._by_attempt == other._by_attempt

    def __hash__(self) -> int:
        return hash(frozenset(self._by_attempt.items()))

    def __str__(self) -> str:
        if not self._literals:
            return "true"
        return " & ".join(str(lit) for lit in self._literals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Guard({self})"


Guard.TRUE = Guard()
