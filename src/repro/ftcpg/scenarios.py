"""Enumeration of concrete fault scenarios.

A *fault plan* assigns to every copy of every process a per-segment
fault count: ``plan[(process, copy)][segment-1] = f`` means the first
``f`` attempts of that segment fail and attempt ``f + 1`` (if the copy
still has recoveries) succeeds. With rollback semantics the ``j``-th
retry of a segment exists only after ``j`` consecutive failures, so
per-segment counts enumerate fault scenarios *exactly* (DESIGN.md §6).

A copy whose total faults exceed its recovery count dies fail-silently
at the fault that exhausts the budget; the enumeration therefore allows
per-copy totals up to ``R_j + 1`` (death) but never more — further
faults could not hit a copy that no longer executes. The system-wide
total is bounded by ``k``.

The number of plans grows combinatorially; the exhaustive tolerance
verifier only uses it for small instances, and :func:`count_fault_plans`
lets callers check the size first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping

from repro.errors import PolicyError, ValidationError
from repro.model.application import Application
from repro.policies.types import PolicyAssignment
from repro.utils.mathutils import flt

CopyKey = tuple[str, int]


@dataclass(frozen=True)
class FaultPlan:
    """One concrete fault scenario.

    ``faults`` maps ``(process, copy)`` to a tuple of per-segment fault
    counts; copies absent from the mapping take no faults.
    """

    faults: Mapping[CopyKey, tuple[int, ...]]

    @property
    def total_faults(self) -> int:
        """Total number of faults injected by this plan."""
        return sum(sum(counts) for counts in self.faults.values())

    def faults_in(self, process: str, copy: int, segment: int) -> int:
        """Faults hitting one segment (1-based) of one copy."""
        counts = self.faults.get((process, copy))
        if counts is None or segment > len(counts):
            return 0
        return counts[segment - 1]

    def copy_faults(self, process: str, copy: int) -> int:
        """Total faults hitting one copy."""
        counts = self.faults.get((process, copy))
        return sum(counts) if counts else 0

    def is_fault_free(self) -> bool:
        """True when no fault is injected."""
        return self.total_faults == 0

    def describe(self) -> str:
        """Human-readable summary, e.g. ``P1:1 P3(2):2``."""
        if self.is_fault_free():
            return "fault-free"
        parts = []
        for (process, copy), counts in sorted(self.faults.items()):
            if sum(counts) == 0:
                continue
            label = process if copy == 0 else f"{process}({copy + 1})"
            if len(counts) > 1:
                detail = ",".join(str(c) for c in counts)
                parts.append(f"{label}:[{detail}]")
            else:
                parts.append(f"{label}:{counts[0]}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultWindow:
    """An intermittent fault active on one node over ``[t_on, t_off)``.

    While the window is active, *every* execution attempt on ``node``
    whose busy interval overlaps it fails — including re-executions,
    which is exactly what the per-segment counts of a :class:`FaultPlan`
    cannot express (a count makes the ``j+1``-th attempt succeed by
    construction). Only the event-driven simulator
    (:mod:`repro.des`) can execute these.
    """

    node: str
    t_on: float
    t_off: float

    def __post_init__(self) -> None:
        if not self.t_off > self.t_on:
            raise ValidationError(
                f"fault window must satisfy t_on < t_off, got "
                f"[{self.t_on}, {self.t_off})")

    def hits(self, start: float, end: float) -> bool:
        """Whether an attempt busy over ``[start, end)`` overlaps the
        active window (eps-tolerant strict overlap)."""
        return flt(start, self.t_off) and flt(self.t_on, end)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``N1@[4,9)``."""
        return f"{self.node}@[{self.t_on:g},{self.t_off:g})"


@dataclass(frozen=True)
class SlotFault:
    """One corrupted TDMA slot occurrence.

    Any frame transmitted in slot ``slot_index`` of round
    ``round_index`` is lost; the sender retransmits it in a later slot
    occurrence it owns, delaying the message arrival — an axis the
    schedule tables assume away (the bus is fault-free in the paper's
    hypothesis) and only the DES can execute.
    """

    round_index: int
    slot_index: int

    def describe(self) -> str:
        """Human-readable summary, e.g. ``r2s0``."""
        return f"r{self.round_index}s{self.slot_index}"


@dataclass(frozen=True)
class DesFaultPlan:
    """A :class:`FaultPlan` extended with DES-only scenario axes.

    ``base`` carries the per-segment transient-fault counts that table
    replay can express; ``windows`` (intermittent faults),
    ``slot_faults`` (corrupted TDMA slots) and ``jitter`` (per-process
    release delays, in schedule time units) are executable only by the
    event-driven simulator. A plan with no extensions round-trips
    through the DES bit-identically to table replay.
    """

    base: FaultPlan
    windows: tuple[FaultWindow, ...] = ()
    slot_faults: tuple[SlotFault, ...] = ()
    jitter: Mapping[str, float] = field(default_factory=dict)

    @property
    def is_table_expressible(self) -> bool:
        """True when no DES-only axis is used and table replay applies."""
        return (not self.windows and not self.slot_faults
                and not any(self.jitter.values()))

    @property
    def total_faults(self) -> int:
        """Injected faults: base transients + windows + slot faults.

        Release jitter is a timing perturbation, not a fault, and does
        not count.
        """
        return (self.base.total_faults + len(self.windows)
                + len(self.slot_faults))

    def is_fault_free(self) -> bool:
        """True when nothing at all is injected (jitter included)."""
        return self.total_faults == 0 and not any(self.jitter.values())

    def describe(self) -> str:
        """Human-readable summary combining the base plan and axes."""
        parts = []
        if not self.base.is_fault_free():
            parts.append(self.base.describe())
        if self.windows:
            detail = ",".join(w.describe() for w in self.windows)
            parts.append(f"win[{detail}]")
        if self.slot_faults:
            detail = ",".join(s.describe() for s in self.slot_faults)
            parts.append(f"slot[{detail}]")
        jittered = {p: j for p, j in self.jitter.items() if j > 0}
        if jittered:
            detail = ",".join(f"{p}+{j:g}" for p, j in sorted(
                jittered.items()))
            parts.append(f"jitter[{detail}]")
        return " ".join(parts) if parts else "fault-free"


def _copy_distributions(segments: int, max_total: int,
                        ) -> list[tuple[int, ...]]:
    """All per-segment fault distributions with total <= max_total.

    Ordered by total then lexicographically, so the fault-free
    distribution comes first.
    """
    distributions: list[tuple[int, ...]] = []
    for total in range(max_total + 1):
        for cuts in itertools.combinations_with_replacement(
                range(segments), total):
            counts = [0] * segments
            for cut in cuts:
                counts[cut] += 1
            distributions.append(tuple(counts))
    return distributions


@dataclass(frozen=True)
class PlanEnumeration:
    """The shared tables behind the fault-plan enumeration order.

    ``copies[d]`` is the d-th copy in enumeration order (process
    declaration order, then copy index), ``copy_plans[d]`` its
    recovery plan, and ``options[d]`` its admissible per-segment fault
    distributions, ordered by total then lexicographically. Both
    :func:`iter_fault_plans` and the scenario-sweep verifier
    (:mod:`repro.verify.core`) walk exactly this tree — sharing the
    tables is what makes the sweep's emission order *structurally*
    identical to the iterator's, rather than identical by parallel
    reimplementation.
    """

    k: int
    copies: tuple[CopyKey, ...]
    copy_plans: tuple
    options: tuple[tuple[tuple[int, ...], ...], ...]

    def subtree_leaves(self) -> list[list[int]]:
        """DP table: ``leaves[d][b]`` = plans completable from copy
        ``d`` with ``b`` faults of budget left.

        ``leaves[0][k]`` is the total plan count; the verifier uses
        the full table to *skip* whole subtrees whose leaf range falls
        outside a shard's contiguous scenario window, so a shard pays
        only for the scenarios it simulates (plus the shared spine).
        """
        depth = len(self.copies)
        table = [[0] * (self.k + 1) for _ in range(depth + 1)]
        table[depth] = [1] * (self.k + 1)
        for d in range(depth - 1, -1, -1):
            per_total: dict[int, int] = {}
            for counts in self.options[d]:
                total = sum(counts)
                per_total[total] = per_total.get(total, 0) + 1
            row = table[d]
            below = table[d + 1]
            for budget in range(self.k + 1):
                row[budget] = sum(
                    count * below[budget - total]
                    for total, count in per_total.items()
                    if total <= budget)
        return table

    @property
    def total(self) -> int:
        """Number of plans the enumeration yields."""
        return self.subtree_leaves()[0][self.k]


def plan_enumeration(app: Application, policies: PolicyAssignment,
                     k: int) -> PlanEnumeration:
    """Build the enumeration tables for one instance."""
    if k < 0:
        raise PolicyError(f"k must be >= 0, got {k}")
    copies: list[CopyKey] = []
    copy_plans: list = []
    options: list[tuple[tuple[int, ...], ...]] = []
    for process in app.process_names:
        policy = policies.of(process)
        for copy_index, plan in enumerate(policy.copies):
            copies.append((process, copy_index))
            copy_plans.append(plan)
            cap = min(plan.recoveries + 1, k)
            options.append(tuple(_copy_distributions(plan.segments,
                                                     cap)))
    return PlanEnumeration(k=k, copies=tuple(copies),
                           copy_plans=tuple(copy_plans),
                           options=tuple(options))


def iter_fault_plans(app: Application, policies: PolicyAssignment,
                     k: int, *, include_fault_free: bool = True,
                     ) -> Iterator[FaultPlan]:
    """Yield every fault plan with at most ``k`` total faults.

    Plans are emitted in nondecreasing order of per-copy budgets but
    not globally sorted by total; the fault-free plan comes first when
    ``include_fault_free`` is set.
    """
    enumeration = plan_enumeration(app, policies, k)
    copies = enumeration.copies
    options = enumeration.options

    # Budget-pruned recursion rather than product-then-filter: the
    # naive cartesian product walks |options|^copies combinations even
    # when almost all exceed the budget (5^30 combos for 46k valid
    # plans on a 30-process instance), which made "exhaustive but
    # modest" scenario sets intractable. Per-copy options are ordered
    # by total, so a branch can cut as soon as one copy overdraws; the
    # emission order is exactly the order the filtered product had.
    def expand(index: int, remaining: int,
               chosen: list[tuple[int, ...]]) -> Iterator[FaultPlan]:
        if index == len(options):
            if remaining == k and not include_fault_free:
                return
            yield FaultPlan(faults={
                key: counts
                for key, counts in zip(copies, chosen)
                if sum(counts) > 0
            })
            return
        for counts in options[index]:
            used = sum(counts)
            if used > remaining:
                break  # ordered by total: the rest overdraws too
            chosen.append(counts)
            yield from expand(index + 1, remaining - used, chosen)
            chosen.pop()

    yield from expand(0, k, [])


def count_fault_plans(app: Application, policies: PolicyAssignment,
                      k: int) -> int:
    """Number of plans :func:`iter_fault_plans` would yield.

    Counted by dynamic programming over copies (no plan
    materialization), so it is safe to call on large instances before
    deciding whether exhaustive verification is feasible. Exactly
    ``plan_enumeration(...).total`` — the same DP the scenario-sweep
    verifier uses to skip out-of-shard subtrees.
    """
    return plan_enumeration(app, policies, k).total
