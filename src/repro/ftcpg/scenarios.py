"""Enumeration of concrete fault scenarios.

A *fault plan* assigns to every copy of every process a per-segment
fault count: ``plan[(process, copy)][segment-1] = f`` means the first
``f`` attempts of that segment fail and attempt ``f + 1`` (if the copy
still has recoveries) succeeds. With rollback semantics the ``j``-th
retry of a segment exists only after ``j`` consecutive failures, so
per-segment counts enumerate fault scenarios *exactly* (DESIGN.md §6).

A copy whose total faults exceed its recovery count dies fail-silently
at the fault that exhausts the budget; the enumeration therefore allows
per-copy totals up to ``R_j + 1`` (death) but never more — further
faults could not hit a copy that no longer executes. The system-wide
total is bounded by ``k``.

The number of plans grows combinatorially; the exhaustive tolerance
verifier only uses it for small instances, and :func:`count_fault_plans`
lets callers check the size first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterator, Mapping

from repro.errors import PolicyError
from repro.model.application import Application
from repro.policies.types import PolicyAssignment

CopyKey = tuple[str, int]


@dataclass(frozen=True)
class FaultPlan:
    """One concrete fault scenario.

    ``faults`` maps ``(process, copy)`` to a tuple of per-segment fault
    counts; copies absent from the mapping take no faults.
    """

    faults: Mapping[CopyKey, tuple[int, ...]]

    @property
    def total_faults(self) -> int:
        """Total number of faults injected by this plan."""
        return sum(sum(counts) for counts in self.faults.values())

    def faults_in(self, process: str, copy: int, segment: int) -> int:
        """Faults hitting one segment (1-based) of one copy."""
        counts = self.faults.get((process, copy))
        if counts is None or segment > len(counts):
            return 0
        return counts[segment - 1]

    def copy_faults(self, process: str, copy: int) -> int:
        """Total faults hitting one copy."""
        counts = self.faults.get((process, copy))
        return sum(counts) if counts else 0

    def is_fault_free(self) -> bool:
        """True when no fault is injected."""
        return self.total_faults == 0

    def describe(self) -> str:
        """Human-readable summary, e.g. ``P1:1 P3(2):2``."""
        if self.is_fault_free():
            return "fault-free"
        parts = []
        for (process, copy), counts in sorted(self.faults.items()):
            if sum(counts) == 0:
                continue
            label = process if copy == 0 else f"{process}({copy + 1})"
            if len(counts) > 1:
                detail = ",".join(str(c) for c in counts)
                parts.append(f"{label}:[{detail}]")
            else:
                parts.append(f"{label}:{counts[0]}")
        return " ".join(parts)


def _copy_distributions(segments: int, max_total: int,
                        ) -> list[tuple[int, ...]]:
    """All per-segment fault distributions with total <= max_total.

    Ordered by total then lexicographically, so the fault-free
    distribution comes first.
    """
    distributions: list[tuple[int, ...]] = []
    for total in range(max_total + 1):
        for cuts in itertools.combinations_with_replacement(
                range(segments), total):
            counts = [0] * segments
            for cut in cuts:
                counts[cut] += 1
            distributions.append(tuple(counts))
    return distributions


def iter_fault_plans(app: Application, policies: PolicyAssignment,
                     k: int, *, include_fault_free: bool = True,
                     ) -> Iterator[FaultPlan]:
    """Yield every fault plan with at most ``k`` total faults.

    Plans are emitted in nondecreasing order of per-copy budgets but
    not globally sorted by total; the fault-free plan comes first when
    ``include_fault_free`` is set.
    """
    if k < 0:
        raise PolicyError(f"k must be >= 0, got {k}")
    copies: list[CopyKey] = []
    options: list[list[tuple[int, ...]]] = []
    for process in app.process_names:
        policy = policies.of(process)
        for copy_index, plan in enumerate(policy.copies):
            copies.append((process, copy_index))
            cap = min(plan.recoveries + 1, k)
            options.append(_copy_distributions(plan.segments, cap))

    # Budget-pruned recursion rather than product-then-filter: the
    # naive cartesian product walks |options|^copies combinations even
    # when almost all exceed the budget (5^30 combos for 46k valid
    # plans on a 30-process instance), which made "exhaustive but
    # modest" scenario sets intractable. Per-copy options are ordered
    # by total, so a branch can cut as soon as one copy overdraws; the
    # emission order is exactly the order the filtered product had.
    def expand(index: int, remaining: int,
               chosen: list[tuple[int, ...]]) -> Iterator[FaultPlan]:
        if index == len(options):
            if remaining == k and not include_fault_free:
                return
            yield FaultPlan(faults={
                key: counts
                for key, counts in zip(copies, chosen)
                if sum(counts) > 0
            })
            return
        for counts in options[index]:
            used = sum(counts)
            if used > remaining:
                break  # ordered by total: the rest overdraws too
            chosen.append(counts)
            yield from expand(index + 1, remaining - used, chosen)
            chosen.pop()

    yield from expand(0, k, [])


def count_fault_plans(app: Application, policies: PolicyAssignment,
                      k: int) -> int:
    """Number of plans :func:`iter_fault_plans` would yield.

    Counted by dynamic programming over copies (no enumeration), so it
    is safe to call on large instances before deciding whether
    exhaustive verification is feasible.
    """
    if k < 0:
        raise PolicyError(f"k must be >= 0, got {k}")
    # ways[b] = number of combined distributions using exactly b faults.
    ways = [0] * (k + 1)
    ways[0] = 1
    for process in app.process_names:
        policy = policies.of(process)
        for plan in policy.copies:
            cap = min(plan.recoveries + 1, k)
            per_total = [0] * (cap + 1)
            for distribution in _copy_distributions(plan.segments, cap):
                per_total[sum(distribution)] += 1
            updated = [0] * (k + 1)
            for used, count in enumerate(ways):
                if count == 0:
                    continue
                for extra, extra_count in enumerate(per_total):
                    if used + extra <= k:
                        updated[used + extra] += count * extra_count
            ways = updated
    return sum(ways)
