"""Enumeration of concrete fault scenarios.

A *fault plan* assigns to every copy of every process a per-segment
fault count: ``plan[(process, copy)][segment-1] = f`` means the first
``f`` attempts of that segment fail and attempt ``f + 1`` (if the copy
still has recoveries) succeeds. With rollback semantics the ``j``-th
retry of a segment exists only after ``j`` consecutive failures, so
per-segment counts enumerate fault scenarios *exactly* (DESIGN.md §6).

A copy whose total faults exceed its recovery count dies fail-silently
at the fault that exhausts the budget; the enumeration therefore allows
per-copy totals up to ``R_j + 1`` (death) but never more — further
faults could not hit a copy that no longer executes. The system-wide
total is bounded by ``k``.

The number of plans grows combinatorially; the exhaustive tolerance
verifier only uses it for small instances, and :func:`count_fault_plans`
lets callers check the size first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterator, Mapping

from repro.errors import PolicyError
from repro.model.application import Application
from repro.policies.types import PolicyAssignment

CopyKey = tuple[str, int]


@dataclass(frozen=True)
class FaultPlan:
    """One concrete fault scenario.

    ``faults`` maps ``(process, copy)`` to a tuple of per-segment fault
    counts; copies absent from the mapping take no faults.
    """

    faults: Mapping[CopyKey, tuple[int, ...]]

    @property
    def total_faults(self) -> int:
        """Total number of faults injected by this plan."""
        return sum(sum(counts) for counts in self.faults.values())

    def faults_in(self, process: str, copy: int, segment: int) -> int:
        """Faults hitting one segment (1-based) of one copy."""
        counts = self.faults.get((process, copy))
        if counts is None or segment > len(counts):
            return 0
        return counts[segment - 1]

    def copy_faults(self, process: str, copy: int) -> int:
        """Total faults hitting one copy."""
        counts = self.faults.get((process, copy))
        return sum(counts) if counts else 0

    def is_fault_free(self) -> bool:
        """True when no fault is injected."""
        return self.total_faults == 0

    def describe(self) -> str:
        """Human-readable summary, e.g. ``P1:1 P3(2):2``."""
        if self.is_fault_free():
            return "fault-free"
        parts = []
        for (process, copy), counts in sorted(self.faults.items()):
            if sum(counts) == 0:
                continue
            label = process if copy == 0 else f"{process}({copy + 1})"
            if len(counts) > 1:
                detail = ",".join(str(c) for c in counts)
                parts.append(f"{label}:[{detail}]")
            else:
                parts.append(f"{label}:{counts[0]}")
        return " ".join(parts)


def _copy_distributions(segments: int, max_total: int,
                        ) -> list[tuple[int, ...]]:
    """All per-segment fault distributions with total <= max_total.

    Ordered by total then lexicographically, so the fault-free
    distribution comes first.
    """
    distributions: list[tuple[int, ...]] = []
    for total in range(max_total + 1):
        for cuts in itertools.combinations_with_replacement(
                range(segments), total):
            counts = [0] * segments
            for cut in cuts:
                counts[cut] += 1
            distributions.append(tuple(counts))
    return distributions


@dataclass(frozen=True)
class PlanEnumeration:
    """The shared tables behind the fault-plan enumeration order.

    ``copies[d]`` is the d-th copy in enumeration order (process
    declaration order, then copy index), ``copy_plans[d]`` its
    recovery plan, and ``options[d]`` its admissible per-segment fault
    distributions, ordered by total then lexicographically. Both
    :func:`iter_fault_plans` and the scenario-sweep verifier
    (:mod:`repro.verify.core`) walk exactly this tree — sharing the
    tables is what makes the sweep's emission order *structurally*
    identical to the iterator's, rather than identical by parallel
    reimplementation.
    """

    k: int
    copies: tuple[CopyKey, ...]
    copy_plans: tuple
    options: tuple[tuple[tuple[int, ...], ...], ...]

    def subtree_leaves(self) -> list[list[int]]:
        """DP table: ``leaves[d][b]`` = plans completable from copy
        ``d`` with ``b`` faults of budget left.

        ``leaves[0][k]`` is the total plan count; the verifier uses
        the full table to *skip* whole subtrees whose leaf range falls
        outside a shard's contiguous scenario window, so a shard pays
        only for the scenarios it simulates (plus the shared spine).
        """
        depth = len(self.copies)
        table = [[0] * (self.k + 1) for _ in range(depth + 1)]
        table[depth] = [1] * (self.k + 1)
        for d in range(depth - 1, -1, -1):
            per_total: dict[int, int] = {}
            for counts in self.options[d]:
                total = sum(counts)
                per_total[total] = per_total.get(total, 0) + 1
            row = table[d]
            below = table[d + 1]
            for budget in range(self.k + 1):
                row[budget] = sum(
                    count * below[budget - total]
                    for total, count in per_total.items()
                    if total <= budget)
        return table

    @property
    def total(self) -> int:
        """Number of plans the enumeration yields."""
        return self.subtree_leaves()[0][self.k]


def plan_enumeration(app: Application, policies: PolicyAssignment,
                     k: int) -> PlanEnumeration:
    """Build the enumeration tables for one instance."""
    if k < 0:
        raise PolicyError(f"k must be >= 0, got {k}")
    copies: list[CopyKey] = []
    copy_plans: list = []
    options: list[tuple[tuple[int, ...], ...]] = []
    for process in app.process_names:
        policy = policies.of(process)
        for copy_index, plan in enumerate(policy.copies):
            copies.append((process, copy_index))
            copy_plans.append(plan)
            cap = min(plan.recoveries + 1, k)
            options.append(tuple(_copy_distributions(plan.segments,
                                                     cap)))
    return PlanEnumeration(k=k, copies=tuple(copies),
                           copy_plans=tuple(copy_plans),
                           options=tuple(options))


def iter_fault_plans(app: Application, policies: PolicyAssignment,
                     k: int, *, include_fault_free: bool = True,
                     ) -> Iterator[FaultPlan]:
    """Yield every fault plan with at most ``k`` total faults.

    Plans are emitted in nondecreasing order of per-copy budgets but
    not globally sorted by total; the fault-free plan comes first when
    ``include_fault_free`` is set.
    """
    enumeration = plan_enumeration(app, policies, k)
    copies = enumeration.copies
    options = enumeration.options

    # Budget-pruned recursion rather than product-then-filter: the
    # naive cartesian product walks |options|^copies combinations even
    # when almost all exceed the budget (5^30 combos for 46k valid
    # plans on a 30-process instance), which made "exhaustive but
    # modest" scenario sets intractable. Per-copy options are ordered
    # by total, so a branch can cut as soon as one copy overdraws; the
    # emission order is exactly the order the filtered product had.
    def expand(index: int, remaining: int,
               chosen: list[tuple[int, ...]]) -> Iterator[FaultPlan]:
        if index == len(options):
            if remaining == k and not include_fault_free:
                return
            yield FaultPlan(faults={
                key: counts
                for key, counts in zip(copies, chosen)
                if sum(counts) > 0
            })
            return
        for counts in options[index]:
            used = sum(counts)
            if used > remaining:
                break  # ordered by total: the rest overdraws too
            chosen.append(counts)
            yield from expand(index + 1, remaining - used, chosen)
            chosen.pop()

    yield from expand(0, k, [])


def count_fault_plans(app: Application, policies: PolicyAssignment,
                      k: int) -> int:
    """Number of plans :func:`iter_fault_plans` would yield.

    Counted by dynamic programming over copies (no plan
    materialization), so it is safe to call on large instances before
    deciding whether exhaustive verification is feasible. Exactly
    ``plan_enumeration(...).total`` — the same DP the scenario-sweep
    verifier uses to skip out-of-shard subtrees.
    """
    return plan_enumeration(app, policies, k).total
