"""Estimate-vs-exact-vs-simulated sweep over the workload grid.

The paper's evaluation (Fig. 7/8) compares strategies by their
*estimated* overheads; this experiment closes the loop the paper
leaves open: for a grid of generated workloads it synthesizes a design
(:func:`repro.synthesis.strategies.synthesize`), builds the exact
conditional tables (:func:`repro.schedule.conditional.
synthesize_schedule`), stress-tests them under sampled fault plans
(:mod:`repro.campaigns`), and reports how the slack-sharing estimate
relates to both:

* **est dev %** — how far below the exact worst case the paper's
  ``"max"`` estimate sits (its optimism);
* **cert dev %** — ditto for the sound ``"budgeted"`` estimate
  (negative = conservative);
* **sim/exact %** — how much of the exact worst case the sampled
  plans actually reached (sampling coverage);
* **exceed** — sampled plans whose simulated finish exceeded the
  certified estimate bound (the soundness seam: must be 0).

Each grid cell is one single-chunk campaign run as a pure engine job,
so the sweep inherits workers/checkpointing via ``repro batch``-style
execution.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import asdict, dataclass, field
from collections.abc import Mapping, Sequence

from repro.campaigns.runner import (
    build_campaign_design,
    run_campaign_chunk,
)
from repro.campaigns.stats import CampaignStats
from repro.engine.backends import BACKENDS
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob
from repro.engine.runner import BatchEngine, EngineConfig, JobOutcome
from repro.eval.diskcache import CACHE_DIR_ENV
from repro.ftcpg.scenarios import count_fault_plans
from repro.experiments.reporting import (
    group_cells_by_size,
    mean,
    render_rows,
)
from repro.synthesis.tabu import TabuSettings
from repro.utils.rng import derive_seed

#: Import-path runner reference resolved by engine workers.
CELL_RUNNER = "repro.experiments.campaign:run_campaign_sweep_cell"


@dataclass(frozen=True)
class CampaignSweepConfig:
    """Sweep configuration (small sizes: every cell pays an exact
    conditional scheduling, which is exponential in ``k``)."""

    sizes: tuple[int, ...] = (5, 6, 8)
    seeds: tuple[int, ...] = (1, 2, 3)
    nodes: int = 2
    k: int = 2
    strategy: str = "MXR"
    sampler: str = "stratified"
    samples: int = 60
    sweep_seed: int = 0
    settings: TabuSettings = field(
        default_factory=lambda: TabuSettings(
            iterations=8, neighborhood=8, bus_contention=False))
    max_contexts: int = 200_000
    #: Also certify each cell's design exhaustively (the sweep sizes
    #: are small enough that the prefix-reuse verifier covers the
    #: whole scenario set); cells beyond the ceiling report ``None``.
    certify: bool = True
    certify_max_scenarios: int = 50_000

    @classmethod
    def quick(cls) -> "CampaignSweepConfig":
        """Small sweep for CI/benchmarks."""
        return cls(sizes=(5, 6), seeds=(1, 2), samples=30)

    @classmethod
    def full(cls) -> "CampaignSweepConfig":
        """The default grid."""
        return cls()


@dataclass
class CampaignRow:
    """Aggregates of one application size."""

    processes: int
    cells: int
    plans: int
    est_dev: float
    cert_dev: float
    sim_coverage: float
    exceeded: int
    violations: int
    #: Cells whose design passed exhaustive verification / cells
    #: certification was attempted on (0/0 with ``certify`` off).
    certified: int = 0
    certifiable: int = 0

    def as_cells(self) -> list:
        return [self.processes, self.cells, self.plans,
                f"{self.est_dev:.1f}", f"{self.cert_dev:.1f}",
                f"{self.sim_coverage:.1f}", self.exceeded,
                self.violations,
                f"{self.certified}/{self.certifiable}"]


#: Table header matching :meth:`CampaignRow.as_cells`.
ROW_HEADER = ["processes", "cells", "plans", "est dev %", "cert dev %",
              "sim/exact %", "exceed", "violations", "certified"]


def campaign_sweep_jobs(config: CampaignSweepConfig | None = None,
                        ) -> list[BatchJob]:
    """Expand the sweep into one engine job per (size, seed) cell."""
    config = config or CampaignSweepConfig()
    return grid_jobs(
        CELL_RUNNER,
        {"size": config.sizes, "seed": config.seeds},
        prefix="campaign-sweep",
        common={
            "nodes": config.nodes,
            "k": config.k,
            "strategy": config.strategy,
            "sampler": config.sampler,
            "samples": config.samples,
            "sweep_seed": config.sweep_seed,
            "settings": asdict(config.settings),
            "max_contexts": config.max_contexts,
            "certify": config.certify,
            "certify_max_scenarios": config.certify_max_scenarios,
        },
    )


def run_campaign_sweep_cell(params: Mapping[str, object]) -> dict:
    """One sweep cell: a single-chunk campaign on one workload.

    With ``certify`` the cell additionally sweeps **all** fault
    scenarios of the *same* design context the campaign sampled (one
    shared :func:`~repro.campaigns.runner.build_campaign_design` —
    synthesis and exact tables are built once, not per phase) and
    reports ``verify_ok`` / ``verified_scenarios`` — ``None`` / 0
    when the scenario count exceeds ``certify_max_scenarios``.
    """
    size = int(params["size"])
    seed = int(params["seed"])
    chunk_params = {
        "workload": {"processes": size, "nodes": int(params["nodes"]),
                     "seed": seed},
        "k": params["k"],
        "strategy": params["strategy"],
        "sampler": params["sampler"],
        "samples": params["samples"],
        "chunk": 0,
        "chunks": 1,
        "seed": derive_seed(int(params["sweep_seed"]),
                            "campaign-sweep", size, seed),
        "settings": params["settings"],
        "max_contexts": params["max_contexts"],
    }
    design = build_campaign_design(chunk_params)
    cell = run_campaign_chunk(chunk_params, design=design)
    cell["size"] = size
    cell["seed"] = seed
    if bool(params.get("certify", False)):
        from repro.verify.core import ScenarioSweep
        from repro.verify.stats import VerificationStats
        total = count_fault_plans(design.app, design.result.policies,
                                  design.fault_model.k)
        if total > int(params["certify_max_scenarios"]):
            cell["verify_ok"] = None
            cell["verified_scenarios"] = 0
        else:
            sweep = ScenarioSweep(
                design.app, design.arch, design.result.mapping,
                design.result.policies, design.fault_model,
                design.schedule)
            stats = VerificationStats()
            for outcome in sweep.results():
                stats.observe(outcome)
            cell["verify_ok"] = stats.ok
            cell["verified_scenarios"] = stats.scenarios
    return cell


def rows_from_cells(cells: Sequence[Mapping], *,
                    sizes: Sequence[int] | None = None,
                    ) -> list[CampaignRow]:
    """Aggregate per-cell results into one row per application size."""
    rows = []
    for size, group in group_cells_by_size(cells, sizes):
        stats = [CampaignStats.from_jsonable(c["stats"]) for c in group]
        rows.append(CampaignRow(
            processes=size,
            cells=len(group),
            plans=sum(s.plans for s in stats),
            est_dev=mean([
                (c["exact_worst_case"] - c["estimate"])
                / c["exact_worst_case"] * 100.0 for c in group]),
            cert_dev=mean([
                (c["exact_worst_case"] - c["certified_estimate"])
                / c["exact_worst_case"] * 100.0 for c in group]),
            sim_coverage=mean([
                s.worst_makespan / c["exact_worst_case"] * 100.0
                for c, s in zip(group, stats)]),
            exceeded=sum(s.exceeded for s in stats),
            violations=sum(s.violations for s in stats),
            certified=sum(1 for c in group
                          if c.get("verify_ok") is True),
            certifiable=sum(1 for c in group
                            if c.get("verify_ok") is not None),
        ))
    return rows


def _print_cell(outcome: JobOutcome) -> None:
    cell = outcome.result
    resumed = " (resumed)" if outcome.from_checkpoint else ""
    stats = CampaignStats.from_jsonable(cell["stats"])
    print(f"  size={cell['size']} seed={cell['seed']} "
          f"plans={stats.plans} worst={stats.worst_makespan:.1f} "
          f"exact={cell['exact_worst_case']:.1f} "
          f"exceeded={stats.exceeded}{resumed}")


def run_campaign_sweep(config: CampaignSweepConfig | None = None, *,
                       verbose: bool = False, workers: int = 1,
                       engine_config: EngineConfig | None = None,
                       ) -> list[CampaignRow]:
    """Run the sweep and return one row per application size."""
    config = config or CampaignSweepConfig()
    engine = BatchEngine(engine_config
                         or EngineConfig(workers=workers))
    report = engine.run(campaign_sweep_jobs(config),
                        progress=_print_cell if verbose else None)
    return rows_from_cells(report.results(), sizes=config.sizes)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: the full grid."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign",
        description="Fault-injection campaign sweep over an "
                    "application-size grid")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (<=1 runs serially)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSONL checkpoint of completed cells "
                             "(enables resume)")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="executor backend (serial, process or "
                             "workdir); default auto-selects from "
                             "--workers/--workdir")
    parser.add_argument("--workdir", default=None, metavar="DIR",
                        help="shared directory of the workdir "
                             "backend; 'repro worker' processes may "
                             "join from any host sharing it")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent evaluation cache "
                             "(REPRO_EVAL_CACHE_DIR); repeated "
                             "sweeps warm-start from it")
    args = parser.parse_args(argv)

    if args.cache_dir:
        os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    engine_config = EngineConfig(workers=args.workers,
                                 checkpoint_path=args.checkpoint,
                                 backend=args.backend,
                                 workdir=args.workdir)
    rows = run_campaign_sweep(CampaignSweepConfig.full(),
                              verbose=True,
                              engine_config=engine_config)
    print()
    print("Campaign sweep — estimate vs exact vs simulated")
    print(render_rows(ROW_HEADER, [row.as_cells() for row in rows]))
    return 0


if __name__ == "__main__":
    main()
