"""Paper Fig. 7 — efficiency of fault tolerance policy assignment.

For applications of 20..100 processes (2–6 nodes, k = 3..7, drawn per
seed as in §6) the experiment measures the fault tolerance overhead

    FTO(s) = (L_s − L_nft) / L_nft × 100

of every strategy ``s`` and reports the average percentage deviation of
MR, SFX and MX from the MXR baseline:

    dev(s) = (FTO(s) − FTO(MXR)) / FTO(MXR) × 100.

The paper reports MXR beating MR by 77 % and MX by 17.6 % on average,
with SFX in between; what this reproduction asserts is the ordering
``0 = dev(MXR) < dev(MX) < dev(SFX) < dev(MR)`` and the magnitude
regimes (MR worse by tens of percent, MX by double digits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import render_rows
from repro.schedule.analysis import percentage_deviation
from repro.synthesis.strategies import nft_baseline, synthesize
from repro.synthesis.tabu import TabuSettings
from repro.workloads.generator import (
    generate_workload,
    paper_experiment_config,
)
from repro.model.fault_model import FaultModel

#: Strategies compared against the MXR baseline, in plot order.
COMPARED = ("MR", "SFX", "MX")


@dataclass(frozen=True)
class Fig7Config:
    """Sweep configuration.

    ``paper`` uses the paper's five sizes; ``quick`` (the default for
    benchmarks) trades sweep width for runtime.
    """

    sizes: tuple[int, ...] = (20, 40, 60, 80, 100)
    seeds: tuple[int, ...] = (1, 2, 3)
    settings: TabuSettings = field(default_factory=TabuSettings)

    @classmethod
    def quick(cls) -> "Fig7Config":
        """Small sweep for CI/benchmarks."""
        return cls(
            sizes=(20, 40),
            seeds=(1, 2),
            settings=TabuSettings(iterations=16, neighborhood=12,
                                  bus_contention=False),
        )

    @classmethod
    def paper(cls) -> "Fig7Config":
        """The full sweep of the paper's Fig. 7."""
        return cls()


@dataclass
class Fig7Row:
    """One point per strategy and application size."""

    processes: int
    samples: int
    avg_fto_mxr: float
    avg_deviation: dict[str, float]

    def as_cells(self) -> list:
        return ([self.processes, self.samples,
                 f"{self.avg_fto_mxr:.1f}"]
                + [f"{self.avg_deviation[s]:.1f}" for s in COMPARED])


def run_fig7(config: Fig7Config | None = None, *, verbose: bool = False,
             ) -> list[Fig7Row]:
    """Run the sweep and return one row per application size."""
    config = config or Fig7Config()
    rows: list[Fig7Row] = []
    for size in config.sizes:
        deviations: dict[str, list[float]] = {s: [] for s in COMPARED}
        ftos_mxr: list[float] = []
        for seed in config.seeds:
            gen_config, k = paper_experiment_config(size, seed)
            app, arch = generate_workload(gen_config)
            fault_model = FaultModel(k=k)
            settings = TabuSettings(
                iterations=config.settings.iterations,
                neighborhood=config.settings.neighborhood,
                tenure=config.settings.tenure,
                seed=config.settings.seed + seed,
                no_improve_restart=config.settings.no_improve_restart,
                restart_strength=config.settings.restart_strength,
                penalty_weight=config.settings.penalty_weight,
                bus_contention=config.settings.bus_contention,
            )
            baseline = nft_baseline(app, arch, settings)
            mxr = synthesize(app, arch, fault_model, "MXR",
                             settings=settings, baseline=baseline)
            ftos_mxr.append(mxr.fto)
            for strategy in COMPARED:
                result = synthesize(app, arch, fault_model, strategy,
                                    settings=settings, baseline=baseline)
                deviations[strategy].append(
                    percentage_deviation(result.fto, mxr.fto))
            if verbose:
                print(f"  size={size} seed={seed} nodes={gen_config.nodes} "
                      f"k={k} FTO(MXR)={mxr.fto:.1f}%")
        rows.append(Fig7Row(
            processes=size,
            samples=len(config.seeds),
            avg_fto_mxr=_mean(ftos_mxr),
            avg_deviation={s: _mean(v) for s, v in deviations.items()},
        ))
    return rows


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def main() -> None:
    """CLI entry point: the full paper sweep."""
    rows = run_fig7(Fig7Config.paper(), verbose=True)
    print()
    print("Fig. 7 — avg % deviation of FTO from the MXR baseline")
    print(render_rows(
        ["processes", "samples", "FTO(MXR) %"] + [f"dev {s} %"
                                                  for s in COMPARED],
        [row.as_cells() for row in rows]))
    overall = {
        s: _mean([row.avg_deviation[s] for row in rows]) for s in COMPARED
    }
    print()
    print("paper: MR ≈ +77 %, MX ≈ +17.6 % (SFX between)")
    print("measured averages: "
          + ", ".join(f"{s} {overall[s]:+.1f} %" for s in COMPARED))


if __name__ == "__main__":
    main()
