"""Paper Fig. 7 — efficiency of fault tolerance policy assignment.

For applications of 20..100 processes (2–6 nodes, k = 3..7, drawn per
seed as in §6) the experiment measures the fault tolerance overhead

    FTO(s) = (L_s − L_nft) / L_nft × 100

of every strategy ``s`` and reports the average percentage deviation of
MR, SFX and MX from the MXR baseline:

    dev(s) = (FTO(s) − FTO(MXR)) / FTO(MXR) × 100.

The paper reports MXR beating MR by 77 % and MX by 17.6 % on average,
with SFX in between; what this reproduction asserts is the ordering
``0 = dev(MXR) < dev(MX) < dev(SFX) < dev(MR)`` and the magnitude
regimes (MR worse by tens of percent, MX by double digits).

The sweep is expressed as a grid of independent (size, seed) cells and
executed by :mod:`repro.engine` — serially or across worker processes
(``run_fig7(..., workers=N)`` / ``repro batch``), with one
:class:`~repro.eval.EvaluatorPool` per cell shared by the
NFT baseline and all four strategies.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from collections.abc import Mapping, Sequence

from repro.engine.cache import EvaluatorPool
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob
from repro.engine.runner import BatchEngine, EngineConfig, JobOutcome
from repro.experiments.reporting import (
    group_cells_by_size,
    mean,
    render_rows,
)
from repro.model.fault_model import FaultModel
from repro.schedule.analysis import percentage_deviation
from repro.synthesis.strategies import nft_baseline, synthesize
from repro.synthesis.tabu import TabuSettings
from repro.utils.rng import derive_seed
from repro.workloads.generator import (
    generate_workload,
    paper_experiment_config,
)

#: Strategies compared against the MXR baseline, in plot order.
COMPARED = ("MR", "SFX", "MX")

#: Import-path runner reference resolved by engine workers.
CELL_RUNNER = "repro.experiments.fig7:run_fig7_cell"


@dataclass(frozen=True)
class Fig7Config:
    """Sweep configuration.

    ``paper`` uses the paper's five sizes; ``quick`` (the default for
    benchmarks) trades sweep width for runtime.
    """

    sizes: tuple[int, ...] = (20, 40, 60, 80, 100)
    seeds: tuple[int, ...] = (1, 2, 3)
    settings: TabuSettings = field(default_factory=TabuSettings)

    @classmethod
    def quick(cls) -> "Fig7Config":
        """Small sweep for CI/benchmarks."""
        return cls(
            sizes=(20, 40),
            seeds=(1, 2),
            settings=TabuSettings(iterations=16, neighborhood=12,
                                  bus_contention=False),
        )

    @classmethod
    def paper(cls) -> "Fig7Config":
        """The full sweep of the paper's Fig. 7."""
        return cls()


@dataclass
class Fig7Row:
    """One point per strategy and application size."""

    processes: int
    samples: int
    avg_fto_mxr: float
    avg_deviation: dict[str, float]

    def as_cells(self) -> list:
        return ([self.processes, self.samples,
                 f"{self.avg_fto_mxr:.1f}"]
                + [f"{self.avg_deviation[s]:.1f}" for s in COMPARED])


def fig7_jobs(config: Fig7Config | None = None) -> list[BatchJob]:
    """Expand the sweep into one engine job per (size, seed) cell."""
    config = config or Fig7Config()
    return grid_jobs(
        CELL_RUNNER,
        {"size": config.sizes, "seed": config.seeds},
        prefix="fig7",
        common={"settings": asdict(config.settings)},
    )


def run_fig7_cell(params: Mapping[str, object]) -> dict:
    """One sweep cell: all strategies on one (size, seed) workload.

    Pure function of its params (the engine's worker contract): the
    tabu seed is derived from the sweep seed plus the grid coordinates
    with :func:`repro.utils.rng.derive_seed`, so cells are reproducible
    in isolation and independent of execution order. One evaluator
    pool is shared by the NFT baseline and all four strategies.
    """
    size = int(params["size"])
    seed = int(params["seed"])
    base = TabuSettings(**params["settings"])
    settings = replace(base, seed=derive_seed(base.seed, "fig7",
                                              size, seed))
    gen_config, k = paper_experiment_config(size, seed)
    app, arch = generate_workload(gen_config)
    fault_model = FaultModel(k=k)
    pool = EvaluatorPool()
    baseline = nft_baseline(app, arch, settings, cache=pool)
    mxr = synthesize(app, arch, fault_model, "MXR", settings=settings,
                     baseline=baseline, cache=pool)
    deviations: dict[str, float] = {}
    evaluations = mxr.evaluations
    for strategy in COMPARED:
        result = synthesize(app, arch, fault_model, strategy,
                            settings=settings, baseline=baseline,
                            cache=pool)
        deviations[strategy] = percentage_deviation(result.fto, mxr.fto)
        evaluations += result.evaluations - baseline.evaluations
    stats = pool.stats().estimates
    return {
        "size": size,
        "seed": seed,
        "nodes": gen_config.nodes,
        "k": k,
        "fto_mxr": mxr.fto,
        "deviations": deviations,
        "evaluations": evaluations,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_entries": stats.entries,
    }


def rows_from_cells(cells: Sequence[Mapping], *,
                    sizes: Sequence[int] | None = None) -> list[Fig7Row]:
    """Aggregate per-cell results into one row per application size."""
    return [
        Fig7Row(
            processes=size,
            samples=len(group),
            avg_fto_mxr=mean([c["fto_mxr"] for c in group]),
            avg_deviation={
                s: mean([c["deviations"][s] for c in group])
                for s in COMPARED
            },
        )
        for size, group in group_cells_by_size(cells, sizes)
    ]


def _print_cell(outcome: JobOutcome) -> None:
    cell = outcome.result
    resumed = " (resumed)" if outcome.from_checkpoint else ""
    print(f"  size={cell['size']} seed={cell['seed']} "
          f"nodes={cell['nodes']} k={cell['k']} "
          f"FTO(MXR)={cell['fto_mxr']:.1f}%{resumed}")


def run_fig7(config: Fig7Config | None = None, *, verbose: bool = False,
             workers: int = 1,
             engine_config: EngineConfig | None = None,
             ) -> list[Fig7Row]:
    """Run the sweep and return one row per application size."""
    config = config or Fig7Config()
    engine = BatchEngine(engine_config
                         or EngineConfig(workers=workers))
    report = engine.run(fig7_jobs(config),
                        progress=_print_cell if verbose else None)
    return rows_from_cells(report.results(), sizes=config.sizes)


def main() -> None:
    """CLI entry point: the full paper sweep."""
    rows = run_fig7(Fig7Config.paper(), verbose=True)
    print()
    print("Fig. 7 — avg % deviation of FTO from the MXR baseline")
    print(render_rows(
        ["processes", "samples", "FTO(MXR) %"] + [f"dev {s} %"
                                                  for s in COMPARED],
        [row.as_cells() for row in rows]))
    overall = {
        s: mean([row.avg_deviation[s] for row in rows]) for s in COMPARED
    }
    print()
    print("paper: MR ≈ +77 %, MX ≈ +17.6 % (SFX between)")
    print("measured averages: "
          + ", ".join(f"{s} {overall[s]:+.1f} %" for s in COMPARED))


if __name__ == "__main__":
    main()
