"""Paper Fig. 8 — efficiency of checkpoint optimization.

For applications of 40..100 processes using rollback recovery with
checkpointing, two checkpoint-count assignments are compared on the
same optimized mapping:

* **baseline [27]**: each process gets its isolated optimum
  ``n⁰ = sqrt(kC/(α+χ))`` (strategy ``MC``);
* **optimized [15]**: the global steepest-descent of
  :mod:`repro.synthesis.checkpoint_opt` (strategy ``MC_GLOBAL``).

Reported is the average percentage deviation of the baseline's FTO
from the optimized FTO — the paper's y-axis, where "larger deviation
means smaller overhead" for the proposed technique:

    dev = (FTO_27 − FTO_15) / FTO_27 × 100.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import render_rows
from repro.model.fault_model import FaultModel
from repro.synthesis.strategies import nft_baseline, synthesize
from repro.synthesis.tabu import TabuSettings
from repro.workloads.generator import GeneratorConfig, generate_workload
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class Fig8Config:
    """Sweep configuration for the checkpointing experiment."""

    sizes: tuple[int, ...] = (40, 60, 80, 100)
    seeds: tuple[int, ...] = (1, 2, 3)
    settings: TabuSettings = field(default_factory=TabuSettings)
    #: Fault budgets drawn from this range per sample (checkpointing
    #: pays off with several faults; the paper used k up to 7).
    k_range: tuple[int, int] = (3, 6)
    #: Checkpointing overheads are the lever of this experiment; the
    #: fractions are higher than Fig. 7's defaults so the χ/α trade-off
    #: is visible, as in [15]'s setup.
    chi_fraction: float = 0.10
    alpha_fraction: float = 0.05

    @classmethod
    def quick(cls) -> "Fig8Config":
        """Small sweep for CI/benchmarks."""
        return cls(
            sizes=(40, 60),
            seeds=(1,),
            settings=TabuSettings(iterations=12, neighborhood=10,
                                  bus_contention=False),
        )

    @classmethod
    def paper(cls) -> "Fig8Config":
        """The full sweep of the paper's Fig. 8."""
        return cls()


@dataclass
class Fig8Row:
    """One data point: avg deviation for one application size."""

    processes: int
    samples: int
    avg_fto_baseline: float
    avg_fto_optimized: float
    avg_deviation: float

    def as_cells(self) -> list:
        return [self.processes, self.samples,
                f"{self.avg_fto_baseline:.1f}",
                f"{self.avg_fto_optimized:.1f}",
                f"{self.avg_deviation:.1f}"]


def run_fig8(config: Fig8Config | None = None, *, verbose: bool = False,
             ) -> list[Fig8Row]:
    """Run the sweep and return one row per application size."""
    config = config or Fig8Config()
    rows: list[Fig8Row] = []
    for size in config.sizes:
        devs: list[float] = []
        base_ftos: list[float] = []
        opt_ftos: list[float] = []
        for seed in config.seeds:
            rng = DeterministicRng(seed * 271 + size)
            nodes = rng.randint(2, 6)
            k = rng.randint(*config.k_range)
            gen_config = GeneratorConfig(
                processes=size,
                nodes=nodes,
                seed=seed * 7919 + size + 17,
                chi_fraction=config.chi_fraction,
                alpha_fraction=config.alpha_fraction,
            )
            app, arch = generate_workload(gen_config)
            fault_model = FaultModel(k=k)
            settings = TabuSettings(
                iterations=config.settings.iterations,
                neighborhood=config.settings.neighborhood,
                tenure=config.settings.tenure,
                seed=config.settings.seed + seed,
                no_improve_restart=config.settings.no_improve_restart,
                restart_strength=config.settings.restart_strength,
                penalty_weight=config.settings.penalty_weight,
                bus_contention=config.settings.bus_contention,
            )
            baseline = nft_baseline(app, arch, settings)
            local = synthesize(app, arch, fault_model, "MC",
                               settings=settings, baseline=baseline)
            optimized = synthesize(app, arch, fault_model, "MC_GLOBAL",
                                   settings=settings, baseline=baseline)
            fto_baseline = local.fto
            fto_optimized = optimized.fto
            base_ftos.append(fto_baseline)
            opt_ftos.append(fto_optimized)
            if fto_baseline > 0:
                devs.append((fto_baseline - fto_optimized)
                            / fto_baseline * 100.0)
            else:
                devs.append(0.0)
            if verbose:
                print(f"  size={size} seed={seed} nodes={nodes} k={k} "
                      f"FTO[27]={fto_baseline:.1f}% "
                      f"FTO[15]={fto_optimized:.1f}%")
        rows.append(Fig8Row(
            processes=size,
            samples=len(config.seeds),
            avg_fto_baseline=sum(base_ftos) / len(base_ftos),
            avg_fto_optimized=sum(opt_ftos) / len(opt_ftos),
            avg_deviation=sum(devs) / len(devs),
        ))
    return rows


def main() -> None:
    """CLI entry point: the full paper sweep."""
    rows = run_fig8(Fig8Config.paper(), verbose=True)
    print()
    print("Fig. 8 — avg % deviation of the FTO of global checkpoint "
          "optimization [15] from the per-process baseline [27]")
    print(render_rows(
        ["processes", "samples", "FTO[27] %", "FTO[15] %",
         "deviation %"],
        [row.as_cells() for row in rows]))
    print()
    print("paper: deviation grows with application size "
          "(larger deviation = smaller overhead)")


if __name__ == "__main__":
    main()
