"""Paper Fig. 8 — efficiency of checkpoint optimization.

For applications of 40..100 processes using rollback recovery with
checkpointing, two checkpoint-count assignments are compared on the
same optimized mapping:

* **baseline [27]**: each process gets its isolated optimum
  ``n⁰ = sqrt(kC/(α+χ))`` (strategy ``MC``);
* **optimized [15]**: the global steepest-descent of
  :mod:`repro.synthesis.checkpoint_opt` (strategy ``MC_GLOBAL``).

Reported is the average percentage deviation of the baseline's FTO
from the optimized FTO — the paper's y-axis, where "larger deviation
means smaller overhead" for the proposed technique:

    dev = (FTO_27 − FTO_15) / FTO_27 × 100.

Like Fig. 7, the sweep is a grid of independent (size, seed) cells
executed by :mod:`repro.engine` with a per-cell estimation cache —
particularly effective here because the MC and MC_GLOBAL runs share
their whole mapping search.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from collections.abc import Mapping, Sequence

from repro.engine.cache import EvaluatorPool
from repro.engine.grid import grid_jobs
from repro.engine.jobs import BatchJob
from repro.engine.runner import BatchEngine, EngineConfig, JobOutcome
from repro.experiments.reporting import (
    group_cells_by_size,
    mean,
    render_rows,
)
from repro.model.fault_model import FaultModel
from repro.synthesis.strategies import nft_baseline, synthesize
from repro.synthesis.tabu import TabuSettings
from repro.utils.rng import DeterministicRng, derive_seed
from repro.workloads.generator import GeneratorConfig, generate_workload

#: Import-path runner reference resolved by engine workers.
CELL_RUNNER = "repro.experiments.fig8:run_fig8_cell"


@dataclass(frozen=True)
class Fig8Config:
    """Sweep configuration for the checkpointing experiment."""

    sizes: tuple[int, ...] = (40, 60, 80, 100)
    seeds: tuple[int, ...] = (1, 2, 3)
    settings: TabuSettings = field(default_factory=TabuSettings)
    #: Fault budgets drawn from this range per sample (checkpointing
    #: pays off with several faults; the paper used k up to 7).
    k_range: tuple[int, int] = (3, 6)
    #: Checkpointing overheads are the lever of this experiment; the
    #: fractions are higher than Fig. 7's defaults so the χ/α trade-off
    #: is visible, as in [15]'s setup.
    chi_fraction: float = 0.10
    alpha_fraction: float = 0.05

    @classmethod
    def quick(cls) -> "Fig8Config":
        """Small sweep for CI/benchmarks."""
        return cls(
            sizes=(40, 60),
            seeds=(1,),
            settings=TabuSettings(iterations=12, neighborhood=10,
                                  bus_contention=False),
        )

    @classmethod
    def paper(cls) -> "Fig8Config":
        """The full sweep of the paper's Fig. 8."""
        return cls()


@dataclass
class Fig8Row:
    """One data point: avg deviation for one application size."""

    processes: int
    samples: int
    avg_fto_baseline: float
    avg_fto_optimized: float
    avg_deviation: float

    def as_cells(self) -> list:
        return [self.processes, self.samples,
                f"{self.avg_fto_baseline:.1f}",
                f"{self.avg_fto_optimized:.1f}",
                f"{self.avg_deviation:.1f}"]


def fig8_jobs(config: Fig8Config | None = None) -> list[BatchJob]:
    """Expand the sweep into one engine job per (size, seed) cell."""
    config = config or Fig8Config()
    return grid_jobs(
        CELL_RUNNER,
        {"size": config.sizes, "seed": config.seeds},
        prefix="fig8",
        common={
            "settings": asdict(config.settings),
            "k_range": list(config.k_range),
            "chi_fraction": config.chi_fraction,
            "alpha_fraction": config.alpha_fraction,
        },
    )


def run_fig8_cell(params: Mapping[str, object]) -> dict:
    """One sweep cell: MC vs MC_GLOBAL on one (size, seed) workload."""
    size = int(params["size"])
    seed = int(params["seed"])
    base = TabuSettings(**params["settings"])
    k_lo, k_hi = params["k_range"]
    settings = replace(base, seed=derive_seed(base.seed, "fig8",
                                              size, seed))
    rng = DeterministicRng(seed * 271 + size)
    nodes = rng.randint(2, 6)
    k = rng.randint(int(k_lo), int(k_hi))
    gen_config = GeneratorConfig(
        processes=size,
        nodes=nodes,
        seed=seed * 7919 + size + 17,
        chi_fraction=float(params["chi_fraction"]),
        alpha_fraction=float(params["alpha_fraction"]),
    )
    app, arch = generate_workload(gen_config)
    fault_model = FaultModel(k=k)
    pool = EvaluatorPool()
    baseline = nft_baseline(app, arch, settings, cache=pool)
    local = synthesize(app, arch, fault_model, "MC",
                       settings=settings, baseline=baseline,
                       cache=pool)
    optimized = synthesize(app, arch, fault_model, "MC_GLOBAL",
                           settings=settings, baseline=baseline,
                           cache=pool)
    fto_baseline = local.fto
    fto_optimized = optimized.fto
    if fto_baseline > 0:
        deviation = (fto_baseline - fto_optimized) / fto_baseline * 100.0
    else:
        deviation = 0.0
    stats = pool.stats().estimates
    return {
        "size": size,
        "seed": seed,
        "nodes": nodes,
        "k": k,
        "fto_baseline": fto_baseline,
        "fto_optimized": fto_optimized,
        "deviation": deviation,
        "evaluations": (local.evaluations + optimized.evaluations
                        - baseline.evaluations),
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_entries": stats.entries,
    }


def rows_from_cells(cells: Sequence[Mapping], *,
                    sizes: Sequence[int] | None = None) -> list[Fig8Row]:
    """Aggregate per-cell results into one row per application size."""
    return [
        Fig8Row(
            processes=size,
            samples=len(group),
            avg_fto_baseline=mean([c["fto_baseline"] for c in group]),
            avg_fto_optimized=mean([c["fto_optimized"]
                                    for c in group]),
            avg_deviation=mean([c["deviation"] for c in group]),
        )
        for size, group in group_cells_by_size(cells, sizes)
    ]


def _print_cell(outcome: JobOutcome) -> None:
    cell = outcome.result
    resumed = " (resumed)" if outcome.from_checkpoint else ""
    print(f"  size={cell['size']} seed={cell['seed']} "
          f"nodes={cell['nodes']} k={cell['k']} "
          f"FTO[27]={cell['fto_baseline']:.1f}% "
          f"FTO[15]={cell['fto_optimized']:.1f}%{resumed}")


def run_fig8(config: Fig8Config | None = None, *, verbose: bool = False,
             workers: int = 1,
             engine_config: EngineConfig | None = None,
             ) -> list[Fig8Row]:
    """Run the sweep and return one row per application size."""
    config = config or Fig8Config()
    engine = BatchEngine(engine_config
                         or EngineConfig(workers=workers))
    report = engine.run(fig8_jobs(config),
                        progress=_print_cell if verbose else None)
    return rows_from_cells(report.results(), sizes=config.sizes)


def main() -> None:
    """CLI entry point: the full paper sweep."""
    rows = run_fig8(Fig8Config.paper(), verbose=True)
    print()
    print("Fig. 8 — avg % deviation of the FTO of global checkpoint "
          "optimization [15] from the per-process baseline [27]")
    print(render_rows(
        ["processes", "samples", "FTO[27] %", "FTO[15] %",
         "deviation %"],
        [row.as_cells() for row in rows]))
    print()
    print("paper: deviation grows with application size "
          "(larger deviation = smaller overhead)")


if __name__ == "__main__":
    main()
