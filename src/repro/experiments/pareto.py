"""The transparency/performance Pareto sweep (``python -m
repro.experiments.pareto``).

Runs the design-space explorer (:mod:`repro.dse`) over a grid of
workloads and reports one epsilon-Pareto frontier per workload — the
multi-workload version of the paper's §3.3 trade-off discussion, and
the scenario-diversity layer on top of the explorer. Every (workload,
chunk) pair is one pure engine job, so the whole sweep shares one
:class:`~repro.engine.runner.BatchEngine` run: one process pool, one
resumable JSONL checkpoint, byte-identical serial vs parallel output.

Profiles:

* ``quick`` — one 8-process/2-node workload, a trimmed space; used by
  the CI docs job, which uploads the JSON report as an artifact;
* ``paper`` — three workload scales with the full strategy set.

Run::

    python -m repro.experiments.pareto --profile quick --workers 4 \\
        --out pareto.json --csv pareto.csv
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

from repro.dse.explorer import (
    DEFAULT_EPSILONS,
    DEFAULT_SETTINGS,
    OBJECTIVE_NAMES,
    DseConfig,
    DseReport,
    dse_jobs,
    merge_dse_cells,
)
from repro.dse.space import SpaceConfig
from repro.engine import journal
from repro.engine.backends import BACKENDS
from repro.engine.jobs import BatchJob
from repro.engine.runner import BatchEngine, EngineConfig, JobOutcome
from repro.eval.diskcache import CACHE_DIR_ENV
from repro.synthesis.tabu import TabuSettings


@dataclass(frozen=True)
class ParetoSweepConfig:
    """Sweep configuration: workload specs sharing one space."""

    workloads: tuple[Mapping[str, object], ...] = (
        {"processes": 8, "nodes": 2, "seed": 1},
    )
    space: SpaceConfig = field(default_factory=SpaceConfig)
    epsilons: tuple[float, float, float] = DEFAULT_EPSILONS
    chunks: int = 4
    seed: int = 0
    settings: TabuSettings = field(
        default_factory=lambda: DEFAULT_SETTINGS)
    max_contexts: int = 200_000

    @classmethod
    def quick(cls) -> "ParetoSweepConfig":
        """Small sweep for CI (the docs-job artifact)."""
        return cls(
            workloads=({"processes": 8, "nodes": 2, "seed": 1},),
            space=SpaceConfig(
                strategies=("MXR", "MR", "SFX"),
                k_values=(1,),
                checkpoint_counts=(0, 1),
                transparency_samples=2,
            ),
        )

    @classmethod
    def paper(cls) -> "ParetoSweepConfig":
        """The full sweep: three workload scales, full space."""
        return cls(
            workloads=(
                {"processes": 8, "nodes": 2, "seed": 1},
                {"processes": 10, "nodes": 2, "seed": 2},
                {"processes": 12, "nodes": 3, "seed": 3},
            ),
            space=SpaceConfig(
                k_values=(1, 2),
                transparency_samples=4,
            ),
        )

    def dse_configs(self) -> list[DseConfig]:
        """One explorer config per workload, sharing every other knob."""
        return [
            DseConfig(
                workload=dict(workload),
                space=self.space,
                epsilons=self.epsilons,
                chunks=self.chunks,
                seed=self.seed,
                settings=self.settings,
                max_contexts=self.max_contexts,
            )
            for workload in self.workloads
        ]


def pareto_jobs(config: ParetoSweepConfig) -> list[BatchJob]:
    """All (workload, chunk) jobs of the sweep, in workload order."""
    jobs: list[BatchJob] = []
    for dse_config in config.dse_configs():
        jobs.extend(dse_jobs(dse_config))
    return jobs


def run_pareto_sweep(config: ParetoSweepConfig, *, workers: int = 1,
                     engine_config: EngineConfig | None = None,
                     verbose: bool = False) -> list[DseReport]:
    """Run the sweep; one merged report per workload, in order."""
    engine = BatchEngine(engine_config or EngineConfig(workers=workers))

    def _progress(outcome: JobOutcome) -> None:
        cell = outcome.result
        resumed = " (resumed)" if outcome.from_checkpoint else ""
        print(f"  {outcome.job.job_id}: {cell['evaluated']} evaluated, "
              f"{len(cell['archive']['points'])} archived{resumed}")

    batch = engine.run(pareto_jobs(config),
                       progress=_progress if verbose else None)
    reports: list[DseReport] = []
    offset = 0
    for dse_config in config.dse_configs():
        outcomes = batch.outcomes[offset:offset + config.chunks]
        offset += config.chunks
        reports.append(merge_dse_cells(
            dse_config,
            [outcome.result for outcome in outcomes],
            executed=sum(1 for o in outcomes if not o.from_checkpoint),
            resumed=sum(1 for o in outcomes if o.from_checkpoint)))
    return reports


# -- exports -------------------------------------------------------------


def sweep_to_jsonable(reports: Sequence[DseReport]) -> dict:
    """Canonical JSON payload: one entry per workload."""
    return {
        "objectives": list(OBJECTIVE_NAMES),
        "workloads": [report.to_jsonable() for report in reports],
    }


def write_sweep_json(reports: Sequence[DseReport],
                     path: str | Path) -> None:
    """Write the canonical JSON sweep report (atomic replace)."""
    text = json.dumps(sweep_to_jsonable(reports), indent=2,
                      sort_keys=True)
    journal.write_atomic_text(path, text + "\n")


def write_sweep_csv(reports: Sequence[DseReport],
                    path: str | Path) -> None:
    """Write one CSV row per (workload, frontier point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["workload", "index", "id", "group",
                     *OBJECTIVE_NAMES, "transparency_degree",
                     "table_memory_bytes"])
    for report in reports:
        for point in report.frontier:
            writer.writerow([
                report.config.label,
                point.index,
                point.candidate["id"],
                point.group,
                *point.objectives,
                point.extras.get("transparency_degree"),
                point.extras.get("table_memory_bytes"),
            ])
    journal.write_atomic_text(path, buffer.getvalue())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for the sweep."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.pareto",
        description="Pareto design-space sweep over a workload grid")
    parser.add_argument("--profile", choices=("quick", "paper"),
                        default="quick")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (<=1 runs serially)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSONL checkpoint of completed chunks "
                             "(enables resume)")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="executor backend (serial, process or "
                             "workdir); default auto-selects from "
                             "--workers/--workdir")
    parser.add_argument("--workdir", default=None, metavar="DIR",
                        help="shared directory of the workdir "
                             "backend; 'repro worker' processes may "
                             "join from any host sharing it")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent evaluation cache "
                             "(REPRO_EVAL_CACHE_DIR); repeated "
                             "sweeps warm-start from it")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the canonical JSON sweep report")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="write one CSV row per frontier point")
    args = parser.parse_args(argv)

    config = (ParetoSweepConfig.paper() if args.profile == "paper"
              else ParetoSweepConfig.quick())
    if args.cache_dir:
        os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    engine_config = EngineConfig(workers=args.workers,
                                 checkpoint_path=args.checkpoint,
                                 backend=args.backend,
                                 workdir=args.workdir)
    reports = run_pareto_sweep(config, engine_config=engine_config,
                               verbose=True)
    for report in reports:
        print()
        for line in report.summary_lines():
            print(line)
        print()
        print(report.frontier_table())
    if args.out:
        write_sweep_json(reports, args.out)
        print(f"\nreport written to {args.out}")
    if args.csv:
        write_sweep_csv(reports, args.csv)
        print(f"CSV written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
