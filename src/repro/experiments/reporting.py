"""Result tables and cell aggregation shared by the experiments."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.schedule.estimation_cache import CacheStats
from repro.utils.textgrid import TextGrid


def render_rows(header: Sequence[str], rows: Sequence[Sequence[object]],
                ) -> str:
    """Render experiment rows as an aligned text table."""
    grid = TextGrid(header)
    for row in rows:
        grid.add_row(row)
    return grid.render()


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    return sum(values) / len(values)


def cache_stats_from_cells(cells: Sequence[Mapping]) -> CacheStats:
    """Merge the per-cell estimation-cache counters of a sweep.

    Every engine-executed cell (fig7/fig8/dse/campaign chunks) reports
    its evaluator pool's estimate-tier ``cache_hits`` /
    ``cache_misses`` (and, since the unified evaluation core,
    ``cache_entries``); this folds them into one
    :class:`~repro.schedule.estimation_cache.CacheStats` so reports
    and benchmarks stop recomputing hit rates by hand. Cells restored
    from pre-existing checkpoints may lack the keys; they count as
    zero.
    """
    return CacheStats(
        hits=sum(int(c.get("cache_hits", 0)) for c in cells),
        misses=sum(int(c.get("cache_misses", 0)) for c in cells),
        entries=sum(int(c.get("cache_entries", 0)) for c in cells),
    )


def group_cells_by_size(
    cells: Sequence[Mapping],
    sizes: Sequence[int] | None = None,
) -> list[tuple[int, list[Mapping]]]:
    """Group sweep-cell results by application size.

    ``sizes`` fixes the row order (the sweep configuration's order);
    without it, sizes appear sorted ascending.
    """
    by_size: dict[int, list[Mapping]] = {}
    for cell in cells:
        by_size.setdefault(int(cell["size"]), []).append(cell)
    order = sizes if sizes is not None else sorted(by_size)
    return [(size, by_size[size]) for size in order]
