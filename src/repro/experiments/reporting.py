"""Plain-text result tables for the experiment CLIs."""

from __future__ import annotations

from collections.abc import Sequence

from repro.utils.textgrid import TextGrid


def render_rows(header: Sequence[str], rows: Sequence[Sequence[object]],
                ) -> str:
    """Render experiment rows as an aligned text table."""
    grid = TextGrid(header)
    for row in rows:
        grid.add_row(row)
    return grid.render()
