"""Experiment harnesses regenerating the paper's evaluation figures.

* :mod:`repro.experiments.fig7` — efficiency of fault tolerance policy
  assignment: avg % deviation of the FTO of MR / SFX / MX from the MXR
  baseline over application size (paper Fig. 7);
* :mod:`repro.experiments.fig8` — efficiency of checkpoint
  optimization: avg % deviation of the FTO of the global checkpoint
  optimization from the per-process [27] baseline (paper Fig. 8);
* :mod:`repro.experiments.campaign` — beyond the paper: estimate vs
  exact tables vs Monte Carlo simulated execution across the workload
  grid (the validation loop the paper leaves open);
* :mod:`repro.experiments.pareto` — beyond the paper: the
  transparency/performance Pareto sweep, one epsilon-Pareto frontier
  per workload via the design-space explorer (:mod:`repro.dse`).

All are runnable as modules (``python -m repro.experiments.fig7``) and
wrapped by the pytest-benchmark harnesses in ``benchmarks/``.
"""

from repro.experiments.campaign import (
    CampaignRow,
    CampaignSweepConfig,
    run_campaign_sweep,
)
from repro.experiments.fig7 import Fig7Config, Fig7Row, run_fig7
from repro.experiments.fig8 import Fig8Config, Fig8Row, run_fig8
from repro.experiments.pareto import (
    ParetoSweepConfig,
    run_pareto_sweep,
)

__all__ = [
    "CampaignRow",
    "CampaignSweepConfig",
    "Fig7Config",
    "Fig7Row",
    "Fig8Config",
    "Fig8Row",
    "ParetoSweepConfig",
    "run_campaign_sweep",
    "run_fig7",
    "run_fig8",
    "run_pareto_sweep",
]
