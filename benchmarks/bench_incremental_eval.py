"""Benchmark: incremental evaluation vs full re-evaluation.

Two measurements on a Fig. 7-scale workload:

* **micro** — a seeded random walk of single moves (remap + policy,
  the tabu neighborhood mix) evaluated twice: through
  :meth:`~repro.schedule.estimation.EstimatorState.reevaluate`
  (incremental) and through a from-scratch
  :func:`~repro.schedule.estimation.estimate_ft_schedule` per step.
  Every step asserts exact estimate equality (the oracle invariant),
  and the run asserts the incremental path beats full re-evaluation
  by the pinned ratio floor below.
* **end-to-end** — one full ``synthesize()`` with the evaluation
  core's incremental path on vs forced off; the results (including
  the tabu trajectory) must be bit-identical, and the incremental run
  must not be slower.

Run:  pytest benchmarks/bench_incremental_eval.py --benchmark-only

``REPRO_BENCH_PROFILE=full`` widens the workload (default: quick).
"""

from __future__ import annotations

import os
import time

from repro.eval import Evaluator, EvaluatorPool, ScheduleProblem
from repro.model import FaultModel
from repro.policies import PolicyAssignment, ProcessPolicy
from repro.schedule.estimation import (
    EstimatorState,
    estimate_ft_schedule,
)
from repro.synthesis import TabuSearch, TabuSettings, initial_mapping, synthesize
from repro.synthesis.moves import PolicyMove, RemapMove
from repro.synthesis.tabu import policy_candidates
from repro.utils.rng import DeterministicRng
from repro.workloads.generator import (
    generate_workload,
    paper_experiment_config,
)

QUICK = os.environ.get("REPRO_BENCH_PROFILE", "quick") != "full"

#: Fig. 7 sizes: the paper sweeps 20..100 processes.
SIZE = 40 if QUICK else 60
WALK_STEPS = 300 if QUICK else 600
SETTINGS = TabuSettings(iterations=16, neighborhood=12,
                        bus_contention=False)

#: Acceptance floor for the incremental path on the quick profile.
#: A ratio against a moving baseline: the denominator is a *full*
#: kernel evaluation, so every full-path speedup (TDMA slot-search
#: rewrite, kernel loop hoisting) compresses the ratio even while
#: absolute incremental throughput rises. Re-pinned 1.5 -> 1.15 when
#: the full path got ~25-40% faster; both absolute rates and the
#: ratio improved against the previous pin's commit.
MIN_SPEEDUP = 1.15


def _workload():
    config, k = paper_experiment_config(SIZE, 1)
    app, arch = generate_workload(config)
    return app, arch, k


def _draw_move(rng, app, arch, policies, mapping, space):
    name = rng.choice(app.process_names)
    process = app.process(name)
    if rng.random() < 0.4:
        return PolicyMove(name, rng.choice(list(space(name))))
    policy = policies.of(name)
    copy_index = rng.randint(0, len(policy.copies) - 1)
    if copy_index == 0 and process.fixed_node is not None:
        return None
    options = [n for n in process.allowed_nodes
               if n in arch.node_names
               and n != mapping.node_of(name, copy_index)]
    if not options:
        return None
    return RemapMove(name, copy_index, rng.choice(options))


def _move_walk(app, arch, k, steps):
    """A seeded mixed move walk; returns (parent state, move) pairs."""
    fm = FaultModel(k=k)
    space = policy_candidates(app, k, allow_combined=k >= 2)
    policies = PolicyAssignment.uniform(app,
                                        ProcessPolicy.re_execution(k))
    mapping = initial_mapping(app, arch, policies)
    state = EstimatorState.compute(app, arch, mapping, policies, fm,
                                   bus_contention=False)
    rng = DeterministicRng(17)
    walk = []
    while len(walk) < steps:
        move = _draw_move(rng, app, arch, policies, mapping, space)
        if move is None or not move.applies_to((policies, mapping)):
            continue
        new_policies, new_mapping = move.apply((policies, mapping),
                                               app)
        walk.append((state, new_policies, new_mapping, move.process))
        policies, mapping = new_policies, new_mapping
        state = state.reevaluate(policies, mapping, move.process)
    return fm, walk


def test_incremental_beats_full_reevaluation(benchmark):
    app, arch, k = _workload()
    fm, walk = _move_walk(app, arch, k, WALK_STEPS)

    # Exactness first: every incremental step equals the oracle.
    for state, policies, mapping, changed in walk[:40]:
        incremental = state.reevaluate(policies, mapping, changed)
        oracle = estimate_ft_schedule(app, arch, mapping, policies,
                                      fm, bus_contention=False)
        assert incremental.estimate.schedule_length == \
            oracle.schedule_length
        assert incremental.estimate.timings == oracle.timings

    def run_incremental():
        for state, policies, mapping, changed in walk:
            state.reevaluate(policies, mapping, changed)

    started = time.perf_counter()
    for state, policies, mapping, changed in walk:
        estimate_ft_schedule(app, arch, mapping, policies, fm,
                             bus_contention=False)
    full_time = time.perf_counter() - started

    started = time.perf_counter()
    benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    incremental_time = time.perf_counter() - started

    speedup = full_time / incremental_time if incremental_time else 0.0
    benchmark.extra_info["processes"] = SIZE
    benchmark.extra_info["k"] = k
    benchmark.extra_info["moves"] = len(walk)
    benchmark.extra_info["full_evals_per_sec"] = round(
        len(walk) / full_time, 1)
    benchmark.extra_info["incremental_evals_per_sec"] = round(
        len(walk) / incremental_time, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= MIN_SPEEDUP, (
        f"incremental evaluation only {speedup:.2f}x faster than full "
        f"re-evaluation (required {MIN_SPEEDUP}x; "
        f"{len(walk)} moves, {SIZE} processes)")


def test_synthesize_end_to_end_identical_and_faster(benchmark):
    app, arch, k = _workload()
    fm = FaultModel(k=k)

    # Trajectory identity: the tabu search walks the exact same
    # history with the incremental path on and forced off.
    problem = ScheduleProblem.for_workload(app, arch, fm)
    policies = PolicyAssignment.uniform(app,
                                        ProcessPolicy.re_execution(k))
    start = (policies, initial_mapping(app, arch, policies))
    histories = []
    for incremental in (True, False):
        search = TabuSearch(
            app, arch, fm, settings=SETTINGS,
            policy_space=policy_candidates(app, k,
                                           allow_combined=k >= 2),
            evaluator=Evaluator(problem, incremental=incremental))
        histories.append(search.optimize(start).history)
    assert histories[0] == histories[1], \
        "incremental evaluation changed the tabu trajectory"

    started = time.perf_counter()
    full = synthesize(app, arch, fm, "MXR", settings=SETTINGS,
                      cache=EvaluatorPool(incremental=False))
    full_time = time.perf_counter() - started

    incremental = benchmark.pedantic(
        lambda: synthesize(app, arch, fm, "MXR", settings=SETTINGS,
                           cache=EvaluatorPool(incremental=True)),
        rounds=1, iterations=1)
    incremental_time = benchmark.stats.stats.total

    assert incremental.schedule_length == full.schedule_length
    assert incremental.nft_length == full.nft_length
    assert incremental.evaluations == full.evaluations
    assert incremental.mapping == full.mapping
    assert dict(incremental.policies.items()) == \
        dict(full.policies.items())

    speedup = (full_time / incremental_time if incremental_time
               else 0.0)
    benchmark.extra_info["processes"] = SIZE
    benchmark.extra_info["k"] = k
    benchmark.extra_info["evaluations"] = incremental.evaluations
    benchmark.extra_info["full_seconds"] = round(full_time, 2)
    benchmark.extra_info["incremental_seconds"] = round(
        incremental_time, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # A demonstrable end-to-end win, with slack for CI noise (cache
    # hits dominate revisited solutions either way).
    assert speedup >= 1.05, (
        f"synthesize() with incremental evaluation was not faster: "
        f"{speedup:.2f}x (full {full_time:.2f}s, incremental "
        f"{incremental_time:.2f}s)")
