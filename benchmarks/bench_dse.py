"""Benchmark: design-space explorer throughput and determinism.

Runs one exploration twice — serially and across a worker pool — and
records candidate evaluations per second plus the estimation cache hit
rate in ``extra_info``. Two properties are asserted:

* the merged report is byte-identical serial vs parallel (the
  frontier merge is a set function — the explorer's core guarantee);
* every candidate was either evaluated or explicitly skipped (no
  silent drops).

Run:  pytest benchmarks/bench_dse.py --benchmark-only

``REPRO_BENCH_PROFILE=full`` widens the space (default: quick).
"""

from __future__ import annotations

import os
import time

from repro.dse import DseConfig, SpaceConfig, run_dse
from repro.engine import EngineConfig

QUICK = os.environ.get("REPRO_BENCH_PROFILE", "quick") != "full"

CONFIG = DseConfig(
    workload={"processes": 8, "nodes": 2, "seed": 1},
    space=SpaceConfig(
        strategies=("MXR", "SFX") if QUICK else ("MXR", "MX", "MR",
                                                 "SFX"),
        k_values=(1,) if QUICK else (1, 2),
        checkpoint_counts=(0, 1) if QUICK else (0, 1, 2),
        transparency_samples=1 if QUICK else 4,
    ),
    chunks=4,
)
WORKERS = min(4, os.cpu_count() or 1)


def test_dse_throughput(benchmark):
    started = time.perf_counter()
    serial = run_dse(CONFIG, engine_config=EngineConfig(workers=1))
    serial_time = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: run_dse(CONFIG,
                        engine_config=EngineConfig(workers=WORKERS)),
        rounds=1, iterations=1)

    # The explorer's core guarantee: fan-out never changes the frontier.
    assert parallel.to_json() == serial.to_json()
    # No silent drops: every candidate accounted for.
    assert (serial.evaluated + serial.duplicates + len(serial.skipped)
            == serial.candidates_total)
    assert len(serial.frontier) >= 3

    evals_per_sec = (serial.evaluated / serial_time
                     if serial_time else 0.0)
    benchmark.extra_info["candidates"] = serial.candidates_total
    benchmark.extra_info["evaluated"] = serial.evaluated
    benchmark.extra_info["frontier"] = len(serial.frontier)
    benchmark.extra_info["serial_seconds"] = round(serial_time, 3)
    benchmark.extra_info["evaluations_per_second"] = round(
        evals_per_sec, 2)
    benchmark.extra_info["cache_hit_rate_pct"] = round(
        serial.cache_hit_rate, 1)
    benchmark.extra_info["workers"] = WORKERS
