"""Throughput of the runtime simulator and the exhaustive verifier on
the paper's Fig. 5 example (15 fault scenarios, k = 2)."""

from __future__ import annotations

from repro.ftcpg import FaultPlan
from repro.policies import PolicyAssignment, ProcessPolicy
from repro.runtime import simulate, verify_tolerance
from repro.schedule import synthesize_schedule
from repro.workloads import fig5_example


def _setup():
    app, arch, fault_model, transparency, mapping = fig5_example()
    policies = PolicyAssignment.uniform(
        app, ProcessPolicy.re_execution(fault_model.k))
    schedule = synthesize_schedule(app, arch, mapping, policies,
                                   fault_model, transparency)
    return app, arch, mapping, policies, fault_model, transparency, \
        schedule


def test_single_simulation(benchmark):
    app, arch, mapping, policies, fm, _tr, schedule = _setup()
    plan = FaultPlan({("P1", 0): (1,), ("P4", 0): (1,)})

    result = benchmark(simulate, app, arch, mapping, policies, fm,
                       schedule, plan)
    assert result.ok, result.errors


def test_exhaustive_verification(benchmark):
    app, arch, mapping, policies, fm, tr, schedule = _setup()

    report = benchmark(verify_tolerance, app, arch, mapping, policies,
                       fm, schedule, tr)
    benchmark.extra_info["scenarios"] = report.scenarios
    assert report.ok
