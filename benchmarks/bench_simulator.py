"""Throughput of the runtime simulator and the exhaustive verifier on
the paper's Fig. 5 example (15 fault scenarios, k = 2), plus the
DES-vs-replay throughput floor.

The event-driven core routes table-expressible scenarios through its
deterministic queue into the *same* replay handlers, so it pays the
queue overhead (push, eps-clustered pops) on top of replay's work.
The floor pins that overhead: on a Fig. 7-scale fault-free run the
DES must stay **within 3x** of straight table replay
(``des_ratio = replay_time / des_time >= 1/3``), while producing the
bit-identical result — the tax for one engine serving both the oracle
scenarios and the DES-only axes.

Run:  pytest benchmarks/bench_simulator.py --benchmark-only

``REPRO_BENCH_PROFILE=full`` widens the workload (default: quick).
"""

from __future__ import annotations

import os
import time

from repro.campaigns.runner import synthesize_campaign_design
from repro.des import DesSimulator
from repro.eval.core import EvaluatorPool
from repro.ftcpg import FaultPlan
from repro.model import FaultModel
from repro.policies import PolicyAssignment, ProcessPolicy
from repro.runtime import simulate, verify_tolerance
from repro.schedule import synthesize_schedule
from repro.synthesis.tabu import TabuSettings
from repro.verify.runner import load_verify_workload
from repro.workloads import fig5_example

QUICK = os.environ.get("REPRO_BENCH_PROFILE", "quick") != "full"

#: Fig. 7 territory: the paper sweeps 20..80 processes.
FIG7_PROCESSES = 20 if QUICK else 30
FIG7_REPS = 50 if QUICK else 100

#: Acceptance floor: DES within 3x of table replay (both profiles).
MIN_DES_RATIO = 1.0 / 3.0


def _setup():
    app, arch, fault_model, transparency, mapping = fig5_example()
    policies = PolicyAssignment.uniform(
        app, ProcessPolicy.re_execution(fault_model.k))
    schedule = synthesize_schedule(app, arch, mapping, policies,
                                   fault_model, transparency)
    return app, arch, mapping, policies, fault_model, transparency, \
        schedule


def test_single_simulation(benchmark):
    app, arch, mapping, policies, fm, _tr, schedule = _setup()
    plan = FaultPlan({("P1", 0): (1,), ("P4", 0): (1,)})

    result = benchmark(simulate, app, arch, mapping, policies, fm,
                       schedule, plan)
    assert result.ok, result.errors


def test_exhaustive_verification(benchmark):
    app, arch, mapping, policies, fm, tr, schedule = _setup()

    report = benchmark(verify_tolerance, app, arch, mapping, policies,
                       fm, schedule, tr)
    benchmark.extra_info["scenarios"] = report.scenarios
    assert report.ok


def _fig7_design():
    """One synthesized Fig. 7-scale design (same recipe as
    ``bench_verify``)."""
    workload = {"processes": FIG7_PROCESSES, "nodes": 3, "seed": 1}
    app, arch, __ = load_verify_workload(workload)
    pool = EvaluatorPool()
    settings = TabuSettings(iterations=6, neighborhood=6,
                            bus_contention=False)
    result = synthesize_campaign_design(app, arch, 2, "MXR", settings,
                                        1, pool=pool)
    fault_model = FaultModel(k=2)
    evaluator = pool.evaluator_for(app, arch, fault_model)
    schedule = evaluator.exact_schedule(result.policies,
                                        result.mapping)
    return app, arch, result.mapping, result.policies, fault_model, \
        schedule


def test_des_within_3x_of_replay(benchmark):
    app, arch, mapping, policies, fm, schedule = _fig7_design()
    plan = FaultPlan({})

    started = time.perf_counter()
    for __ in range(FIG7_REPS):
        replayed = simulate(app, arch, mapping, policies, fm,
                            schedule, plan)
    replay_time = time.perf_counter() - started

    des = DesSimulator(app, arch, mapping, policies, fm, schedule,
                       use_des=True)

    def _run_des():
        for __ in range(FIG7_REPS):
            result = des.simulate(plan)
        return result

    queued = benchmark.pedantic(_run_des, rounds=1, iterations=1)
    des_time = benchmark.stats.stats.total

    # One engine, two paths, identical bits.
    assert queued == replayed

    ratio = replay_time / des_time if des_time else 0.0
    benchmark.extra_info["processes"] = FIG7_PROCESSES
    benchmark.extra_info["reps"] = FIG7_REPS
    benchmark.extra_info["replay_seconds"] = round(replay_time, 3)
    benchmark.extra_info["des_seconds"] = round(des_time, 3)
    benchmark.extra_info["des_ratio"] = round(ratio, 2)
    assert ratio >= MIN_DES_RATIO, (
        f"DES fell beyond 3x of replay: ratio {ratio:.2f} "
        f"(replay {replay_time:.3f}s, DES {des_time:.3f}s over "
        f"{FIG7_REPS} fault-free runs)")
