"""Benchmark trend gate: enforce ``floors.json`` over result files.

CI's bench-smoke job produces pytest-benchmark JSON files; this script
checks the ``extra_info`` metrics they carry against the per-benchmark
floors pinned in ``benchmarks/floors.json`` and writes one
consolidated trend record (uploaded as the ``benchmark-trend``
artifact, so regressions are both *gating* and *plottable* across
commits).

Floors deliberately pin **ratios** (speedups, hit rates), not wall
clock: shared CI runners make absolute timings noisy, while a speedup
collapsing from 30x to below its floor is a real regression whatever
the machine.

Usage::

    python benchmarks/check_floors.py RESULTS.json [MORE.json ...] \\
        --floors benchmarks/floors.json --out benchmark-trend.json

Exit status is 1 when any floored metric regressed, a floored metric
is missing from a present benchmark, a ``"required": true`` benchmark
produced no result at all, or a floor's **source bench file** (the
``benchmarks/*.py`` part of its key) contributed no records to any
result file — the last catches a result JSON dropped from the CI
wiring, which would otherwise let every floor in that file pass
silently as "missing but optional".
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from collections.abc import Sequence


def load_results(paths: Sequence[Path]) -> dict[str, dict]:
    """Index benchmark records by fullname over all result files."""
    results: dict[str, dict] = {}
    for path in paths:
        payload = json.loads(path.read_text(encoding="utf-8"))
        for record in payload.get("benchmarks", []):
            results[record["fullname"]] = record
    return results


def check(results: dict[str, dict],
          floors: dict[str, dict]) -> tuple[list[dict], list[str]]:
    """One trend row per floored benchmark, plus failure messages."""
    rows, failures = [], []
    covered_sources = {fullname.split("::")[0] for fullname in results}
    for fullname, floor in sorted(floors.items()):
        record = results.get(fullname)
        if record is None:
            source = fullname.split("::")[0]
            if source not in covered_sources:
                # No result file carried *anything* from this bench
                # file: the JSON is missing from the CI wiring, not
                # just one benchmark — never pass that silently.
                status = "no_source_json"
                failures.append(f"{fullname}: source bench JSON "
                                f"missing (no result file has "
                                f"records from {source})")
            else:
                status = "missing"
                if floor.get("required", False):
                    failures.append(f"{fullname}: no result produced "
                                    f"(required benchmark)")
            rows.append({"fullname": fullname, "status": status,
                         "floors": floor.get("min_extra_info", {})})
            continue
        extra = record.get("extra_info", {})
        metrics, status = {}, "ok"
        for metric, minimum in floor.get("min_extra_info",
                                         {}).items():
            value = extra.get(metric)
            metrics[metric] = {"value": value, "floor": minimum}
            if value is None:
                status = "failed"
                failures.append(f"{fullname}: metric {metric!r} "
                                f"missing from extra_info")
            elif float(value) < float(minimum):
                status = "failed"
                failures.append(f"{fullname}: {metric} = {value} "
                                f"below floor {minimum}")
        rows.append({
            "fullname": fullname,
            "status": status,
            "metrics": metrics,
            "extra_info": extra,
            "mean_s": record.get("stats", {}).get("mean"),
        })
    return rows, failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Check benchmark extra_info metrics against "
                    "pinned floors")
    parser.add_argument("results", nargs="+", type=Path,
                        metavar="RESULTS.json",
                        help="pytest-benchmark JSON result files")
    parser.add_argument("--floors", type=Path,
                        default=Path(__file__).with_name(
                            "floors.json"),
                        help="per-benchmark floor definitions")
    parser.add_argument("--out", type=Path, default=None,
                        metavar="PATH",
                        help="write the consolidated trend JSON")
    args = parser.parse_args(argv)

    floors = json.loads(args.floors.read_text(encoding="utf-8"))
    results = load_results(args.results)
    rows, failures = check(results, floors)

    if args.out:
        trend = {
            "commit": os.environ.get("GITHUB_SHA"),
            "run_id": os.environ.get("GITHUB_RUN_ID"),
            "floors": str(args.floors),
            "benchmarks": rows,
        }
        args.out.write_text(
            json.dumps(trend, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    for row in rows:
        marks = ", ".join(
            f"{name}={m['value']} (floor {m['floor']})"
            for name, m in row.get("metrics", {}).items())
        print(f"[{row['status']:>7}] {row['fullname']}"
              + (f": {marks}" if marks else ""))
    if failures:
        print(f"\n{len(failures)} benchmark floor violation(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} floored benchmark(s) at or above "
          f"their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
