"""Benchmark + regeneration harness for paper Fig. 8.

Regenerates the checkpoint-optimization comparison: the FTO of the
global checkpoint optimization ([15], strategy ``MC_GLOBAL``) against
the per-process [27] baseline (``MC``), reporting the deviation the
paper plots (larger = smaller overhead). The timed portion is the
global optimization pass.

Run:  pytest benchmarks/bench_fig8_checkpoint_opt.py --benchmark-only

The full paper sweep is ``python -m repro.experiments.fig8``.
"""

from __future__ import annotations

import pytest

from repro.model import FaultModel
from repro.synthesis import (
    TabuSettings,
    assign_local_optimal_checkpoints,
    nft_baseline,
    optimize_checkpoints_globally,
    synthesize,
)
from repro.utils.rng import DeterministicRng
from repro.workloads.generator import GeneratorConfig, generate_workload

SETTINGS = TabuSettings(iterations=12, neighborhood=10,
                        bus_contention=False)


@pytest.mark.parametrize("size", [40, 60])
def test_fig8_checkpoint_optimization(benchmark, size):
    rng = DeterministicRng(271 + size)
    nodes = rng.randint(2, 6)
    k = rng.randint(3, 6)
    app, arch = generate_workload(GeneratorConfig(
        processes=size, nodes=nodes, seed=7919 + size,
        chi_fraction=0.10, alpha_fraction=0.05))
    fault_model = FaultModel(k=k)
    baseline = nft_baseline(app, arch, SETTINGS)
    local = synthesize(app, arch, fault_model, "MC", settings=SETTINGS,
                       baseline=baseline)

    def optimize_globally():
        policies = assign_local_optimal_checkpoints(
            app, local.policies, k, mapping=local.mapping)
        return optimize_checkpoints_globally(
            app, arch, local.mapping, policies, fault_model,
            bus_contention=False)

    _policies, estimate, evaluations = benchmark.pedantic(
        optimize_globally, rounds=1, iterations=1)

    fto_baseline = local.fto
    fto_optimized = (estimate.schedule_length - baseline.length) \
        / baseline.length * 100.0
    deviation = ((fto_baseline - fto_optimized) / fto_baseline * 100.0
                 if fto_baseline > 0 else 0.0)

    benchmark.extra_info["processes"] = size
    benchmark.extra_info["k"] = k
    benchmark.extra_info["fto_local_27"] = round(fto_baseline, 1)
    benchmark.extra_info["fto_global_15"] = round(fto_optimized, 1)
    benchmark.extra_info["deviation_pct"] = round(deviation, 1)
    benchmark.extra_info["descent_evaluations"] = evaluations

    # Paper Fig. 8: the global optimization never loses to the local
    # per-process optimum.
    assert fto_optimized <= fto_baseline + 1e-6
    assert deviation >= -1e-6
