"""Ablation: value of the tabu search over the greedy initial solution
(the design choice DESIGN.md §2.6 calls out).

Measures, on one Fig. 7-style workload, how much estimated schedule
length the search recovers relative to the greedy load-balanced
initial mapping, as the iteration budget grows.
"""

from __future__ import annotations

import pytest

from repro.model import FaultModel
from repro.policies import PolicyAssignment, ProcessPolicy
from repro.schedule import estimate_ft_schedule
from repro.synthesis import TabuSearch, TabuSettings, initial_mapping
from repro.synthesis.tabu import policy_candidates
from repro.workloads import GeneratorConfig, generate_workload


def _instance():
    app, arch = generate_workload(GeneratorConfig(
        processes=40, nodes=4, seed=29))
    return app, arch, FaultModel(k=3)


@pytest.mark.parametrize("iterations", [0, 8, 24])
def test_tabu_iterations_ablation(benchmark, iterations):
    app, arch, fault_model = _instance()
    policies = PolicyAssignment.uniform(
        app, ProcessPolicy.re_execution(fault_model.k))
    initial = (policies, initial_mapping(app, arch, policies))
    initial_length = estimate_ft_schedule(
        app, arch, initial[1], policies, fault_model,
        bus_contention=False).schedule_length

    settings = TabuSettings(iterations=iterations, neighborhood=12,
                            bus_contention=False)

    def run():
        search = TabuSearch(
            app, arch, fault_model,
            policy_space=policy_candidates(app, fault_model.k),
            settings=settings)
        return search.optimize(initial)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    improvement = (initial_length - result.cost) / initial_length * 100
    benchmark.extra_info["iterations"] = iterations
    benchmark.extra_info["initial_length"] = round(initial_length, 1)
    benchmark.extra_info["final_length"] = round(result.cost, 1)
    benchmark.extra_info["improvement_pct"] = round(improvement, 1)
    # The search never returns anything worse than its start.
    assert result.cost <= initial_length + 1e-6
