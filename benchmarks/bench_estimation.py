"""Throughput of the slack-sharing estimator — the inner loop of every
synthesis strategy, evaluated thousands of times per search (paper §6).
"""

from __future__ import annotations

import pytest

from repro.model import FaultModel
from repro.policies import PolicyAssignment, ProcessPolicy
from repro.schedule import estimate_ft_schedule
from repro.synthesis import initial_mapping
from repro.workloads import GeneratorConfig, generate_workload


@pytest.mark.parametrize("size,policy", [
    (50, "reexec"),
    (100, "reexec"),
    (50, "replication"),
    (100, "replication"),
])
def test_estimation_throughput(benchmark, size, policy):
    app, arch = generate_workload(GeneratorConfig(
        processes=size, nodes=4, seed=13))
    k = 4
    process_policy = (ProcessPolicy.re_execution(k) if policy == "reexec"
                      else ProcessPolicy.replication(k))
    policies = PolicyAssignment.uniform(app, process_policy)
    mapping = initial_mapping(app, arch, policies)
    fault_model = FaultModel(k=k)

    estimate = benchmark(
        estimate_ft_schedule, app, arch, mapping, policies, fault_model,
        bus_contention=False)
    benchmark.extra_info["copies"] = policies.total_copies()
    benchmark.extra_info["schedule_length"] = round(
        estimate.schedule_length, 1)
    benchmark.extra_info["evals_per_sec"] = round(
        1.0 / benchmark.stats.stats.min, 1)
    assert estimate.schedule_length > 0


def test_estimation_with_bus_contention(benchmark):
    app, arch = generate_workload(GeneratorConfig(
        processes=60, nodes=4, seed=13))
    k = 3
    policies = PolicyAssignment.uniform(app,
                                        ProcessPolicy.re_execution(k))
    mapping = initial_mapping(app, arch, policies)

    estimate = benchmark(
        estimate_ft_schedule, app, arch, mapping, policies,
        FaultModel(k=k), bus_contention=True)
    benchmark.extra_info["schedule_length"] = round(
        estimate.schedule_length, 1)
    benchmark.extra_info["evals_per_sec"] = round(
        1.0 / benchmark.stats.stats.min, 1)
