"""Ablation: cost of exact conditional scheduling vs the fault budget.

Paper §3.3 observes that "the number of execution scenarios grows
exponentially with the number of processes and the number of tolerated
transient faults" — the very reason the optimization loops use the
estimate. This benchmark measures that growth (contexts explored and
wall time vs ``k``) and the price of transparency's frozen fixpoint.
"""

from __future__ import annotations

import pytest

from repro.model import FaultModel, Transparency
from repro.policies import PolicyAssignment, ProcessPolicy
from repro.schedule import CopyMapping, synthesize_schedule
from repro.workloads import GeneratorConfig, generate_workload


def _instance(processes: int = 8):
    app, arch = generate_workload(GeneratorConfig(
        processes=processes, nodes=2, seed=77, layer_width=3))
    return app, arch


@pytest.mark.parametrize("k", [1, 2, 3])
def test_conditional_scheduler_scaling_in_k(benchmark, k):
    app, arch = _instance()
    policies = PolicyAssignment.uniform(app,
                                        ProcessPolicy.re_execution(k))
    mapping = CopyMapping.from_process_map(
        {name: arch.node_names[i % 2]
         for i, name in enumerate(app.process_names)}, policies)
    fault_model = FaultModel(k=k)

    schedule = benchmark(
        synthesize_schedule, app, arch, mapping, policies, fault_model,
        max_contexts=500_000)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["scenarios"] = schedule.scenario_count
    benchmark.extra_info["entries"] = len(schedule.entries)
    assert schedule.meets_deadline


@pytest.mark.parametrize("frozen", ["none", "full"])
def test_transparency_fixpoint_cost(benchmark, frozen):
    app, arch = _instance()
    k = 2
    policies = PolicyAssignment.uniform(app,
                                        ProcessPolicy.re_execution(k))
    mapping = CopyMapping.from_process_map(
        {name: arch.node_names[i % 2]
         for i, name in enumerate(app.process_names)}, policies)
    transparency = (Transparency.full(app) if frozen == "full"
                    else Transparency.none())

    schedule = benchmark(
        synthesize_schedule, app, arch, mapping, policies,
        FaultModel(k=k), transparency, max_contexts=500_000)
    benchmark.extra_info["frozen"] = frozen
    benchmark.extra_info["worst_case"] = round(
        schedule.worst_case_length, 1)
    benchmark.extra_info["guard_columns"] = len(
        {e.guard for e in schedule.entries})
